//! Wall-clock micro-benches of the arbitration primitives: LRG matrix grant
//! and update across sizes, and CLRG counter maintenance.

use hirise_bench::quickbench::{black_box, BenchmarkId, Criterion};
use hirise_bench::{criterion_group, criterion_main};
use hirise_core::{ClrgState, MatrixArbiter, WlrgState};

fn bench_matrix_grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_arbiter_grant");
    for &n in &[16usize, 64, 128] {
        let arb = MatrixArbiter::new(n);
        let requests: Vec<usize> = (0..n).step_by(4).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| arb.grant(black_box(&requests)))
        });
    }
    group.finish();
}

fn bench_matrix_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_arbiter_update");
    for &n in &[16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut arb = MatrixArbiter::new(n);
            let mut i = 0;
            b.iter(|| {
                arb.update(i % n);
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_clrg_record(c: &mut Criterion) {
    c.bench_function("clrg_record_win_64", |b| {
        let mut clrg = ClrgState::new(64, 3);
        let mut i = 0;
        b.iter(|| {
            clrg.record_win(i % 64);
            i += 1;
        })
    });
}

fn bench_wlrg_record(c: &mut Criterion) {
    c.bench_function("wlrg_record_win_13", |b| {
        let mut wlrg = WlrgState::new(13);
        let mut i = 0;
        b.iter(|| {
            wlrg.record_win(i % 13, 4);
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_matrix_grant,
    bench_matrix_update,
    bench_clrg_record,
    bench_wlrg_record
);
criterion_main!(benches);
