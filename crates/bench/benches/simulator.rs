//! Wall-clock micro-benches of whole simulations: cycles/second of the
//! network simulator and end-to-end CMP runs (small instruction
//! budgets so the bench suite stays fast).

use hirise_bench::quickbench::Criterion;
use hirise_bench::{criterion_group, criterion_main};
use hirise_core::{HiRiseConfig, HiRiseSwitch, Switch2d};
use hirise_manycore::{table_vi_mixes, CmpSystem, SystemConfig};
use hirise_sim::mesh_sim::{MeshSim, MeshSimConfig};
use hirise_sim::traffic::UniformRandom;
use hirise_sim::{NetworkSim, SimConfig};

fn bench_network_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_sim_2k_cycles");
    group.sample_size(20);
    group.bench_function("switch2d_ur_mid_load", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(64)
                .injection_rate(0.08)
                .warmup(200)
                .measure(2_000)
                .drain(500);
            NetworkSim::new(Switch2d::new(64), UniformRandom::new(64), cfg).run()
        })
    });
    group.bench_function("hirise_clrg_ur_mid_load", |b| {
        let hirise_cfg = HiRiseConfig::paper_optimal();
        b.iter(|| {
            let cfg = SimConfig::new(64)
                .injection_rate(0.08)
                .warmup(200)
                .measure(2_000)
                .drain(500);
            NetworkSim::new(HiRiseSwitch::new(&hirise_cfg), UniformRandom::new(64), cfg).run()
        })
    });
    group.finish();
}

fn bench_cmp_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmp_system_mix1");
    group.sample_size(10);
    group.bench_function("switch2d_1k_instructions", |b| {
        let mix = &table_vi_mixes()[0];
        b.iter(|| {
            let cfg = SystemConfig::new().instructions_per_core(1_000);
            CmpSystem::new(Switch2d::new(64), 1.69, mix, cfg).run()
        })
    });
    group.finish();
}

fn bench_mesh_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_sim_3x3");
    group.sample_size(10);
    group.bench_function("hirise_1k_cycles", |b| {
        let switch_cfg = HiRiseConfig::paper_optimal();
        b.iter(|| {
            let cfg = MeshSimConfig::new(3, 3, 6)
                .injection_rate(0.002)
                .warmup(100)
                .measure(1_000)
                .drain(500);
            let mut sim = MeshSim::new(cfg, || HiRiseSwitch::new(&switch_cfg));
            let mut pattern = UniformRandom::new(sim.total_cores());
            sim.run(&mut pattern)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network_sim, bench_cmp_system, bench_mesh_sim);
criterion_main!(benches);
