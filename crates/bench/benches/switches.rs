//! Wall-clock micro-benches of a full arbitration cycle on each fabric: the
//! cost of `Fabric::arbitrate` under a saturating request set.

use hirise_bench::quickbench::{black_box, BenchmarkId, Criterion};
use hirise_bench::{criterion_group, criterion_main};
use hirise_core::{
    ArbitrationScheme, Fabric, HiRiseConfig, HiRiseSwitch, InputId, OutputId, Request, Switch2d,
};

fn full_request_set(radix: usize) -> Vec<Request> {
    (0..radix)
        .map(|i| Request::new(InputId::new(i), OutputId::new((i * 7 + 3) % radix)))
        .collect()
}

fn arbitrate_release<F: Fabric>(fabric: &mut F, requests: &[Request]) -> usize {
    let grants = fabric.arbitrate(requests);
    let n = grants.len();
    for grant in grants {
        fabric.release(grant.input);
    }
    n
}

fn bench_switch2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("switch2d_arbitrate");
    for &radix in &[16usize, 64, 128] {
        let requests = full_request_set(radix);
        group.bench_with_input(BenchmarkId::from_parameter(radix), &radix, |b, &radix| {
            let mut sw = Switch2d::new(radix);
            b.iter(|| arbitrate_release(&mut sw, black_box(&requests)))
        });
    }
    group.finish();
}

fn bench_hirise(c: &mut Criterion) {
    let mut group = c.benchmark_group("hirise_arbitrate_64");
    for (label, scheme) in [
        ("l2l_lrg", ArbitrationScheme::LayerToLayerLrg),
        ("wlrg", ArbitrationScheme::WeightedLrg),
        ("clrg", ArbitrationScheme::class_based()),
    ] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .scheme(scheme)
            .build()
            .expect("valid configuration");
        let requests = full_request_set(64);
        group.bench_function(label, |b| {
            let mut sw = HiRiseSwitch::new(&cfg);
            b.iter(|| arbitrate_release(&mut sw, black_box(&requests)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_switch2d, bench_hirise);
criterion_main!(benches);
