//! Shared command-line error reporting for the experiment binaries.
//!
//! The implementation lives in [`hirise_lab::args`] so the lab's and
//! serve's own binaries can use it without a dependency cycle; this
//! re-export keeps the historical `hirise_bench::args` path working.

pub use hirise_lab::args::*;
