//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. CLRG class count (the paper: "the number of classes required is
//!    a heuristic that needs to be tuned" — they pick 3).
//! 2. Counter halving on saturation on/off.
//! 3. Channel allocation policy (input/output binned, priority based).
//! 4. Local arbiter flavour (LRG vs round-robin).

use hirise_bench::{RunScale, Table};
use hirise_core::Fabric;
use hirise_core::{
    ArbitrationScheme, ChannelAllocation, HiRiseConfig, HiRiseConfigBuilder, HiRiseSwitch, InputId,
    LocalArbiterKind, OutputId, Request,
};
use hirise_lab::saturation_throughput;
use hirise_sim::traffic::{paper_adversarial, UniformRandom, WorstCaseL2lc};
use hirise_sim::NetworkSim;

fn base_builder() -> HiRiseConfigBuilder {
    HiRiseConfig::builder(64, 4).channel_multiplicity(4)
}

fn ur_saturation(cfg: &HiRiseConfig, scale: &RunScale) -> f64 {
    saturation_throughput(
        HiRiseSwitch::new(cfg),
        UniformRandom::new(64),
        &scale.sim_config(64),
    )
}

/// Unfairness of the adversarial pattern: throughput of input 20 over
/// the mean of inputs {3,7,11,15} (1.0 = perfectly fair).
fn adversarial_bias(cfg: &HiRiseConfig, scale: &RunScale) -> f64 {
    let sim = scale.sim_config(64).injection_rate(0.2).drain(0);
    let report = NetworkSim::new(HiRiseSwitch::new(cfg), paper_adversarial(), sim).run();
    let l1: f64 = [3usize, 7, 11, 15]
        .iter()
        .map(|&i| report.input_accepted_rate(i))
        .sum::<f64>()
        / 4.0;
    report.input_accepted_rate(20) / l1
}

fn class_count_sweep(scale: &RunScale) {
    println!("Ablation 1: CLRG class count (adversarial bias; 1.0 = fair)\n");
    let mut table = Table::new(["classes", "bias(20 vs L1)", "UR sat (pkts/cyc)"]);
    // The L-2-L LRG baseline is the degenerate "1 class" point.
    let baseline = base_builder()
        .scheme(ArbitrationScheme::LayerToLayerLrg)
        .build()
        .expect("valid configuration");
    table.add_row([
        "1 (=LRG)".to_string(),
        format!("{:.2}", adversarial_bias(&baseline, scale)),
        format!("{:.3}", ur_saturation(&baseline, scale)),
    ]);
    for classes in [2u8, 3, 4, 8] {
        let cfg = base_builder()
            .scheme(ArbitrationScheme::ClassBased { classes })
            .build()
            .expect("valid configuration");
        table.add_row([
            classes.to_string(),
            format!("{:.2}", adversarial_bias(&cfg, scale)),
            format!("{:.3}", ur_saturation(&cfg, scale)),
        ]);
    }
    table.print();
    println!("\npaper choice: 3 classes (2-bit thermometer counter).\n");
}

/// Hotspot service share of the output's own layer under overload with
/// a manually driven switch, with and without counter halving.
fn halving_ablation() {
    println!("Ablation 2: CLRG divide-by-2 on counter saturation\n");
    // Drive the fabric directly so we can disable halving (the
    // simulator-facing config always halves, as the paper's hardware
    // does; ClrgState::without_halving exists for exactly this study).
    use hirise_core::ClrgState;
    for halve in [true, false] {
        let mut clrg = ClrgState::new(8, 3);
        if !halve {
            clrg = clrg.without_halving();
        }
        // Input 0 wins often (bursty favourite), inputs 1..8 win rarely.
        let mut zero_wins = 0usize;
        let mut other_wins = 0usize;
        for round in 0..400usize {
            // Contenders: 0 always, plus one rotating other.
            let other = 1 + round % 7;
            let winner = if clrg.class_of(0) < clrg.class_of(other) {
                0
            } else if clrg.class_of(0) > clrg.class_of(other) {
                other
            } else if round % 2 == 0 {
                0
            } else {
                other
            };
            clrg.record_win(winner);
            if winner == 0 {
                zero_wins += 1;
            } else {
                other_wins += 1;
            }
        }
        println!(
            "halving {halve:>5}: favourite won {zero_wins}, others won {other_wins} \
             (per-input fair share = 50 each)"
        );
    }
    println!("\nWith halving the favourite gets exactly its per-input fair share");
    println!("(50 of 400); without halving every counter sticks at the top class,");
    println!("classes stop discriminating, and the always-present favourite takes");
    println!("~half of all wins. The divide-by-2 is load-bearing.\n");
}

fn allocation_sweep(scale: &RunScale) {
    println!("Ablation 3: channel allocation policy\n");
    // The anti-binning pattern of §III-A ("under-utilization of the
    // critical vertical L2LCs under certain adversarial traffic as the
    // assignments are fixed"): only the inputs that input-binning maps
    // to channel 0 (locals 0, 4, 8, 12 of every layer) have traffic,
    // all of it towards the next layer.
    let anti_binning = |radix: usize, layers: usize| {
        hirise_sim::traffic::Custom::new("anti-binning", move |input: InputId, rate, rng| {
            use hirise_core::rng::Rng;
            let ports = radix / layers;
            let local = input.index() % ports;
            if !local.is_multiple_of(4) {
                return None;
            }
            if !rng.gen_bool(f64::clamp(rate, 0.0, 1.0)) {
                return None;
            }
            let src_layer = input.index() / ports;
            let dst_layer = (src_layer + 1) % layers;
            Some(OutputId::new(dst_layer * ports + rng.gen_range(0..ports)))
        })
    };
    let mut table = Table::new(["policy", "UR sat", "worst-case sat", "anti-binning sat"]);
    for (name, policy) in [
        ("input-binned", ChannelAllocation::InputBinned),
        ("output-binned", ChannelAllocation::OutputBinned),
        ("priority-based", ChannelAllocation::PriorityBased),
    ] {
        let cfg = base_builder()
            .allocation(policy)
            .build()
            .expect("valid configuration");
        let worst = saturation_throughput(
            HiRiseSwitch::new(&cfg),
            WorstCaseL2lc::new(64, 4),
            &scale.sim_config(64),
        );
        let anti = saturation_throughput(
            HiRiseSwitch::new(&cfg),
            anti_binning(64, 4),
            &scale.sim_config(64),
        );
        table.add_row([
            name.to_string(),
            format!("{:.3}", ur_saturation(&cfg, scale)),
            format!("{:.3}", worst),
            format!("{:.3}", anti),
        ]);
    }
    table.print();
    println!("\nThe worst-case-L2LC corner is channel-bandwidth-bound for every");
    println!("policy (all channels active). The anti-binning pattern is where the");
    println!("fixed assignments hurt: input binning funnels all traffic through");
    println!("one channel per layer while priority allocation spreads it over all");
    println!("four — the §III-A trade-off against its serialized arbitration.\n");
}

fn local_arbiter_sweep(scale: &RunScale) {
    println!("Ablation 4: local arbiter flavour\n");
    let mut table = Table::new(["local arbiter", "UR sat", "adversarial bias"]);
    for (name, kind) in [
        ("LRG (paper)", LocalArbiterKind::Lrg),
        ("round-robin", LocalArbiterKind::RoundRobin),
    ] {
        let cfg = base_builder()
            .local_arbiter(kind)
            .build()
            .expect("valid configuration");
        table.add_row([
            name.to_string(),
            format!("{:.3}", ur_saturation(&cfg, scale)),
            format!("{:.2}", adversarial_bias(&cfg, scale)),
        ]);
    }
    table.print();
}

/// Smoke-check the Fig. 5 example still holds on the ablation path
/// (direct fabric drive at packet length 1).
fn fig5_smoke() {
    let cfg = HiRiseConfig::builder(64, 4)
        .scheme(ArbitrationScheme::class_based())
        .build()
        .expect("valid configuration");
    let mut sw = HiRiseSwitch::new(&cfg);
    let contenders = [3usize, 7, 11, 15, 20];
    let mut wins = [0usize; 64];
    for _ in 0..100 {
        let requests: Vec<Request> = contenders
            .iter()
            .map(|&i| Request::new(InputId::new(i), OutputId::new(63)))
            .collect();
        let grants = sw.arbitrate(&requests);
        wins[grants[0].input.index()] += 1;
        sw.release(grants[0].input);
    }
    assert!(contenders.iter().all(|&i| wins[i] == 20));
}

fn main() {
    let scale = RunScale::from_args();
    fig5_smoke();
    class_count_sweep(&scale);
    halving_ablation();
    allocation_sweep(&scale);
    local_arbiter_sweep(&scale);
}
