//! Simulation-throughput benchmark: simulated **cycles/sec** and
//! **packets/sec** for each fabric (2D Swizzle, 3D folded, Hi-Rise)
//! at radix 16/32/64 under uniform-random load, recorded to
//! `BENCH_sim.json` at the repo root.
//!
//! This is the repo's performance trajectory file: the `before` column
//! was measured on the allocating hot path (pre-`arbitrate_into`), the
//! `after` column on the allocation-free scratch path, both on the same
//! machine at the same scale. Re-running with `--label after` refreshes
//! the `after` column in place and recomputes the speedups without
//! touching the recorded `before` baseline (and vice versa).
//!
//! ```text
//! cyclebench [--quick] [--label before|after] [--out PATH]
//! cyclebench --check PATH    # validate an existing file's schema
//! ```
//!
//! Methodology: per (fabric, radix) one `NetworkSim` under uniform
//! random traffic at 0.1 packets/input/cycle (comfortably below the
//! 0.2 serialization bound, so queues are in steady state) is warmed
//! up untimed, then stepped through `reps` timed segments of
//! `cycles_per_rep` cycles each via `NetworkSim::run_cycles`; the
//! reported numbers are the medians across segments. The invariant
//! checker is off (it is a debugging aid, not part of the cycle loop).

use std::process::ExitCode;
use std::time::Instant;

use hirise_bench::args::arg_error;
use hirise_core::{ArbitrationScheme, Fabric, FoldedSwitch, HiRiseConfig, HiRiseSwitch, Switch2d};
use hirise_lab::json::{self, Json};
use hirise_sim::traffic::UniformRandom;
use hirise_sim::{NetworkSim, SimConfig};

const SCHEMA: &str = "hirise-cyclebench/v1";
const USAGE: &str =
    "cyclebench [--quick] [--label before|after] [--out PATH]\n       cyclebench --check PATH";
const FABRICS: [&str; 3] = ["switch2d", "folded3d", "hirise"];
const RADICES: [usize; 3] = [16, 32, 64];
const INJECTION_RATE: f64 = 0.1;
const LAYERS: usize = 4;
const SEED: u64 = 0xC1C1_EB00;

/// Benchmark scale: timed cycles per segment and segment count.
struct Scale {
    warmup_cycles: u64,
    cycles_per_rep: u64,
    reps: usize,
    quick: bool,
}

impl Scale {
    fn full() -> Self {
        Self {
            warmup_cycles: 2_000,
            cycles_per_rep: 20_000,
            reps: 5,
            quick: false,
        }
    }

    fn quick() -> Self {
        Self {
            warmup_cycles: 500,
            cycles_per_rep: 2_000,
            reps: 3,
            quick: true,
        }
    }
}

/// One measured (cycles/sec, packets/sec) pair.
#[derive(Clone, Copy, Debug)]
struct Throughput {
    cycles_per_sec: f64,
    packets_per_sec: f64,
}

/// One (fabric, radix) row with up to two labelled measurements.
#[derive(Clone, Copy, Debug)]
struct Row {
    fabric: &'static str,
    radix: usize,
    before: Option<Throughput>,
    after: Option<Throughput>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        match (self.before, self.after) {
            (Some(b), Some(a)) if b.cycles_per_sec > 0.0 => {
                Some(a.cycles_per_sec / b.cycles_per_sec)
            }
            _ => None,
        }
    }
}

fn build_fabric(name: &str, radix: usize) -> Box<dyn Fabric> {
    match name {
        "switch2d" => Box::new(Switch2d::new(radix)),
        "folded3d" => Box::new(FoldedSwitch::new(radix, LAYERS)),
        "hirise" => {
            let cfg = HiRiseConfig::builder(radix, LAYERS)
                .channel_multiplicity(4)
                .scheme(ArbitrationScheme::LayerToLayerLrg)
                .build()
                .expect("valid Hi-Rise configuration");
            Box::new(HiRiseSwitch::new(&cfg))
        }
        other => arg_error(format!("unknown fabric {other:?}"), USAGE),
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    values[values.len() / 2]
}

/// Benchmarks one (fabric, radix) combination.
fn measure(fabric: &'static str, radix: usize, scale: &Scale) -> Throughput {
    let cfg = SimConfig::new(radix)
        .injection_rate(INJECTION_RATE)
        .warmup(0)
        .measure(u64::MAX / 2)
        .seed(SEED)
        .check_invariants(false);
    let mut sim = NetworkSim::new(build_fabric(fabric, radix), UniformRandom::new(radix), cfg);
    let mut report = sim.report();
    sim.run_cycles(&mut report, scale.warmup_cycles);
    let mut cycles_per_sec = Vec::with_capacity(scale.reps);
    let mut packets_per_sec = Vec::with_capacity(scale.reps);
    for _ in 0..scale.reps {
        let packets_at_start = report.accepted_packets();
        let start = Instant::now();
        sim.run_cycles(&mut report, scale.cycles_per_rep);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let packets = report.accepted_packets() - packets_at_start;
        cycles_per_sec.push(scale.cycles_per_rep as f64 / secs);
        packets_per_sec.push(packets as f64 / secs);
    }
    Throughput {
        cycles_per_sec: median(&mut cycles_per_sec),
        packets_per_sec: median(&mut packets_per_sec),
    }
}

fn parse_throughput(value: &Json) -> Option<Throughput> {
    Some(Throughput {
        cycles_per_sec: value.get("cycles_per_sec")?.as_f64()?,
        packets_per_sec: value.get("packets_per_sec")?.as_f64()?,
    })
}

/// Loads the labelled measurements from an existing results file so a
/// re-run under one label preserves the other label's column.
fn load_existing(path: &str, rows: &mut [Row]) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(doc) = json::parse(&text) else {
        eprintln!("warning: {path} is not valid JSON; starting fresh");
        return;
    };
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        eprintln!("warning: {path} has an unknown schema; starting fresh");
        return;
    }
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        return;
    };
    for entry in results {
        let fabric = entry.get("fabric").and_then(Json::as_str);
        let radix = entry.get("radix").and_then(Json::as_u64);
        let (Some(fabric), Some(radix)) = (fabric, radix) else {
            continue;
        };
        for row in rows.iter_mut() {
            if row.fabric == fabric && row.radix as u64 == radix {
                row.before = entry.get("before").and_then(parse_throughput);
                row.after = entry.get("after").and_then(parse_throughput);
            }
        }
    }
}

fn write_throughput(out: &mut String, value: Option<Throughput>) {
    match value {
        None => out.push_str("null"),
        Some(t) => {
            out.push_str("{\"cycles_per_sec\":");
            json::write_f64(out, t.cycles_per_sec);
            out.push_str(",\"packets_per_sec\":");
            json::write_f64(out, t.packets_per_sec);
            out.push('}');
        }
    }
}

fn render(rows: &[Row], scale: &Scale) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\":");
    json::write_escaped(&mut out, SCHEMA);
    out.push_str(",\n  \"pattern\":\"uniform-random\"");
    out.push_str(",\n  \"injection_rate\":");
    json::write_f64(&mut out, INJECTION_RATE);
    out.push_str(",\n  \"packet_len_flits\":4");
    out.push_str(",\n  \"quick\":");
    out.push_str(if scale.quick { "true" } else { "false" });
    out.push_str(",\n  \"warmup_cycles\":");
    out.push_str(&scale.warmup_cycles.to_string());
    out.push_str(",\n  \"cycles_per_rep\":");
    out.push_str(&scale.cycles_per_rep.to_string());
    out.push_str(",\n  \"reps\":");
    out.push_str(&scale.reps.to_string());
    out.push_str(",\n  \"results\":[\n");
    for (index, row) in rows.iter().enumerate() {
        out.push_str("    {\"fabric\":");
        json::write_escaped(&mut out, row.fabric);
        out.push_str(",\"radix\":");
        out.push_str(&row.radix.to_string());
        out.push_str(",\"before\":");
        write_throughput(&mut out, row.before);
        out.push_str(",\"after\":");
        write_throughput(&mut out, row.after);
        out.push_str(",\"speedup_cycles_per_sec\":");
        match row.speedup() {
            Some(s) => json::write_f64(&mut out, s),
            None => out.push_str("null"),
        }
        out.push('}');
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a results file: schema tag, full fabric × radix coverage,
/// and positive throughput on every present measurement. Absolute
/// numbers are machine-dependent and deliberately not checked.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("{path}: missing or unexpected schema tag"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    for fabric in FABRICS {
        for radix in RADICES {
            let entry = results
                .iter()
                .find(|e| {
                    e.get("fabric").and_then(Json::as_str) == Some(fabric)
                        && e.get("radix").and_then(Json::as_u64) == Some(radix as u64)
                })
                .ok_or_else(|| format!("{path}: no entry for {fabric} radix {radix}"))?;
            let mut measured = 0;
            for label in ["before", "after"] {
                match entry.get(label) {
                    None | Some(Json::Null) => {}
                    Some(value) => {
                        let t = parse_throughput(value).ok_or_else(|| {
                            format!("{path}: malformed {label} for {fabric} radix {radix}")
                        })?;
                        if t.cycles_per_sec <= 0.0 || t.packets_per_sec <= 0.0 {
                            return Err(format!(
                                "{path}: non-positive {label} throughput for {fabric} radix {radix}"
                            ));
                        }
                        measured += 1;
                    }
                }
            }
            if measured == 0 {
                return Err(format!(
                    "{path}: {fabric} radix {radix} has neither before nor after"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut label = "after".to_string();
    let mut out_path = "BENCH_sim.json".to_string();
    let mut check_path: Option<String> = None;
    let mut iter = args.into_iter();
    let missing = |flag: &str| -> String { arg_error(format!("missing value for {flag}"), USAGE) };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "quick" => quick = true,
            "--label" => label = iter.next().unwrap_or_else(|| missing("--label")),
            "--out" => out_path = iter.next().unwrap_or_else(|| missing("--out")),
            "--check" => check_path = Some(iter.next().unwrap_or_else(|| missing("--check"))),
            other => arg_error(format!("unknown flag {other:?}"), USAGE),
        }
    }
    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if label != "before" && label != "after" {
        arg_error(format!("invalid value {label:?} for --label"), USAGE);
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };

    let mut rows: Vec<Row> = FABRICS
        .iter()
        .flat_map(|&fabric| {
            RADICES.iter().map(move |&radix| Row {
                fabric,
                radix,
                before: None,
                after: None,
            })
        })
        .collect();
    load_existing(&out_path, &mut rows);

    println!(
        "cyclebench: label={label}, {} cycles x {} reps per combination\n",
        scale.cycles_per_rep, scale.reps
    );
    println!(
        "{:<10} {:>5} {:>15} {:>15} {:>9}",
        "fabric", "radix", "cycles/sec", "packets/sec", "speedup"
    );
    for row in rows.iter_mut() {
        let throughput = measure(row.fabric, row.radix, &scale);
        if label == "before" {
            row.before = Some(throughput);
        } else {
            row.after = Some(throughput);
        }
        let speedup = row
            .speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:>5} {:>15.0} {:>15.0} {:>9}",
            row.fabric, row.radix, throughput.cycles_per_sec, throughput.packets_per_sec, speedup
        );
    }

    let rendered = render(&rows, &scale);
    if let Err(error) = std::fs::write(&out_path, &rendered) {
        eprintln!("cyclebench: cannot write {out_path}: {error}");
        return ExitCode::FAILURE;
    }
    match check(&out_path) {
        Ok(()) => {
            println!("\nwrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("cyclebench: self-check failed: {message}");
            ExitCode::FAILURE
        }
    }
}
