//! Simulation-throughput benchmark: simulated **cycles/sec** and
//! **packets/sec** for each fabric (2D Swizzle, 3D folded, Hi-Rise,
//! and the iterative-matching schedulers iSLIP/ESLIP/wavefront) at
//! radix 16/32/64 under uniform-random load, recorded to
//! `BENCH_sim.json` at the repo root.
//!
//! This is the repo's performance trajectory file. Labels map to
//! arbitration kernels: `--label before` benchmarks the **scalar**
//! kernel, `--label after` the **word-parallel** kernel (the default
//! for every fabric constructor), so the recorded speedup is the word
//! kernel's gain over the scalar loops on the same simulator harness.
//! Re-running with one label refreshes that column in place and
//! recomputes the speedups without touching the other column.
//!
//! ```text
//! cyclebench [--quick] [--label before|after] [--out PATH]
//! cyclebench --sharded [--quick] [--out PATH]  # shard-scaling sweep
//! cyclebench --net [--quick] [--label before|after] [--out PATH]
//! cyclebench --check PATH    # validate an existing file's schema
//! cyclebench --smoke         # quick word-vs-scalar regression gate
//! cyclebench --net-smoke     # quick active-set-vs-dense regression gate
//! ```
//!
//! `--net` benchmarks the *network-level* engines (whole topologies of
//! switches rather than a single fabric): the unsharded mesh reference
//! at the 8×8 radix-16 acceptance shape under high and low load, plus
//! a dragonfly through the sharded engine at one shard. Its labels map
//! to network engines, not kernels: `before` is the hash-map/dense
//! engine (per-node `HashMap` routing metadata, every router scanned
//! every cycle), `after` the arena + active-set engine (SoA packet
//! arenas keyed by dense handles, only routers with work visited).
//! Like the kernel grid, re-running one label refreshes that column in
//! place.
//!
//! `--smoke` runs the quick grid under both kernels and fails if the
//! word kernel falls below `SMOKE_FLOOR` x the scalar kernel's
//! throughput on any combination — a cheap CI gate against the word
//! path silently regressing to slower-than-scalar. It also runs the
//! sharded-mesh determinism gate: one quick mesh at 1 and 4 shards
//! must produce identical telemetry.
//!
//! `--net-smoke` is the same idea for the network engines: the quick
//! net shapes run under both per-cycle schedules at low load, and the
//! gate fails if the active-set schedule is slower than the dense
//! sweep anywhere (it should be strictly faster when most routers
//! idle) or if the two schedules disagree on telemetry.
//!
//! `--sharded` benchmarks one mesh of Hi-Rise switches through the
//! sharded lockstep engine at each shard count, recording simulated
//! cycles/sec and aggregate flits/sec into an additive `"sharded"`
//! section of the same results file (the per-fabric kernel rows are
//! preserved, and vice versa).
//!
//! Methodology: per (fabric, radix) one `NetworkSim` under uniform
//! random traffic at 0.1 packets/input/cycle (comfortably below the
//! 0.2 serialization bound, so queues are in steady state) is warmed
//! up untimed, then stepped through `reps` timed segments of
//! `cycles_per_rep` cycles each via `NetworkSim::run_cycles`; the
//! reported numbers are the medians across segments (mean of the two
//! middle segments when `reps` is even). The invariant checker is off
//! (it is a debugging aid, not part of the cycle loop).
//!
//! Schema history: `v1` files were written by a median that returned
//! the upper-middle element for even-length samples (biased high) and
//! carried an allocating-vs-scratch before/after split; `v2` fixes the
//! median and redefines the labels as scalar-vs-word kernels; `v3`
//! adds the additive `"net"` network-engine section (and its
//! `net_before_engine`/`net_after_engine` descriptors) without
//! changing any `v2` field, so `v2` files are loaded and migrated in
//! place on the next write. `v1` files are deliberately not loaded —
//! their numbers are not comparable.

use std::process::ExitCode;
use std::time::Instant;

use hirise_bench::args::arg_error;
use hirise_core::config::DEFAULT_FLIT_BITS;
use hirise_core::{
    ArbiterKernel, ArbitrationScheme, Fabric, FoldedSwitch, HiRiseConfig, HiRiseSwitch,
    MatchPolicy, MatchingSwitch, Switch2d,
};
use hirise_lab::json::{self, Json};
use hirise_sim::dragonfly::{DragonflyConfig, DragonflyGeometry};
use hirise_sim::mesh_sim::{MeshReport, MeshSim, MeshSimConfig};
use hirise_sim::shard::{sharded_mesh, ShardedConfig, ShardedSim};
use hirise_sim::traffic::{TrafficPattern, UniformRandom};
use hirise_sim::{NetSchedule, NetworkSim, SimConfig};

const SCHEMA: &str = "hirise-cyclebench/v3";
/// Older schemas whose numbers are still comparable: loaded and
/// migrated to [`SCHEMA`] on the next write (`v3` is purely additive
/// over `v2`).
const COMPATIBLE_SCHEMAS: [&str; 1] = ["hirise-cyclebench/v2"];
const USAGE: &str = "cyclebench [--quick] [--label before|after] [--out PATH]\n       \
     cyclebench --sharded [--quick] [--out PATH]\n       \
     cyclebench --net [--quick] [--label before|after] [--out PATH]\n       \
     cyclebench --check PATH\n       cyclebench --smoke\n       cyclebench --net-smoke";
const FABRICS: [&str; 6] = [
    "switch2d",
    "folded3d",
    "hirise",
    "islip2",
    "eslip",
    "wavefront",
];
const RADICES: [usize; 3] = [16, 32, 64];
const INJECTION_RATE: f64 = 0.1;
const LAYERS: usize = 4;
const SEED: u64 = 0xC1C1_EB00;
/// Minimum word/scalar throughput ratio tolerated by `--smoke`. Below
/// 1.0 to absorb run-to-run noise on shared machines; a word kernel
/// that is genuinely slower than scalar lands well under this.
const SMOKE_FLOOR: f64 = 0.8;
/// Minimum active-set/dense throughput ratio tolerated by
/// `--net-smoke`. At the smoke load most routers are idle most cycles,
/// so a healthy active-set schedule lands well above parity; at 1.0
/// the gate catches it ever becoming pure overhead.
const NET_SMOKE_FLOOR: f64 = 1.0;
/// `--net-smoke` offered load: low on purpose, so the active set is
/// sparse and skipping is actually exercised.
const NET_SMOKE_INJECTION: f64 = 0.01;

/// Benchmark scale: timed cycles per segment and segment count.
struct Scale {
    warmup_cycles: u64,
    cycles_per_rep: u64,
    reps: usize,
    quick: bool,
}

impl Scale {
    fn full() -> Self {
        Self {
            warmup_cycles: 2_000,
            cycles_per_rep: 20_000,
            reps: 5,
            quick: false,
        }
    }

    fn quick() -> Self {
        Self {
            warmup_cycles: 500,
            cycles_per_rep: 2_000,
            reps: 3,
            quick: true,
        }
    }
}

/// One measured (cycles/sec, packets/sec) pair.
#[derive(Clone, Copy, Debug)]
struct Throughput {
    cycles_per_sec: f64,
    packets_per_sec: f64,
}

/// One (fabric, radix) row with up to two labelled measurements.
#[derive(Clone, Copy, Debug)]
struct Row {
    fabric: &'static str,
    radix: usize,
    before: Option<Throughput>,
    after: Option<Throughput>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        match (self.before, self.after) {
            (Some(b), Some(a)) if b.cycles_per_sec > 0.0 => {
                Some(a.cycles_per_sec / b.cycles_per_sec)
            }
            _ => None,
        }
    }
}

/// Shard counts swept by `--sharded`.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Sharded-sweep mesh: radix and mesh ports per direction (8 endpoint
/// cores per node remain).
const SHARDED_RADIX: usize = 16;
const SHARDED_PPD: usize = 2;

/// One sharded measurement: simulated cycles/sec of the whole mesh and
/// aggregate delivered flits/sec, at one shard count.
#[derive(Clone, Copy, Debug)]
struct ShardedPoint {
    shards: usize,
    cycles_per_sec: f64,
    flits_per_sec: f64,
}

/// The `"sharded"` results section: the benched mesh geometry plus one
/// point per shard count.
#[derive(Clone, Debug)]
struct ShardedSection {
    cols: usize,
    rows: usize,
    points: Vec<ShardedPoint>,
}

/// `--net` sweep geometry: mesh ports per direction (8 endpoint cores
/// per radix-16 node remain) and the radix shared by every benched
/// topology.
const NET_RADIX: usize = 16;
const NET_PPD: usize = 2;
/// Engine benchmarked under each `--net` label.
const NET_BEFORE_ENGINE: &str = "hashmap-dense";
const NET_AFTER_ENGINE: &str = "arena-active-set";

/// One `--net` row: a topology at one offered load, with up to two
/// labelled engine measurements. `packets_per_sec` counts delivered
/// packets across the whole topology.
#[derive(Clone, Debug)]
struct NetRow {
    sim: &'static str,
    /// Router (switch) count — part of the merge key, since quick and
    /// full scales bench different shapes.
    nodes: usize,
    injection: f64,
    before: Option<Throughput>,
    after: Option<Throughput>,
}

impl NetRow {
    fn speedup(&self) -> Option<f64> {
        match (self.before, self.after) {
            (Some(b), Some(a)) if b.cycles_per_sec > 0.0 => {
                Some(a.cycles_per_sec / b.cycles_per_sec)
            }
            _ => None,
        }
    }
}

/// The `--net` grid for one scale: the acceptance mesh shape at the
/// kernel-grid injection rate (0.1, saturated — the arena win) and at
/// low load (most routers idle — the active-set win), plus a dragonfly
/// so the second topology family is covered.
fn net_rows(scale: &Scale) -> Vec<NetRow> {
    let dim = net_mesh_dim(scale);
    let blank = |sim, nodes, injection| NetRow {
        sim,
        nodes,
        injection,
        before: None,
        after: None,
    };
    vec![
        blank("mesh", dim * dim, INJECTION_RATE),
        blank("mesh", dim * dim, 0.01),
        blank("dragonfly", net_dragonfly(scale).0, 0.02),
    ]
}

fn net_mesh_dim(scale: &Scale) -> usize {
    if scale.quick {
        4
    } else {
        8
    }
}

/// Dragonfly shape for `--net`: `(routers, (a, p, h, g))`. Full scale
/// uses 114 radix-16 routers (a=6, p=6, h=3, g=19: 6+5+3 = 14 ports
/// used), quick the 36-router lab shape.
fn net_dragonfly(scale: &Scale) -> (usize, (usize, usize, usize, usize)) {
    if scale.quick {
        (36, (4, 4, 2, 9))
    } else {
        (114, (6, 6, 3, 19))
    }
}

/// Arbitration kernel benchmarked under each label: `before` is the
/// scalar reference loops, `after` the word-parallel kernels.
fn kernel_for_label(label: &str) -> ArbiterKernel {
    if label == "before" {
        ArbiterKernel::Scalar
    } else {
        ArbiterKernel::Word
    }
}

fn build_fabric(name: &str, radix: usize, kernel: ArbiterKernel) -> Box<dyn Fabric> {
    match name {
        "switch2d" => Box::new(Switch2d::with_kernel(radix, kernel)),
        "folded3d" => Box::new(FoldedSwitch::with_kernel(
            radix,
            LAYERS,
            DEFAULT_FLIT_BITS,
            kernel,
        )),
        "hirise" => {
            let cfg = HiRiseConfig::builder(radix, LAYERS)
                .channel_multiplicity(4)
                .scheme(ArbitrationScheme::LayerToLayerLrg)
                .build()
                .expect("valid Hi-Rise configuration");
            Box::new(HiRiseSwitch::with_kernel(&cfg, kernel))
        }
        "islip2" => Box::new(MatchingSwitch::with_kernel(
            radix,
            MatchPolicy::Islip { iterations: 2 },
            kernel,
        )),
        "eslip" => Box::new(MatchingSwitch::with_kernel(
            radix,
            MatchPolicy::Eslip { iterations: 2 },
            kernel,
        )),
        "wavefront" => Box::new(MatchingSwitch::with_kernel(
            radix,
            MatchPolicy::Wavefront,
            kernel,
        )),
        other => arg_error(format!("unknown fabric {other:?}"), USAGE),
    }
}

/// Median of a non-empty sample: middle element for odd lengths, mean
/// of the two middle elements for even lengths. Panics on an empty
/// slice — a benchmark that measured nothing has no median.
fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty sample");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    let mid = values.len() / 2;
    if values.len().is_multiple_of(2) {
        (values[mid - 1] + values[mid]) / 2.0
    } else {
        values[mid]
    }
}

/// Benchmarks one (fabric, radix) combination under one kernel.
fn measure(fabric: &'static str, radix: usize, kernel: ArbiterKernel, scale: &Scale) -> Throughput {
    let cfg = SimConfig::new(radix)
        .injection_rate(INJECTION_RATE)
        .warmup(0)
        .measure(u64::MAX / 2)
        .seed(SEED)
        .check_invariants(false);
    let mut sim = NetworkSim::new(
        build_fabric(fabric, radix, kernel),
        UniformRandom::new(radix),
        cfg,
    );
    let mut report = sim.report();
    sim.run_cycles(&mut report, scale.warmup_cycles);
    let mut cycles_per_sec = Vec::with_capacity(scale.reps);
    let mut packets_per_sec = Vec::with_capacity(scale.reps);
    for _ in 0..scale.reps {
        let packets_at_start = report.accepted_packets();
        let start = Instant::now();
        sim.run_cycles(&mut report, scale.cycles_per_rep);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let packets = report.accepted_packets() - packets_at_start;
        cycles_per_sec.push(scale.cycles_per_rep as f64 / secs);
        packets_per_sec.push(packets as f64 / secs);
    }
    Throughput {
        cycles_per_sec: median(&mut cycles_per_sec),
        packets_per_sec: median(&mut packets_per_sec),
    }
}

/// Builds the sharded-sweep mesh: `cols x rows` radix-16 Hi-Rise
/// switches with 8 cores each, uniform random traffic, measurement
/// window open-ended so segment deltas count every delivery.
fn build_sharded_mesh(
    cols: usize,
    rows: usize,
    shards: usize,
) -> ShardedSim<HiRiseSwitch, hirise_sim::mesh_sim::MeshGeometry> {
    let cfg = MeshSimConfig::new(cols, rows, SHARDED_PPD)
        .injection_rate(INJECTION_RATE)
        .warmup(0)
        .measure(u64::MAX / 2)
        .seed(SEED);
    let switch_cfg = HiRiseConfig::builder(SHARDED_RADIX, LAYERS)
        .channel_multiplicity(4)
        .scheme(ArbitrationScheme::LayerToLayerLrg)
        .build()
        .expect("valid Hi-Rise configuration");
    let cores = (SHARDED_RADIX - 4 * SHARDED_PPD) * cols * rows;
    sharded_mesh(
        &cfg,
        SHARDED_RADIX,
        shards,
        move |_node| HiRiseSwitch::with_kernel(&switch_cfg, ArbiterKernel::Word),
        move || Box::new(UniformRandom::new(cores)) as Box<dyn TrafficPattern>,
    )
}

/// Benchmarks the sweep mesh at one shard count: median simulated
/// cycles/sec and aggregate delivered flits/sec across timed segments.
fn measure_sharded(cols: usize, rows: usize, shards: usize, scale: &Scale) -> ShardedPoint {
    let mut sim = build_sharded_mesh(cols, rows, shards);
    sim.run_cycles(scale.warmup_cycles);
    let mut cycles_per_sec = Vec::with_capacity(scale.reps);
    let mut flits_per_sec = Vec::with_capacity(scale.reps);
    let mut delivered = sim.report().completed_measured();
    for _ in 0..scale.reps {
        let start = Instant::now();
        sim.run_cycles(scale.cycles_per_rep);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let now_delivered = sim.report().completed_measured();
        let packets = now_delivered - delivered;
        delivered = now_delivered;
        cycles_per_sec.push(scale.cycles_per_rep as f64 / secs);
        flits_per_sec.push(packets as f64 * 4.0 / secs);
    }
    ShardedPoint {
        shards,
        cycles_per_sec: median(&mut cycles_per_sec),
        flits_per_sec: median(&mut flits_per_sec),
    }
}

/// Runs the full `--sharded` sweep: one mesh, every shard count (those
/// exceeding the node count are skipped).
fn measure_sharded_section(scale: &Scale) -> ShardedSection {
    let (cols, rows) = if scale.quick { (4, 4) } else { (8, 8) };
    println!(
        "cyclebench --sharded: {cols}x{rows} mesh of radix-{SHARDED_RADIX} hirise, \
         {} cycles x {} reps per shard count\n",
        scale.cycles_per_rep, scale.reps
    );
    println!("{:>6} {:>15} {:>15}", "shards", "cycles/sec", "flits/sec");
    let mut points = Vec::new();
    for shards in SHARD_COUNTS {
        if shards > cols * rows {
            continue;
        }
        let point = measure_sharded(cols, rows, shards, scale);
        println!(
            "{:>6} {:>15.0} {:>15.0}",
            point.shards, point.cycles_per_sec, point.flits_per_sec
        );
        points.push(point);
    }
    ShardedSection { cols, rows, points }
}

fn net_switch_cfg() -> HiRiseConfig {
    HiRiseConfig::builder(NET_RADIX, LAYERS)
        .channel_multiplicity(4)
        .scheme(ArbitrationScheme::LayerToLayerLrg)
        .build()
        .expect("valid Hi-Rise configuration")
}

/// Benchmarks the unsharded mesh reference (`MeshSim`) at one load:
/// median simulated cycles/sec and delivered packets/sec across timed
/// segments.
fn measure_net_mesh(
    dim: usize,
    injection: f64,
    schedule: NetSchedule,
    scale: &Scale,
) -> Throughput {
    let cfg = MeshSimConfig::new(dim, dim, NET_PPD)
        .injection_rate(injection)
        .warmup(0)
        .measure(u64::MAX / 2)
        .seed(SEED)
        .schedule(schedule);
    let switch_cfg = net_switch_cfg();
    let mut sim = MeshSim::new(cfg, move || {
        HiRiseSwitch::with_kernel(&switch_cfg, ArbiterKernel::Word)
    });
    let mut pattern = UniformRandom::new(sim.total_cores());
    let mut report = sim.empty_report();
    sim.run_cycles(&mut pattern, &mut report, scale.warmup_cycles);
    let mut cycles_per_sec = Vec::with_capacity(scale.reps);
    let mut packets_per_sec = Vec::with_capacity(scale.reps);
    for _ in 0..scale.reps {
        let delivered = report.completed_measured();
        let start = Instant::now();
        sim.run_cycles(&mut pattern, &mut report, scale.cycles_per_rep);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        cycles_per_sec.push(scale.cycles_per_rep as f64 / secs);
        packets_per_sec.push((report.completed_measured() - delivered) as f64 / secs);
    }
    Throughput {
        cycles_per_sec: median(&mut cycles_per_sec),
        packets_per_sec: median(&mut packets_per_sec),
    }
}

/// Benchmarks the dragonfly through the sharded engine at one shard
/// (the engine itself, without lockstep overhead).
fn measure_net_dragonfly(injection: f64, schedule: NetSchedule, scale: &Scale) -> Throughput {
    let (_routers, (a, p, h, g)) = net_dragonfly(scale);
    let geo = DragonflyGeometry::new(DragonflyConfig::new(a, p, h, g), NET_RADIX, &[])
        .expect("routable dragonfly");
    let endpoints = a * g * p;
    let cfg = ShardedConfig::new()
        .injection_rate(injection)
        .warmup(0)
        .measure(u64::MAX / 2)
        .seed(SEED)
        .schedule(schedule);
    let switch_cfg = net_switch_cfg();
    let mut sim = ShardedSim::new(
        geo,
        cfg,
        1,
        |_node| HiRiseSwitch::with_kernel(&switch_cfg, ArbiterKernel::Word),
        || Box::new(UniformRandom::new(endpoints)) as Box<dyn TrafficPattern>,
    );
    sim.run_cycles(scale.warmup_cycles);
    let mut cycles_per_sec = Vec::with_capacity(scale.reps);
    let mut packets_per_sec = Vec::with_capacity(scale.reps);
    let mut delivered = sim.report().completed_measured();
    for _ in 0..scale.reps {
        let start = Instant::now();
        sim.run_cycles(scale.cycles_per_rep);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let now_delivered = sim.report().completed_measured();
        cycles_per_sec.push(scale.cycles_per_rep as f64 / secs);
        packets_per_sec.push((now_delivered - delivered) as f64 / secs);
        delivered = now_delivered;
    }
    Throughput {
        cycles_per_sec: median(&mut cycles_per_sec),
        packets_per_sec: median(&mut packets_per_sec),
    }
}

fn measure_net(row: &NetRow, scale: &Scale) -> Throughput {
    let schedule = NetSchedule::default();
    match row.sim {
        "mesh" => measure_net_mesh(net_mesh_dim(scale), row.injection, schedule, scale),
        _ => measure_net_dragonfly(row.injection, schedule, scale),
    }
}

fn parse_throughput(value: &Json) -> Option<Throughput> {
    Some(Throughput {
        cycles_per_sec: value.get("cycles_per_sec")?.as_f64()?,
        packets_per_sec: value.get("packets_per_sec")?.as_f64()?,
    })
}

/// Loads the labelled measurements (and any `"sharded"` / `"net"`
/// sections) from an existing results file so a re-run under one label
/// — or a `--sharded` / `--net` sweep — preserves everything else.
/// Files with any other schema (including `v1`, whose medians were
/// biased) are ignored and overwritten wholesale.
fn load_existing(path: &str, rows: &mut [Row], net_rows: &mut [NetRow]) -> Option<ShardedSection> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return None;
    };
    let Ok(doc) = json::parse(&text) else {
        eprintln!("warning: {path} is not valid JSON; starting fresh");
        return None;
    };
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) && !COMPATIBLE_SCHEMAS.iter().any(|&s| schema == Some(s)) {
        eprintln!("warning: {path} has an unknown schema; starting fresh");
        return None;
    }
    if let Some(results) = doc.get("results").and_then(Json::as_arr) {
        for entry in results {
            let fabric = entry.get("fabric").and_then(Json::as_str);
            let radix = entry.get("radix").and_then(Json::as_u64);
            let (Some(fabric), Some(radix)) = (fabric, radix) else {
                continue;
            };
            for row in rows.iter_mut() {
                if row.fabric == fabric && row.radix as u64 == radix {
                    row.before = entry.get("before").and_then(parse_throughput);
                    row.after = entry.get("after").and_then(parse_throughput);
                }
            }
        }
    }
    for (sim, nodes, injection, before, after) in parse_net(&doc) {
        for row in net_rows.iter_mut() {
            if row.sim == sim && row.nodes == nodes && row.injection == injection {
                row.before = before;
                row.after = after;
            }
        }
    }
    parse_sharded(&doc)
}

/// Raw `"net"` rows of a results document, for merging and validation.
#[allow(clippy::type_complexity)]
fn parse_net(doc: &Json) -> Vec<(String, usize, f64, Option<Throughput>, Option<Throughput>)> {
    let Some(results) = doc
        .get("net")
        .and_then(|n| n.get("results"))
        .and_then(Json::as_arr)
    else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|entry| {
            Some((
                entry.get("sim")?.as_str()?.to_string(),
                entry.get("nodes")?.as_u64()? as usize,
                entry.get("injection_rate")?.as_f64()?,
                entry.get("before").and_then(parse_throughput),
                entry.get("after").and_then(parse_throughput),
            ))
        })
        .collect()
}

fn parse_sharded(doc: &Json) -> Option<ShardedSection> {
    let section = doc.get("sharded")?;
    Some(ShardedSection {
        cols: section.get("cols")?.as_u64()? as usize,
        rows: section.get("rows")?.as_u64()? as usize,
        points: section
            .get("results")?
            .as_arr()?
            .iter()
            .filter_map(|p| {
                Some(ShardedPoint {
                    shards: p.get("shards")?.as_u64()? as usize,
                    cycles_per_sec: p.get("cycles_per_sec")?.as_f64()?,
                    flits_per_sec: p.get("flits_per_sec")?.as_f64()?,
                })
            })
            .collect(),
    })
}

fn write_throughput(out: &mut String, value: Option<Throughput>) {
    match value {
        None => out.push_str("null"),
        Some(t) => {
            out.push_str("{\"cycles_per_sec\":");
            json::write_f64(out, t.cycles_per_sec);
            out.push_str(",\"packets_per_sec\":");
            json::write_f64(out, t.packets_per_sec);
            out.push('}');
        }
    }
}

fn render_sharded(out: &mut String, section: &ShardedSection) {
    out.push_str(",\n  \"sharded\":{\"topology\":\"mesh\",\"cols\":");
    out.push_str(&section.cols.to_string());
    out.push_str(",\"rows\":");
    out.push_str(&section.rows.to_string());
    out.push_str(",\"radix\":");
    out.push_str(&SHARDED_RADIX.to_string());
    out.push_str(",\"ports_per_direction\":");
    out.push_str(&SHARDED_PPD.to_string());
    out.push_str(",\"results\":[\n");
    for (index, point) in section.points.iter().enumerate() {
        out.push_str("    {\"shards\":");
        out.push_str(&point.shards.to_string());
        out.push_str(",\"cycles_per_sec\":");
        json::write_f64(out, point.cycles_per_sec);
        out.push_str(",\"flits_per_sec\":");
        json::write_f64(out, point.flits_per_sec);
        out.push('}');
        out.push_str(if index + 1 < section.points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]}");
}

fn render_net(out: &mut String, rows: &[NetRow]) {
    out.push_str(",\n  \"net\":{\"net_before_engine\":");
    json::write_escaped(out, NET_BEFORE_ENGINE);
    out.push_str(",\"net_after_engine\":");
    json::write_escaped(out, NET_AFTER_ENGINE);
    out.push_str(",\"radix\":");
    out.push_str(&NET_RADIX.to_string());
    out.push_str(",\"ports_per_direction\":");
    out.push_str(&NET_PPD.to_string());
    out.push_str(",\"results\":[\n");
    for (index, row) in rows.iter().enumerate() {
        out.push_str("    {\"sim\":");
        json::write_escaped(out, row.sim);
        out.push_str(",\"nodes\":");
        out.push_str(&row.nodes.to_string());
        out.push_str(",\"injection_rate\":");
        json::write_f64(out, row.injection);
        out.push_str(",\"before\":");
        write_throughput(out, row.before);
        out.push_str(",\"after\":");
        write_throughput(out, row.after);
        out.push_str(",\"speedup_cycles_per_sec\":");
        match row.speedup() {
            Some(s) => json::write_f64(out, s),
            None => out.push_str("null"),
        }
        out.push('}');
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]}");
}

fn render(rows: &[Row], scale: &Scale, sharded: Option<&ShardedSection>, net: &[NetRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\":");
    json::write_escaped(&mut out, SCHEMA);
    out.push_str(",\n  \"pattern\":\"uniform-random\"");
    out.push_str(",\n  \"before_kernel\":\"scalar\"");
    out.push_str(",\n  \"after_kernel\":\"word\"");
    out.push_str(",\n  \"injection_rate\":");
    json::write_f64(&mut out, INJECTION_RATE);
    out.push_str(",\n  \"packet_len_flits\":4");
    out.push_str(",\n  \"quick\":");
    out.push_str(if scale.quick { "true" } else { "false" });
    out.push_str(",\n  \"warmup_cycles\":");
    out.push_str(&scale.warmup_cycles.to_string());
    out.push_str(",\n  \"cycles_per_rep\":");
    out.push_str(&scale.cycles_per_rep.to_string());
    out.push_str(",\n  \"reps\":");
    out.push_str(&scale.reps.to_string());
    out.push_str(",\n  \"results\":[\n");
    for (index, row) in rows.iter().enumerate() {
        out.push_str("    {\"fabric\":");
        json::write_escaped(&mut out, row.fabric);
        out.push_str(",\"radix\":");
        out.push_str(&row.radix.to_string());
        out.push_str(",\"before\":");
        write_throughput(&mut out, row.before);
        out.push_str(",\"after\":");
        write_throughput(&mut out, row.after);
        out.push_str(",\"speedup_cycles_per_sec\":");
        match row.speedup() {
            Some(s) => json::write_f64(&mut out, s),
            None => out.push_str("null"),
        }
        out.push('}');
        out.push_str(if index + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(section) = sharded {
        render_sharded(&mut out, section);
    }
    let measured_net: Vec<NetRow> = net
        .iter()
        .filter(|r| r.before.is_some() || r.after.is_some())
        .cloned()
        .collect();
    if !measured_net.is_empty() {
        render_net(&mut out, &measured_net);
    }
    out.push_str("\n}\n");
    out
}

/// Validates a results file: schema tag, full fabric × radix coverage,
/// and positive throughput on every present measurement. Absolute
/// numbers are machine-dependent and deliberately not checked.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("{path}: missing or unexpected schema tag"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    for fabric in FABRICS {
        for radix in RADICES {
            let entry = results
                .iter()
                .find(|e| {
                    e.get("fabric").and_then(Json::as_str) == Some(fabric)
                        && e.get("radix").and_then(Json::as_u64) == Some(radix as u64)
                })
                .ok_or_else(|| format!("{path}: no entry for {fabric} radix {radix}"))?;
            let mut measured = 0;
            for label in ["before", "after"] {
                match entry.get(label) {
                    None | Some(Json::Null) => {}
                    Some(value) => {
                        let t = parse_throughput(value).ok_or_else(|| {
                            format!("{path}: malformed {label} for {fabric} radix {radix}")
                        })?;
                        if t.cycles_per_sec <= 0.0 || t.packets_per_sec <= 0.0 {
                            return Err(format!(
                                "{path}: non-positive {label} throughput for {fabric} radix {radix}"
                            ));
                        }
                        measured += 1;
                    }
                }
            }
            if measured == 0 {
                return Err(format!(
                    "{path}: {fabric} radix {radix} has neither before nor after"
                ));
            }
        }
    }
    // The net section is optional and additive, but when present every
    // row needs a recognised topology, a positive router count, and at
    // least one positive labelled measurement.
    match doc.get("net") {
        None | Some(Json::Null) => {}
        Some(_) => {
            let rows = parse_net(&doc);
            if rows.is_empty() {
                return Err(format!("{path}: malformed or empty net section"));
            }
            for (sim, nodes, injection, before, after) in rows {
                if sim != "mesh" && sim != "dragonfly" {
                    return Err(format!("{path}: unknown net sim {sim:?}"));
                }
                if nodes == 0 || injection <= 0.0 {
                    return Err(format!("{path}: degenerate net row for {sim}"));
                }
                let mut measured = 0;
                for (label, value) in [("before", before), ("after", after)] {
                    if let Some(t) = value {
                        if t.cycles_per_sec <= 0.0 || t.packets_per_sec <= 0.0 {
                            return Err(format!(
                                "{path}: non-positive {label} throughput for net {sim} \
                                 at {injection}"
                            ));
                        }
                        measured += 1;
                    }
                }
                if measured == 0 {
                    return Err(format!(
                        "{path}: net {sim} at {injection} has neither before nor after"
                    ));
                }
            }
        }
    }
    // The sharded section is optional and additive, but when present it
    // must be well-formed: parseable geometry and at least one point
    // with positive throughput at a positive shard count.
    match doc.get("sharded") {
        None | Some(Json::Null) => {}
        Some(_) => {
            let section =
                parse_sharded(&doc).ok_or_else(|| format!("{path}: malformed sharded section"))?;
            if section.points.is_empty() {
                return Err(format!("{path}: sharded section has no results"));
            }
            for point in &section.points {
                if point.shards == 0 {
                    return Err(format!("{path}: sharded result with zero shards"));
                }
                if point.cycles_per_sec <= 0.0 || point.flits_per_sec <= 0.0 {
                    return Err(format!(
                        "{path}: non-positive throughput at {} shards",
                        point.shards
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Word-vs-scalar regression gate: measures the quick grid under both
/// kernels and fails if the word kernel drops below [`SMOKE_FLOOR`] x
/// the scalar throughput anywhere.
fn smoke() -> ExitCode {
    let scale = Scale::quick();
    println!(
        "cyclebench --smoke: word vs scalar, {} cycles x {} reps per combination (floor {SMOKE_FLOOR}x)\n",
        scale.cycles_per_rep, scale.reps
    );
    println!(
        "{:<10} {:>5} {:>15} {:>15} {:>8}",
        "fabric", "radix", "scalar c/s", "word c/s", "ratio"
    );
    let mut failures = Vec::new();
    for fabric in FABRICS {
        for radix in RADICES {
            let scalar = measure(fabric, radix, ArbiterKernel::Scalar, &scale);
            let word = measure(fabric, radix, ArbiterKernel::Word, &scale);
            let ratio = word.cycles_per_sec / scalar.cycles_per_sec;
            println!(
                "{:<10} {:>5} {:>15.0} {:>15.0} {:>7.2}x",
                fabric, radix, scalar.cycles_per_sec, word.cycles_per_sec, ratio
            );
            if ratio < SMOKE_FLOOR {
                failures.push(format!(
                    "{fabric} radix {radix}: word kernel at {ratio:.2}x of scalar (floor {SMOKE_FLOOR}x)"
                ));
            }
        }
    }
    // Sharded-mesh determinism gate: a short bounded run of the quick
    // sweep mesh must produce identical telemetry at 1 and 4 shards.
    let sharded_reports: Vec<MeshReport> = [1usize, 4]
        .iter()
        .map(|&shards| {
            let mut sim = build_sharded_mesh(4, 4, shards);
            sim.run_cycles(2_000);
            sim.report()
        })
        .collect();
    if sharded_reports[0] == sharded_reports[1] && sharded_reports[0].completed_measured() > 0 {
        println!(
            "\nsharded mesh OK: 1-shard and 4-shard telemetry identical \
             ({} packets delivered)",
            sharded_reports[0].completed_measured()
        );
    } else if sharded_reports[0].completed_measured() == 0 {
        failures.push("sharded mesh smoke delivered no packets".to_string());
    } else {
        failures.push("sharded mesh telemetry differs between 1 and 4 shards".to_string());
    }
    if failures.is_empty() {
        println!("smoke OK: word kernel at or above {SMOKE_FLOOR}x scalar everywhere");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("cyclebench --smoke: {failure}");
        }
        ExitCode::FAILURE
    }
}

/// Active-set regression gate: benchmarks the quick net shapes under
/// both schedules at low load and fails if the active-set schedule
/// drops below [`NET_SMOKE_FLOOR`] x the dense sweep anywhere, or if
/// the two schedules ever disagree on telemetry.
fn net_smoke() -> ExitCode {
    let scale = Scale::quick();
    println!(
        "cyclebench --net-smoke: active-set vs dense at injection {NET_SMOKE_INJECTION}, \
         {} cycles x {} reps per row (floor {NET_SMOKE_FLOOR}x)\n",
        scale.cycles_per_rep, scale.reps
    );
    println!(
        "{:<10} {:>6} {:>15} {:>15} {:>8}",
        "sim", "nodes", "dense c/s", "active c/s", "ratio"
    );
    let mut failures = Vec::new();
    let dim = net_mesh_dim(&scale);
    type Bench = fn(NetSchedule, &Scale) -> Throughput;
    let shapes: [(&str, usize, Bench); 2] = [
        ("mesh", dim * dim, |schedule, scale| {
            measure_net_mesh(net_mesh_dim(scale), NET_SMOKE_INJECTION, schedule, scale)
        }),
        ("dragonfly", net_dragonfly(&scale).0, |schedule, scale| {
            measure_net_dragonfly(NET_SMOKE_INJECTION, schedule, scale)
        }),
    ];
    for (sim, nodes, bench) in shapes {
        let dense = bench(NetSchedule::Dense, &scale);
        let active = bench(NetSchedule::ActiveSet, &scale);
        let ratio = active.cycles_per_sec / dense.cycles_per_sec;
        println!(
            "{:<10} {:>6} {:>15.0} {:>15.0} {:>7.2}x",
            sim, nodes, dense.cycles_per_sec, active.cycles_per_sec, ratio
        );
        if ratio < NET_SMOKE_FLOOR {
            failures.push(format!(
                "{sim}: active-set schedule at {ratio:.2}x of dense (floor {NET_SMOKE_FLOOR}x)"
            ));
        }
    }
    // Schedule-identity gate: a short bounded mesh run must produce
    // identical telemetry under both schedules (the full fault matrix
    // lives in tests/net_schedule.rs; this catches gross breakage in
    // the released binary).
    let reports: Vec<MeshReport> = [NetSchedule::Dense, NetSchedule::ActiveSet]
        .into_iter()
        .map(|schedule| {
            let cfg = MeshSimConfig::new(dim, dim, NET_PPD)
                .injection_rate(NET_SMOKE_INJECTION)
                .warmup(100)
                .measure(1_000)
                .seed(SEED)
                .schedule(schedule);
            let switch_cfg = net_switch_cfg();
            let mut sim = MeshSim::new(cfg, move || {
                HiRiseSwitch::with_kernel(&switch_cfg, ArbiterKernel::Word)
            });
            let mut pattern = UniformRandom::new(sim.total_cores());
            let mut report = sim.empty_report();
            sim.run_cycles(&mut pattern, &mut report, 2_000);
            report
        })
        .collect();
    if reports[0] == reports[1] && reports[0].completed_measured() > 0 {
        println!(
            "\nschedule identity OK: dense and active-set telemetry identical \
             ({} packets delivered)",
            reports[0].completed_measured()
        );
    } else if reports[0].completed_measured() == 0 {
        failures.push("net smoke delivered no packets".to_string());
    } else {
        failures.push("telemetry differs between dense and active-set schedules".to_string());
    }
    if failures.is_empty() {
        println!("net smoke OK: active-set at or above {NET_SMOKE_FLOOR}x dense everywhere");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("cyclebench --net-smoke: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut run_smoke = false;
    let mut run_net_smoke = false;
    let mut run_sharded = false;
    let mut run_net = false;
    let mut label = "after".to_string();
    let mut out_path = "BENCH_sim.json".to_string();
    let mut check_path: Option<String> = None;
    let mut iter = args.into_iter();
    let missing = |flag: &str| -> String { arg_error(format!("missing value for {flag}"), USAGE) };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "quick" => quick = true,
            "--smoke" => run_smoke = true,
            "--net-smoke" => run_net_smoke = true,
            "--sharded" => run_sharded = true,
            "--net" => run_net = true,
            "--label" => label = iter.next().unwrap_or_else(|| missing("--label")),
            "--out" => out_path = iter.next().unwrap_or_else(|| missing("--out")),
            "--check" => check_path = Some(iter.next().unwrap_or_else(|| missing("--check"))),
            other => arg_error(format!("unknown flag {other:?}"), USAGE),
        }
    }
    if let Some(path) = check_path {
        return match check(&path) {
            Ok(()) => {
                println!("{path}: OK");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if run_smoke {
        return smoke();
    }
    if run_net_smoke {
        return net_smoke();
    }
    if label != "before" && label != "after" {
        arg_error(format!("invalid value {label:?} for --label"), USAGE);
    }
    let kernel = kernel_for_label(&label);
    let scale = if quick { Scale::quick() } else { Scale::full() };

    let mut rows: Vec<Row> = FABRICS
        .iter()
        .flat_map(|&fabric| {
            RADICES.iter().map(move |&radix| Row {
                fabric,
                radix,
                before: None,
                after: None,
            })
        })
        .collect();
    let mut net = net_rows(&scale);
    let mut sharded = load_existing(&out_path, &mut rows, &mut net);
    let write_and_check = |rows: &[Row], sharded: Option<&ShardedSection>, net: &[NetRow]| {
        let rendered = render(rows, &scale, sharded, net);
        if let Err(error) = std::fs::write(&out_path, &rendered) {
            eprintln!("cyclebench: cannot write {out_path}: {error}");
            return ExitCode::FAILURE;
        }
        match check(&out_path) {
            Ok(()) => {
                println!("\nwrote {out_path}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("cyclebench: self-check failed: {message}");
                ExitCode::FAILURE
            }
        }
    };
    if rows.iter().all(|r| r.before.is_none() && r.after.is_none()) && (run_sharded || run_net) {
        eprintln!(
            "cyclebench: note: {out_path} has no kernel rows; \
             run a --label pass first so the self-check can pass"
        );
    }

    if run_net {
        // Net sweep: refresh this label's engine column in place.
        println!(
            "cyclebench --net: label={label} ({} engine), {} cycles x {} reps per row\n",
            if label == "before" {
                NET_BEFORE_ENGINE
            } else {
                NET_AFTER_ENGINE
            },
            scale.cycles_per_rep,
            scale.reps
        );
        println!(
            "{:<10} {:>6} {:>10} {:>15} {:>15} {:>9}",
            "sim", "nodes", "injection", "cycles/sec", "packets/sec", "speedup"
        );
        for row in net.iter_mut() {
            let throughput = measure_net(row, &scale);
            if label == "before" {
                row.before = Some(throughput);
            } else {
                row.after = Some(throughput);
            }
            let speedup = row
                .speedup()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:<10} {:>6} {:>10.3} {:>15.0} {:>15.0} {:>9}",
                row.sim,
                row.nodes,
                row.injection,
                throughput.cycles_per_sec,
                throughput.packets_per_sec,
                speedup
            );
        }
        return write_and_check(&rows, sharded.as_ref(), &net);
    }

    if run_sharded {
        // Sharded sweep only: replace the section, keep the kernel rows.
        sharded = Some(measure_sharded_section(&scale));
        return write_and_check(&rows, sharded.as_ref(), &net);
    }

    println!(
        "cyclebench: label={label} ({} kernel), {} cycles x {} reps per combination\n",
        kernel.label(),
        scale.cycles_per_rep,
        scale.reps
    );
    println!(
        "{:<10} {:>5} {:>15} {:>15} {:>9}",
        "fabric", "radix", "cycles/sec", "packets/sec", "speedup"
    );
    for row in rows.iter_mut() {
        let throughput = measure(row.fabric, row.radix, kernel, &scale);
        if label == "before" {
            row.before = Some(throughput);
        } else {
            row.after = Some(throughput);
        }
        let speedup = row
            .speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<10} {:>5} {:>15.0} {:>15.0} {:>9}",
            row.fabric, row.radix, throughput.cycles_per_sec, throughput.packets_per_sec, speedup
        );
    }

    write_and_check(&rows, sharded.as_ref(), &net)
}

#[cfg(test)]
mod tests {
    use super::{kernel_for_label, median};
    use hirise_core::ArbiterKernel;

    #[test]
    fn median_odd_returns_middle() {
        let mut values = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut values), 2.0);
    }

    #[test]
    fn median_even_averages_middles() {
        // The v1 bug returned 4.0 here (upper middle, biased high).
        let mut values = [4.0, 1.0, 2.0, 8.0];
        assert_eq!(median(&mut values), 3.0);
        let mut pair = [10.0, 20.0];
        assert_eq!(median(&mut pair), 15.0);
    }

    #[test]
    #[should_panic(expected = "median of an empty sample")]
    fn median_empty_panics() {
        median(&mut []);
    }

    #[test]
    fn labels_map_to_kernels() {
        assert_eq!(kernel_for_label("before"), ArbiterKernel::Scalar);
        assert_eq!(kernel_for_label("after"), ArbiterKernel::Word);
    }
}
