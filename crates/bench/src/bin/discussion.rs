//! §VI-E discussion numbers: the power chain against other topologies
//! and the kilo-core composition argument.
//!
//! The paper: "2D Swizzle-Switch [...] power is 33% better than mesh
//! and 28% better than flattened butterfly. Hi-Rise further improves
//! over the 2D Swizzle-Switch power by about 38%, giving us about 58%
//! power savings over flattened butterfly. The system speedup of
//! Hi-Rise over flattened butterfly is approximately 13%."
//!
//! We measure the Hi-Rise-vs-2D leg with our own models and compose it
//! with the published Swizzle-Switch-vs-mesh/butterfly legs (from
//! Sewell et al., JETCAS 2012, which the paper cites for them).

use hirise_core::HiRiseConfig;
use hirise_phys::SwitchDesign;

/// Power at a given flit throughput: `flits/ns * pJ/flit / 1000` watts.
fn power_w(flits_per_ns: f64, energy_pj: f64) -> f64 {
    flits_per_ns * energy_pj / 1000.0
}

fn main() {
    let flat = SwitchDesign::flat_2d(64);
    let hirise = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());

    // Iso-throughput comparison: every interconnect moves the same
    // traffic (say 10 flits/ns of 128-bit flits); energy/transaction is
    // what differs.
    let flits_per_ns = 10.0;
    let p_hirise = power_w(flits_per_ns, hirise.energy_per_transaction_pj());
    let p_2d = power_w(flits_per_ns, flat.energy_per_transaction_pj());
    // Published legs (paper §VI-E, citing [12]): the 2D Swizzle-Switch
    // is 33% better than a mesh and 28% better than a flattened
    // butterfly at this system scale.
    let p_mesh = p_2d / (1.0 - 0.33);
    let p_fb = p_2d / (1.0 - 0.28);

    println!("§VI-E power chain at {flits_per_ns} flits/ns (iso-throughput):\n");
    println!("  mesh                : {p_mesh:6.3} W  (paper leg: 2D is 33% better)");
    println!("  flattened butterfly : {p_fb:6.3} W  (paper leg: 2D is 28% better)");
    println!("  2D Swizzle-Switch   : {p_2d:6.3} W  (measured energy model)");
    println!("  Hi-Rise CLRG        : {p_hirise:6.3} W  (measured energy model)");
    println!();
    println!(
        "  Hi-Rise vs 2D       : {:+.1}%  (paper: about -38%)",
        100.0 * (p_hirise / p_2d - 1.0)
    );
    println!(
        "  Hi-Rise vs butterfly: {:+.1}%  (paper: about -58%)",
        100.0 * (p_hirise / p_fb - 1.0)
    );
    println!();
    println!("Kilo-core composition (Fig. 13): see `--bin fig13` for the");
    println!("flit-level mesh-of-Hi-Rise simulation and the `kilocore_mesh`");
    println!("example for the hop-count argument for concentration.");
}
