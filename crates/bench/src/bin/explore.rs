//! Ad-hoc experiment CLI: simulate any switch configuration under any
//! traffic pattern at any load, reporting latency/throughput in both
//! cycle and wall-clock units.
//!
//! ```sh
//! cargo run --release -p hirise-bench --bin explore -- \
//!     --radix 64 --layers 4 --channels 4 --scheme clrg \
//!     --pattern hotspot --load 0.1
//! ```
//!
//! Options (all have defaults):
//! `--radix N` `--layers L` (`--layers 0` = flat 2D switch)
//! `--channels C` `--scheme l2l|wlrg|clrg` `--alloc input|output|priority`
//! `--pattern uniform|hotspot|adversarial|bursty|tornado|neighbor|`
//! `transpose|bitcomp|interlayer|worstcase` `--load packets/input/cycle`
//! `--cycles N` `--seed S`

use hirise_bench::args::{arg_error, parse_flag_value};
use hirise_core::{
    ArbitrationScheme, ChannelAllocation, Fabric, HiRiseConfig, HiRiseSwitch, OutputId, Switch2d,
};
use hirise_phys::{ns_from_cycles, packets_per_ns, SwitchDesign};
use hirise_sim::traffic::{
    paper_adversarial, BitComplement, Bursty, Hotspot, InterLayerOnly, NeighborShift, Tornado,
    TrafficPattern, Transpose, UniformRandom, WorstCaseL2lc,
};
use hirise_sim::{NetworkSim, SimConfig};

const USAGE: &str = "explore [--radix N] [--layers L] [--channels C] \
[--scheme l2l|wlrg|clrg] [--alloc input|output|priority] \
[--pattern uniform|hotspot|adversarial|bursty|tornado|neighbor|transpose|\
bitcomp|interlayer|worstcase] [--load RATE] [--cycles N] [--seed S]";

#[derive(Debug)]
struct Options {
    radix: usize,
    layers: usize,
    channels: usize,
    scheme: ArbitrationScheme,
    alloc: ChannelAllocation,
    pattern: String,
    load: f64,
    cycles: u64,
    seed: u64,
}

impl Options {
    fn parse() -> Options {
        let mut options = Options {
            radix: 64,
            layers: 4,
            channels: 4,
            scheme: ArbitrationScheme::class_based(),
            alloc: ChannelAllocation::InputBinned,
            pattern: "uniform".to_string(),
            load: 0.1,
            cycles: 20_000,
            seed: 1,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let value = || -> String {
                args.iter()
                    .skip_while(|a| *a != flag)
                    .nth(1)
                    .unwrap_or_else(|| arg_error(format!("missing value for {flag}"), USAGE))
                    .clone()
            };
            match flag.as_str() {
                "--radix" => options.radix = parse_flag_value(flag, &value(), USAGE),
                "--layers" => options.layers = parse_flag_value(flag, &value(), USAGE),
                "--channels" => options.channels = parse_flag_value(flag, &value(), USAGE),
                "--scheme" => {
                    options.scheme = match value().as_str() {
                        "l2l" => ArbitrationScheme::LayerToLayerLrg,
                        "wlrg" => ArbitrationScheme::WeightedLrg,
                        "clrg" => ArbitrationScheme::class_based(),
                        other => arg_error(format!("unknown scheme {other:?}"), USAGE),
                    }
                }
                "--alloc" => {
                    options.alloc = match value().as_str() {
                        "input" => ChannelAllocation::InputBinned,
                        "output" => ChannelAllocation::OutputBinned,
                        "priority" => ChannelAllocation::PriorityBased,
                        other => arg_error(format!("unknown allocation {other:?}"), USAGE),
                    }
                }
                "--pattern" => options.pattern = value(),
                "--load" => options.load = parse_flag_value(flag, &value(), USAGE),
                "--cycles" => options.cycles = parse_flag_value(flag, &value(), USAGE),
                "--seed" => options.seed = parse_flag_value(flag, &value(), USAGE),
                other if other.starts_with("--") => {
                    arg_error(format!("unknown flag {other}"), USAGE)
                }
                _ => {}
            }
            if flag.starts_with("--") {
                iter.next(); // consume the value
            }
        }
        options
    }

    fn make_pattern(&self) -> Box<dyn TrafficPattern> {
        let n = self.radix;
        let l = self.layers.max(2);
        match self.pattern.as_str() {
            "uniform" => Box::new(UniformRandom::new(n)),
            "hotspot" => Box::new(Hotspot::new(OutputId::new(n - 1))),
            "adversarial" => Box::new(paper_adversarial()),
            "bursty" => Box::new(Bursty::with_defaults(n)),
            "tornado" => Box::new(Tornado::new(n)),
            "neighbor" => Box::new(NeighborShift::new(n)),
            "transpose" => Box::new(Transpose::new(n)),
            "bitcomp" => Box::new(BitComplement::new(n)),
            "interlayer" => Box::new(InterLayerOnly::new(n, l)),
            "worstcase" => Box::new(WorstCaseL2lc::new(n, l)),
            other => arg_error(format!("unknown pattern {other:?}"), USAGE),
        }
    }
}

fn main() {
    let options = Options::parse();
    let hirise_cfg = (options.layers > 0).then(|| {
        HiRiseConfig::builder(options.radix, options.layers)
            .channel_multiplicity(options.channels)
            .scheme(options.scheme)
            .allocation(options.alloc)
            .build()
            .expect("valid configuration")
    });
    let (fabric, design): (Box<dyn Fabric>, SwitchDesign) = match &hirise_cfg {
        None => (
            Box::new(Switch2d::new(options.radix)),
            SwitchDesign::flat_2d(options.radix),
        ),
        Some(cfg) => (Box::new(HiRiseSwitch::new(cfg)), SwitchDesign::hirise(cfg)),
    };
    let freq = design.frequency_ghz();

    println!("design    : {} @ {:.2} GHz", design.label(), freq);
    println!(
        "physical  : {:.3} mm2, {:.0} pJ/transaction, {} TSVs",
        design.area_mm2(),
        design.energy_per_transaction_pj(),
        design.tsv_count()
    );
    println!(
        "run       : pattern {}, load {} packets/input/cycle, {} cycles, seed {}",
        options.pattern, options.load, options.cycles, options.seed
    );

    let sim_cfg = SimConfig::new(options.radix)
        .injection_rate(options.load)
        .warmup(options.cycles / 10)
        .measure(options.cycles)
        .drain(options.cycles)
        .seed(options.seed);

    // Run on the concrete switch when it is a Hi-Rise so the L2LC
    // utilisation counters remain accessible afterwards.
    let report = match &hirise_cfg {
        None => {
            drop(fabric);
            NetworkSim::new(
                Switch2d::new(options.radix),
                options.make_pattern(),
                sim_cfg,
            )
            .run()
        }
        Some(cfg) => {
            drop(fabric);
            let mut sim = NetworkSim::new(HiRiseSwitch::new(cfg), options.make_pattern(), sim_cfg);
            let report = sim.run();
            let switch = sim.fabric();
            println!(
                "\ntraffic   : {:.1}% of grants crossed layers (L2LCs)",
                100.0 * switch.inter_layer_fraction()
            );
            let l = cfg.layers();
            let c = cfg.channel_multiplicity();
            let mut min = u64::MAX;
            let mut max = 0u64;
            for src in 0..l {
                for dst in 0..l {
                    if src == dst {
                        continue;
                    }
                    for k in 0..c {
                        let g = switch.channel_grant_count(
                            hirise_core::LayerId::new(src),
                            hirise_core::LayerId::new(dst),
                            hirise_core::ChannelId::new(k),
                        );
                        min = min.min(g);
                        max = max.max(g);
                    }
                }
            }
            println!("channels  : grants per L2LC min {min}, max {max}");
            report
        }
    };

    println!();
    println!(
        "accepted  : {:.4} packets/cycle = {:.2} packets/ns",
        report.accepted_rate(),
        packets_per_ns(report.accepted_rate(), freq)
    );
    println!(
        "latency   : mean {:.1} cycles = {:.2} ns | p50 {:.0} | p99 {:.0} | max {} cycles",
        report.avg_latency_cycles(),
        ns_from_cycles(report.avg_latency_cycles(), freq),
        report.latency_percentile_cycles(50.0).unwrap_or(0.0),
        report.latency_percentile_cycles(99.0).unwrap_or(0.0),
        report.max_latency_cycles()
    );
    println!(
        "stability : {} ({} of {} measured packets completed)",
        if report.is_stable() {
            "stable"
        } else {
            "SATURATED"
        },
        report.completed_measured(),
        report.injected_measured()
    );
}
