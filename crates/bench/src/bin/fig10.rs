//! Fig. 10: packet latency (ns) versus offered load (packets/input/ns)
//! under uniform random traffic, for the 2D switch, Hi-Rise with
//! channel multiplicity 4/2/1, and the 3D folded baseline.
//!
//! Latency is simulated in cycles and scaled by each design's clock
//! period; load in packets/input/ns is mapped to packets/input/cycle
//! per design frequency, so the x-axis matches the paper's.

use hirise_bench::{build_fabric, RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig};
use hirise_phys::{ns_from_cycles, SwitchDesign};
use hirise_sim::traffic::UniformRandom;
use hirise_sim::NetworkSim;

fn main() {
    let scale = RunScale::from_args();
    let mut designs: Vec<(&str, SwitchDesign)> = vec![
        ("2D", SwitchDesign::flat_2d(64)),
        ("3D Folded", SwitchDesign::folded(64, 4)),
    ];
    for c in [4usize, 2, 1] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(c)
            .scheme(ArbitrationScheme::LayerToLayerLrg)
            .build()
            .expect("valid configuration");
        let name: &str = match c {
            4 => "3D 4-Channel",
            2 => "3D 2-Channel",
            _ => "3D 1-Channel",
        };
        designs.push((name, SwitchDesign::hirise(&cfg)));
    }

    println!("Fig. 10: latency (ns) vs load (packets/input/ns), uniform random\n");
    let loads_per_ns: Vec<f64> = (1..=7).map(|i| 0.05 * i as f64).collect();
    let mut headers = vec!["load(p/ns)".to_string()];
    headers.extend(designs.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);

    for &load in &loads_per_ns {
        let mut cells = vec![format!("{load:.2}")];
        for (_, design) in &designs {
            let freq = design.frequency_ghz();
            let rate_per_cycle = load / freq;
            if rate_per_cycle >= 1.0 {
                cells.push("-".into());
                continue;
            }
            let cfg = scale.sim_config(64).injection_rate(rate_per_cycle);
            let report =
                NetworkSim::new(build_fabric(design.point()), UniformRandom::new(64), cfg).run();
            if report.is_stable() {
                cells.push(format!(
                    "{:.2}",
                    ns_from_cycles(report.avg_latency_cycles(), freq)
                ));
            } else {
                cells.push("sat".into());
            }
        }
        table.add_row(cells);
    }
    table.print();
    println!("\npaper: zero-load latency of the 3D configurations ~20% below 2D;");
    println!("1-channel saturates first, then 2-channel, then folded/2D, 4-channel last.");
}
