//! Fig. 10: packet latency (ns) versus offered load (packets/input/ns)
//! under uniform random traffic, for the 2D switch, Hi-Rise with
//! channel multiplicity 4/2/1, and the 3D folded baseline.
//!
//! Latency is simulated in cycles and scaled by each design's clock
//! period; load in packets/input/ns is mapped to packets/input/cycle
//! per design frequency, so the x-axis matches the paper's. Each
//! design's curve runs as a parallel `hirise_lab` campaign.

use hirise_bench::{RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig};
use hirise_lab::{default_threads, latency_curve, FabricSpec, PatternSpec, DEFAULT_SEED};
use hirise_phys::ns_from_cycles;

fn main() {
    let scale = RunScale::from_args();
    let mut specs: Vec<(&str, FabricSpec)> = vec![
        ("2D", FabricSpec::Flat2d { radix: 64 }),
        (
            "3D Folded",
            FabricSpec::Folded {
                radix: 64,
                layers: 4,
            },
        ),
    ];
    for c in [4usize, 2, 1] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(c)
            .scheme(ArbitrationScheme::LayerToLayerLrg)
            .build()
            .expect("valid configuration");
        let name: &str = match c {
            4 => "3D 4-Channel",
            2 => "3D 2-Channel",
            _ => "3D 1-Channel",
        };
        specs.push((name, FabricSpec::hirise(cfg)));
    }

    println!("Fig. 10: latency (ns) vs load (packets/input/ns), uniform random\n");
    let loads_per_ns: Vec<f64> = (1..=7).map(|i| 0.05 * i as f64).collect();
    let mut headers = vec!["load(p/ns)".to_string()];
    headers.extend(specs.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);

    let threads = default_threads();
    let sim = scale.sim_params();
    // One parallel curve per design; loads past 1 packet/cycle are
    // unreachable for that clock and render as "-".
    let mut columns: Vec<Vec<String>> = Vec::new();
    for (_, fabric) in &specs {
        let freq = fabric.design().frequency_ghz();
        let feasible: Vec<f64> = loads_per_ns
            .iter()
            .map(|&load| load / freq)
            .filter(|&rate| rate < 1.0)
            .collect();
        let points = latency_curve(
            fabric,
            &PatternSpec::Uniform,
            &feasible,
            &sim,
            DEFAULT_SEED,
            threads,
        );
        let mut column: Vec<String> = points
            .iter()
            .map(|p| {
                if p.stable {
                    format!("{:.2}", ns_from_cycles(p.latency_cycles, freq))
                } else {
                    "sat".into()
                }
            })
            .collect();
        column.resize(loads_per_ns.len(), "-".into());
        columns.push(column);
    }

    for (row, &load) in loads_per_ns.iter().enumerate() {
        let mut cells = vec![format!("{load:.2}")];
        cells.extend(columns.iter().map(|col| col[row].clone()));
        table.add_row(cells);
    }
    table.print();
    println!("\npaper: zero-load latency of the 3D configurations ~20% below 2D;");
    println!("1-channel saturates first, then 2-channel, then folded/2D, 4-channel last.");
}
