//! Fig. 11: fairness of the arbitration schemes.
//!
//! * Panel **a** — per-input latency under hotspot traffic (all 64
//!   inputs request output 63 on layer 4) at 80% of the hotspot
//!   saturation load; L-2-L LRG starves the hotspot layer's own inputs
//!   {48..63}, CLRG restores flat-2D fairness.
//! * Panel **b** — aggregate throughput (packets/ns) vs load under
//!   uniform random traffic for 2D and the three 3D schemes.
//! * Panel **c** — per-input throughput for the paper's adversarial
//!   pattern ({3,7,11,15} on L1 and {20} on L2 all requesting
//!   output 63).
//!
//! Run with an optional panel argument (`a`, `b`, `c`); default all.

use hirise_bench::{build_fabric, RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig, OutputId};
use hirise_phys::{packets_per_ns, SwitchDesign};
use hirise_sim::traffic::{paper_adversarial, Hotspot, TrafficPattern, UniformRandom};
use hirise_sim::NetworkSim;

/// The four designs of Fig. 11 with their frequencies.
fn designs() -> Vec<(&'static str, SwitchDesign)> {
    let mut v: Vec<(&'static str, SwitchDesign)> = vec![("2D", SwitchDesign::flat_2d(64))];
    for (name, scheme) in [
        ("3D L-2-L LRG", ArbitrationScheme::LayerToLayerLrg),
        ("3D WLRG", ArbitrationScheme::WeightedLrg),
        ("3D CLRG", ArbitrationScheme::class_based()),
    ] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .scheme(scheme)
            .build()
            .expect("valid configuration");
        v.push((name, SwitchDesign::hirise(&cfg)));
    }
    v
}

fn run_pattern(
    design: &SwitchDesign,
    pattern: impl TrafficPattern,
    rate_per_cycle: f64,
    scale: &RunScale,
) -> hirise_sim::SimReport {
    let cfg = scale.sim_config(64).injection_rate(rate_per_cycle);
    NetworkSim::new(build_fabric(design.point()), pattern, cfg).run()
}

/// Hotspot saturation: one output serves a packet every
/// `packet_len + 1` cycles, shared by 64 inputs.
const HOTSPOT_SAT_PER_INPUT: f64 = 0.2 / 64.0;

fn panel_a(scale: &RunScale) {
    println!("Fig. 11a: per-input latency (cycles), hotspot all->63 @ 80% sat\n");
    let rate = 0.8 * HOTSPOT_SAT_PER_INPUT;
    let mut results = Vec::new();
    for (name, design) in designs() {
        let report = run_pattern(&design, Hotspot::new(OutputId::new(63)), rate, scale);
        results.push((name, report));
    }
    let mut table = Table::new(["input", "2D", "3D L-2-L LRG", "3D WLRG", "3D CLRG"]);
    for input in 0..64 {
        let mut cells = vec![format!("{input}")];
        for (_, report) in &results {
            cells.push(
                report
                    .input_avg_latency_cycles(input)
                    .map_or("-".into(), |l| format!("{l:.0}")),
            );
        }
        table.add_row(cells);
    }
    table.print();
    // Summarise the fairness gap: local layer (inputs 48..63, same layer
    // as output 63) vs remote layers.
    println!();
    for (name, report) in &results {
        let avg = |range: std::ops::Range<usize>| {
            let v: Vec<f64> = range
                .filter_map(|i| report.input_avg_latency_cycles(i))
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "{name:14} remote inputs avg {:7.1} cy | local inputs (48..63) avg {:7.1} cy",
            avg(0..48),
            avg(48..64)
        );
    }
    println!("\npaper: L-2-L LRG shows a wide local-vs-remote gap; CLRG/WLRG/2D are flat.\n");
}

fn panel_b(scale: &RunScale) {
    println!("Fig. 11b: throughput (packets/ns) vs load (packets/input/ns), UR\n");
    let ds = designs();
    let mut headers = vec!["load(p/ns)".to_string()];
    headers.extend(ds.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);
    for i in 1..=9 {
        let load_per_ns = 0.05 * i as f64;
        let mut cells = vec![format!("{load_per_ns:.2}")];
        for (_, design) in &ds {
            let freq = design.frequency_ghz();
            let rate = (load_per_ns / freq).min(1.0);
            let report = run_pattern(design, UniformRandom::new(64), rate, scale);
            cells.push(format!(
                "{:.2}",
                packets_per_ns(report.accepted_rate(), freq)
            ));
        }
        table.add_row(cells);
    }
    table.print();
    println!("\npaper: all 3D schemes saturate ~15% above 2D; L-2-L LRG marginally");
    println!("above CLRG (it clocks slightly faster).\n");
}

fn panel_c(scale: &RunScale) {
    println!("Fig. 11c: per-input throughput (packets/ns), adversarial pattern\n");
    // The five contenders share one output: saturation is one packet per
    // 5 cycles across them; inject well above each input's fair share.
    let rate = 0.2;
    let mut table = Table::new(["input", "2D", "3D L-2-L LRG", "3D WLRG", "3D CLRG"]);
    let mut per_design = Vec::new();
    for (_, design) in designs() {
        let freq = design.frequency_ghz();
        let report = run_pattern(&design, paper_adversarial(), rate, scale);
        per_design.push((freq, report));
    }
    for input in [3usize, 7, 11, 15, 20] {
        let mut cells = vec![format!("{input}")];
        for (freq, report) in &per_design {
            cells.push(format!(
                "{:.4}",
                packets_per_ns(report.input_accepted_rate(input), *freq)
            ));
        }
        table.add_row(cells);
    }
    table.print();
    println!("\npaper: L-2-L LRG gives input 20 ~4x the throughput of inputs");
    println!("3/7/11/15; WLRG and CLRG equalise all five, like the 2D switch.");
}

fn main() {
    let scale = RunScale::from_args();
    let panel = std::env::args().nth(1).unwrap_or_default();
    match panel.as_str() {
        "a" => panel_a(&scale),
        "b" => panel_b(&scale),
        "c" => panel_c(&scale),
        _ => {
            panel_a(&scale);
            panel_b(&scale);
            panel_c(&scale);
        }
    }
}
