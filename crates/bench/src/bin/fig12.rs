//! Fig. 12: sensitivity of the 64-radix 4-channel 4-layer Hi-Rise
//! switch's frequency and area to TSV pitch (0.4–5 µm), against the 2D
//! switch's constant values.

use hirise_bench::Table;
use hirise_core::HiRiseConfig;
use hirise_phys::{SwitchDesign, Technology};

fn main() {
    println!("Fig. 12: frequency & area vs TSV pitch, Hi-Rise 64-radix 4-ch 4-layer\n");
    let cfg = HiRiseConfig::paper_optimal();
    let flat = SwitchDesign::flat_2d(64);
    let mut table = Table::new(["pitch(um)", "freq(GHz)", "area(mm2)"]);
    for tenth in [4u32, 6, 8, 10, 15, 20, 30, 40, 50] {
        let pitch = tenth as f64 / 10.0;
        let design = SwitchDesign::hirise(&cfg).with_technology(Technology::with_tsv_pitch(pitch));
        table.add_row([
            format!("{pitch:.1}"),
            format!("{:.2}", design.frequency_ghz()),
            format!("{:.3}", design.area_mm2()),
        ]);
    }
    table.print();
    println!(
        "\n2D reference: {:.2} GHz, {:.3} mm2 (pitch-independent)",
        flat.frequency_ghz(),
        flat.area_mm2()
    );
    let nominal = SwitchDesign::hirise(&cfg);
    let plus25 = SwitchDesign::hirise(&cfg).with_technology(Technology::with_tsv_pitch(1.0));
    println!(
        "+25% pitch: area +{:.2}%, frequency {:.1}% (paper: +1.67%, -1.8%)",
        100.0 * (plus25.area_mm2() / nominal.area_mm2() - 1.0),
        100.0 * (plus25.frequency_ghz() / nominal.frequency_ghz() - 1.0),
    );
}
