//! Fig. 13 / §VI-E: a 2D mesh NoC composed of Hi-Rise switches for
//! kilo-core systems. The paper sketches the topology; this experiment
//! simulates it flit-by-flit — XY dimension-ordered routing in the
//! plane, the 3D switch providing the Z dimension inside each hop —
//! and reports latency/throughput at increasing load.
//!
//! The load sweep runs as one parallel `hirise_lab` campaign over a
//! `Topology::Mesh`; the port-mapping comparison needs a closure-based
//! traffic pattern and stays on the direct `MeshSim` API.

use hirise_bench::{RunScale, Table};
use hirise_core::{HiRiseConfig, HiRiseSwitch, InputId, OutputId};
use hirise_lab::{default_threads, CampaignSpec, FabricSpec, PatternSpec, Topology};
use hirise_phys::SwitchDesign;
use hirise_sim::mesh_sim::{MeshPortMap, MeshSim, MeshSimConfig};
use hirise_sim::traffic::Custom;

fn main() {
    let scale = RunScale::from_args();
    let switch_cfg = HiRiseConfig::paper_optimal();
    let design = SwitchDesign::hirise(&switch_cfg);
    let freq = design.frequency_ghz();

    // 5x5 mesh of 64-radix switches, 6 ports per direction -> 40 cores
    // per node, 1000 cores total (the kilo-core design point of
    // `HiRiseMesh::kilocore`).
    let (cols, rows, ports_per_dir) = (5, 5, 6);
    let cores = (64 - 4 * ports_per_dir) * cols * rows;
    println!(
        "Fig. 13: {cols}x{rows} mesh of Hi-Rise CLRG switches, {cores} cores, \
         {freq:.2} GHz\n"
    );

    let loads_per_ns: Vec<f64> = (1..=6).map(|step| 0.002 * step as f64).collect();
    let spec = CampaignSpec::new("fig13-mesh")
        .topology(Topology::Mesh {
            cols,
            rows,
            ports_per_direction: ports_per_dir,
            layer_aware: None,
        })
        .fabric(FabricSpec::hirise(switch_cfg.clone()))
        .pattern(PatternSpec::Uniform)
        .loads(loads_per_ns.iter().map(|&l| l / freq))
        .sim(
            scale
                .sim_params()
                .cycles(scale.warmup / 2, scale.measure / 2, scale.drain),
        );
    let results = spec.run(default_threads());

    let mut table = Table::new([
        "load(p/core/ns)",
        "accepted(p/ns)",
        "latency(ns)",
        "avg hops",
        "stable",
    ]);
    for (result, &load_per_ns) in results.iter().zip(&loads_per_ns) {
        table.add_row([
            format!("{load_per_ns:.3}"),
            format!("{:.2}", result.metrics.accepted_rate * freq),
            format!("{:.2}", result.metrics.avg_latency_cycles / freq),
            format!("{:.2}", result.metrics.avg_hops.unwrap_or(f64::NAN)),
            format!("{}", result.metrics.stable),
        ]);
    }
    table.print();
    println!(
        "\nuniform random over {cores} cores; mean XY route ~4.2 switches \
         (graph analysis in `hirise_sim::mesh`). The paper presents this\n\
         topology qualitatively; these are this reproduction's numbers."
    );

    // §VI-E's closing point: layer-aware port assignment keeps
    // straight-through traffic on one switch layer, easing the L2LC
    // bottleneck. Compare the two mappings under horizontal-dominated
    // traffic (west-edge cores to east-edge cores, same row).
    println!("\nlayer-aware port mapping (horizontal cross traffic):\n");
    let cores_per_node = 64 - 4 * ports_per_dir;
    let mut map_table = Table::new(["mapping", "accepted(p/ns)", "latency(ns)"]);
    for (name, map) in [
        ("contiguous", MeshPortMap::Contiguous),
        ("layer-aware", MeshPortMap::LayerAware { layers: 4 }),
    ] {
        let rate = 0.05 / freq;
        let cfg = MeshSimConfig::new(cols, rows, ports_per_dir)
            .port_map(map)
            .injection_rate(rate)
            .warmup(scale.warmup / 2)
            .measure(scale.measure / 2)
            .drain(scale.drain);
        let mut sim = MeshSim::new(cfg, || HiRiseSwitch::new(&switch_cfg));
        let mut pattern = Custom::new("horizontal", move |input: InputId, r, rng| {
            use hirise_core::rng::Rng;
            let node = input.index() / cores_per_node;
            if !node.is_multiple_of(cols) {
                return None; // only the west-edge column injects
            }
            if !rng.gen_bool(f64::clamp(r, 0.0, 1.0)) {
                return None;
            }
            let dst_node = node + (cols - 1); // same row, east edge
            Some(OutputId::new(
                dst_node * cores_per_node + rng.gen_range(0..cores_per_node),
            ))
        });
        let report = sim.run(&mut pattern);
        map_table.add_row([
            name.to_string(),
            format!("{:.2}", report.accepted_rate() * freq),
            format!("{:.2}", report.avg_latency_cycles() / freq),
        ]);
    }
    map_table.print();
    println!("\nlayer-aware placement keeps a straight-through packet on one");
    println!("switch layer per hop (no L2LC crossing), as §VI-E anticipates.");
}
