//! Fig. 9: (a) frequency vs radix for the 2D switch and 3D 1/2/4-channel
//! Hi-Rise; (b) frequency vs number of stacked layers for radices
//! 48/64/80/128; (c) energy per 128-bit transaction vs radix.
//!
//! The sweeps use the continuous (parametric) circuit model, as the
//! paper does — design points like 48-radix over 5 layers are model
//! evaluations, not buildable configurations.
//!
//! Run with an optional panel argument (`a`, `b`, `c`); default prints
//! all three.

use hirise_bench::Table;
use hirise_phys::{
    hirise_cycle_ns_parametric, hirise_energy_pj_parametric, SwitchDesign, Technology,
};

fn freq_3d(radix: usize, layers: usize, c: usize) -> f64 {
    let tech = Technology::nominal_32nm();
    1.0 / hirise_cycle_ns_parametric(radix as f64, layers as f64, c as f64, false, &tech)
}

fn energy_3d(radix: usize, layers: usize, c: usize) -> f64 {
    let tech = Technology::nominal_32nm();
    hirise_energy_pj_parametric(radix as f64, layers as f64, c as f64, false, &tech)
}

fn panel_a() {
    println!("Fig. 9a: frequency (GHz) vs radix, 4 layers\n");
    let mut table = Table::new(["radix", "2D", "3D 4-ch", "3D 2-ch", "3D 1-ch"]);
    for radix in [8usize, 16, 32, 48, 64, 80, 96, 112, 128] {
        table.add_row([
            radix.to_string(),
            format!("{:.2}", SwitchDesign::flat_2d(radix).frequency_ghz()),
            format!("{:.2}", freq_3d(radix, 4, 4)),
            format!("{:.2}", freq_3d(radix, 4, 2)),
            format!("{:.2}", freq_3d(radix, 4, 1)),
        ]);
    }
    table.print();
    println!("\npaper anchors: 2D@64 1.69; 3D@64 4-ch 2.24, 2-ch 2.46, 1-ch 2.64;");
    println!("2D faster at low radix, 3D faster beyond ~radix 32, gap widens.\n");
}

fn panel_b() {
    println!("Fig. 9b: frequency (GHz) vs stacked layers, 4-channel\n");
    let radices = [48usize, 64, 80, 128];
    let mut table = Table::new(["layers", "radix 48", "radix 64", "radix 80", "radix 128"]);
    for layers in 2..=7 {
        let mut cells = vec![layers.to_string()];
        for &radix in &radices {
            cells.push(format!("{:.2}", freq_3d(radix, layers, 4)));
        }
        table.add_row(cells);
    }
    table.print();
    println!("\npaper: 64-radix optimum at 3-5 layers (peak at 4);");
    println!("higher radices shift the optimum towards more layers.\n");
}

fn panel_c() {
    println!("Fig. 9c: energy (pJ per 128-bit transaction) vs radix, 4 layers\n");
    let mut table = Table::new(["radix", "2D", "3D 4-ch", "3D 2-ch", "3D 1-ch"]);
    for radix in [8usize, 16, 32, 48, 64, 80, 96, 112, 128] {
        table.add_row([
            radix.to_string(),
            format!(
                "{:.1}",
                SwitchDesign::flat_2d(radix).energy_per_transaction_pj()
            ),
            format!("{:.1}", energy_3d(radix, 4, 4)),
            format!("{:.1}", energy_3d(radix, 4, 2)),
            format!("{:.1}", energy_3d(radix, 4, 1)),
        ]);
    }
    table.print();
    println!("\npaper anchors: 2D@64 71 pJ; 3D@64 4-ch 42, 2-ch 39, 1-ch 37;");
    println!("3D energy grows at a much gentler slope than 2D.");
}

fn main() {
    let panel = std::env::args().nth(1).unwrap_or_default();
    match panel.as_str() {
        "a" => panel_a(),
        "b" => panel_b(),
        "c" => panel_c(),
        _ => {
            panel_a();
            panel_b();
            panel_c();
        }
    }
}
