//! The paper's headline comparison (§I, §VI-A): a 64-radix, 128-bit,
//! 4-layer Hi-Rise with CLRG versus the flat 2D Swizzle-Switch —
//! throughput, area, zero-load latency and energy per transaction.
//!
//! Paper: 10.65 Tbps; +15% throughput, −33% area, −20% latency, −38%
//! energy vs 2D.

use hirise_bench::{build_fabric, saturation_tbps, RunScale};
use hirise_core::HiRiseConfig;
use hirise_phys::{ns_from_cycles, SwitchDesign};
use hirise_sim::traffic::UniformRandom;
use hirise_sim::NetworkSim;

fn zero_load_latency_ns(design: &SwitchDesign, scale: &RunScale) -> f64 {
    let cfg = scale.sim_config(64).injection_rate(0.005);
    let report = NetworkSim::new(build_fabric(design.point()), UniformRandom::new(64), cfg).run();
    ns_from_cycles(report.avg_latency_cycles(), design.frequency_ghz())
}

fn main() {
    let scale = RunScale::from_args();
    let flat = SwitchDesign::flat_2d(64);
    let hirise = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());

    let t_flat = saturation_tbps(&flat, &scale);
    let t_hirise = saturation_tbps(&hirise, &scale);
    let l_flat = zero_load_latency_ns(&flat, &scale);
    let l_hirise = zero_load_latency_ns(&hirise, &scale);

    println!("Headline: Hi-Rise 64-radix 4-channel 4-layer CLRG vs 2D\n");
    println!(
        "throughput : {t_hirise:6.2} vs {t_flat:6.2} Tbps  ({:+.1}%)   paper: 10.65 Tbps, +15%",
        100.0 * (t_hirise / t_flat - 1.0)
    );
    println!(
        "area       : {:6.3} vs {:6.3} mm2   ({:+.1}%)   paper: -33%",
        hirise.area_mm2(),
        flat.area_mm2(),
        100.0 * (hirise.area_mm2() / flat.area_mm2() - 1.0)
    );
    println!(
        "latency    : {l_hirise:6.2} vs {l_flat:6.2} ns    ({:+.1}%)   paper: -20%",
        100.0 * (l_hirise / l_flat - 1.0)
    );
    println!(
        "energy     : {:6.1} vs {:6.1} pJ    ({:+.1}%)   paper: -38%",
        hirise.energy_per_transaction_pj(),
        flat.energy_per_transaction_pj(),
        100.0 * (hirise.energy_per_transaction_pj() / flat.energy_per_transaction_pj() - 1.0)
    );
    println!(
        "\nfrequency  : {:.2} GHz (paper 2.2), area {:.3} mm2 (paper 0.451), energy {:.0} pJ (paper 44)",
        hirise.frequency_ghz(),
        hirise.area_mm2(),
        hirise.energy_per_transaction_pj()
    );

    // §I scalability claim: Hi-Rise reaches radix 96 at the 2D switch's
    // radix-64 operating frequency.
    let cfg96 = HiRiseConfig::builder(96, 4)
        .channel_multiplicity(4)
        .build()
        .expect("valid configuration");
    let hirise96 = SwitchDesign::hirise(&cfg96);
    println!(
        "scalability: Hi-Rise radix 96 runs at {:.2} GHz vs 2D radix 64 at {:.2} GHz \
         (paper: 96 vs 64 iso-frequency)",
        hirise96.frequency_ghz(),
        flat.frequency_ghz()
    );
}
