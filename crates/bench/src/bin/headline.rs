//! The paper's headline comparison (§I, §VI-A): a 64-radix, 128-bit,
//! 4-layer Hi-Rise with CLRG versus the flat 2D Swizzle-Switch —
//! throughput, area, zero-load latency and energy per transaction.
//!
//! Paper: 10.65 Tbps; +15% throughput, −33% area, −20% latency, −38%
//! energy vs 2D.

use hirise_bench::{saturation_tbps, RunScale};
use hirise_core::HiRiseConfig;
use hirise_lab::{default_threads, CampaignSpec, FabricSpec, PatternSpec};
use hirise_phys::{ns_from_cycles, SwitchDesign};

/// Zero-load latency (ns) of both designs, simulated as one two-job
/// `hirise_lab` campaign at a near-zero offered load.
fn zero_load_latencies_ns(
    flat: &SwitchDesign,
    hirise: &SwitchDesign,
    scale: &RunScale,
) -> (f64, f64) {
    let spec = CampaignSpec::new("headline-zero-load")
        .fabric(FabricSpec::from_point(flat.point()))
        .fabric(FabricSpec::from_point(hirise.point()))
        .pattern(PatternSpec::Uniform)
        .loads([0.005])
        .sim(scale.sim_params());
    let results = spec.run(default_threads());
    (
        ns_from_cycles(results[0].metrics.avg_latency_cycles, flat.frequency_ghz()),
        ns_from_cycles(
            results[1].metrics.avg_latency_cycles,
            hirise.frequency_ghz(),
        ),
    )
}

fn main() {
    let scale = RunScale::from_args();
    let flat = SwitchDesign::flat_2d(64);
    let hirise = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());

    let t_flat = saturation_tbps(&flat, &scale);
    let t_hirise = saturation_tbps(&hirise, &scale);
    let (l_flat, l_hirise) = zero_load_latencies_ns(&flat, &hirise, &scale);

    println!("Headline: Hi-Rise 64-radix 4-channel 4-layer CLRG vs 2D\n");
    println!(
        "throughput : {t_hirise:6.2} vs {t_flat:6.2} Tbps  ({:+.1}%)   paper: 10.65 Tbps, +15%",
        100.0 * (t_hirise / t_flat - 1.0)
    );
    println!(
        "area       : {:6.3} vs {:6.3} mm2   ({:+.1}%)   paper: -33%",
        hirise.area_mm2(),
        flat.area_mm2(),
        100.0 * (hirise.area_mm2() / flat.area_mm2() - 1.0)
    );
    println!(
        "latency    : {l_hirise:6.2} vs {l_flat:6.2} ns    ({:+.1}%)   paper: -20%",
        100.0 * (l_hirise / l_flat - 1.0)
    );
    println!(
        "energy     : {:6.1} vs {:6.1} pJ    ({:+.1}%)   paper: -38%",
        hirise.energy_per_transaction_pj(),
        flat.energy_per_transaction_pj(),
        100.0 * (hirise.energy_per_transaction_pj() / flat.energy_per_transaction_pj() - 1.0)
    );
    println!(
        "\nfrequency  : {:.2} GHz (paper 2.2), area {:.3} mm2 (paper 0.451), energy {:.0} pJ (paper 44)",
        hirise.frequency_ghz(),
        hirise.area_mm2(),
        hirise.energy_per_transaction_pj()
    );

    // §I scalability claim: Hi-Rise reaches radix 96 at the 2D switch's
    // radix-64 operating frequency.
    let cfg96 = HiRiseConfig::builder(96, 4)
        .channel_multiplicity(4)
        .build()
        .expect("valid configuration");
    let hirise96 = SwitchDesign::hirise(&cfg96);
    println!(
        "scalability: Hi-Rise radix 96 runs at {:.2} GHz vs 2D radix 64 at {:.2} GHz \
         (paper: 96 vs 64 iso-frequency)",
        hirise96.frequency_ghz(),
        flat.frequency_ghz()
    );
}
