//! Load generator for the campaign daemon (`hirise-serve`).
//!
//! Starts an in-process server, then hammers it over real TCP from
//! `--clients` concurrent connections until `--requests` campaign
//! submissions have been answered, drawing each submission from a
//! small pool of `--specs` distinct campaigns so repeats exercise the
//! content-addressed cache. Reports the numbers EXPERIMENTS.md records
//! for the load test: request rate, cache-hit rate, completed/rejected
//! split (rejections are the typed admission-control responses, not
//! errors), and p50/p99/max end-to-end latency.
//!
//! The defaults oversubscribe the daemon (64 clients against a
//! 32-request admission limit), so a healthy run shows BOTH served
//! traffic and typed `overloaded` rejections — that is the admission
//! contract under overload, not a failure. The run fails (exit 1) if
//! any request dies without a typed response, or if repeats produce no
//! cache hits.

use hirise_bench::args::{arg_error, flag_value, parse_flag_value};
use hirise_lab::json::{self, Json};
use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};
use hirise_serve::{ServeConfig, ServerHandle};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "loadgen [--requests N] [--clients N] [--specs N] [--workers N] \
                     [--max-inflight N] [--queue-cap N]";

struct Options {
    requests: usize,
    clients: usize,
    specs: usize,
    workers: usize,
    max_inflight: usize,
    queue_cap: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        requests: 1000,
        clients: 64,
        specs: 8,
        workers: hirise_lab::default_threads(),
        max_inflight: 32,
        queue_cap: 1024,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |flag: &str| -> usize {
            let v = flag_value(flag, &mut args, USAGE);
            parse_flag_value(flag, &v, USAGE)
        };
        match arg.as_str() {
            "--requests" => opts.requests = numeric("--requests"),
            "--clients" => opts.clients = numeric("--clients"),
            "--specs" => opts.specs = numeric("--specs"),
            "--workers" => opts.workers = numeric("--workers"),
            "--max-inflight" => opts.max_inflight = numeric("--max-inflight"),
            "--queue-cap" => opts.queue_cap = numeric("--queue-cap"),
            other => arg_error(format!("unknown argument {other:?}"), USAGE),
        }
    }
    if opts.requests == 0 || opts.clients == 0 || opts.specs == 0 || opts.workers == 0 {
        arg_error("counts must all be at least 1", USAGE);
    }
    opts
}

/// The spec pool: tiny single-job campaigns distinguished by seed, so
/// a request is dominated by service overhead (the quantity under
/// test) rather than simulation time, and repeats are cache hits.
fn spec_pool(n: usize) -> Vec<CampaignSpec> {
    (0..n)
        .map(|i| {
            CampaignSpec::new(format!("loadgen-{i}"))
                .master_seed(0x10AD_0000 + i as u64)
                .fabric(FabricSpec::Flat2d { radix: 8 })
                .pattern(PatternSpec::Uniform)
                .loads([0.2])
                .sim(SimParams::new().cycles(20, 100, 100))
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    completed: usize,
    latencies_us: Vec<u64>,
    rejections: BTreeMap<String, usize>,
    failures: Vec<String>,
}

fn main() {
    let opts = parse_args();
    let data_dir = std::env::temp_dir().join(format!("hirise-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut cfg = ServeConfig::new(&data_dir);
    cfg.workers = opts.workers;
    cfg.max_inflight = opts.max_inflight;
    cfg.max_per_client = opts.clients.max(1);
    cfg.queue_cap = opts.queue_cap;
    let server = match ServerHandle::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("loadgen: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();

    let pool: Arc<Vec<String>> = Arc::new(
        spec_pool(opts.specs)
            .iter()
            .map(|spec| {
                format!("{{\"op\":\"submit\",\"client\":\"CLIENT\",\"spec\":{}}}", {
                    spec.canonical_json()
                })
            })
            .collect(),
    );

    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let started = Instant::now();

    let threads: Vec<_> = (0..opts.clients)
        .map(|thread| {
            let pool = Arc::clone(&pool);
            let next = Arc::clone(&next);
            let tally = Arc::clone(&tally);
            let requests = opts.requests;
            std::thread::spawn(move || {
                let mut stream = connect_with_retry(addr);
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= requests {
                        return;
                    }
                    let line = pool[index % pool.len()].replace("CLIENT", &format!("c{thread}"));
                    let begun = Instant::now();
                    match one_request(&mut stream, &mut reader, &line) {
                        Ok(None) => {
                            let us = begun.elapsed().as_micros() as u64;
                            let mut t = tally.lock().expect("tally poisoned");
                            t.completed += 1;
                            t.latencies_us.push(us);
                        }
                        Ok(Some(code)) => {
                            let mut t = tally.lock().expect("tally poisoned");
                            *t.rejections.entry(code).or_insert(0) += 1;
                        }
                        Err(e) => {
                            tally
                                .lock()
                                .expect("tally poisoned")
                                .failures
                                .push(format!("request {index}: {e}"));
                        }
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        if thread.join().is_err() {
            eprintln!("loadgen: a client thread panicked");
            std::process::exit(1);
        }
    }
    let elapsed = started.elapsed();

    let stats = server.stats();
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut tally = Arc::try_unwrap(tally)
        .unwrap_or_else(|_| panic!("tally still shared"))
        .into_inner()
        .expect("tally poisoned");
    report(&opts, &tally, elapsed, &stats);

    if !tally.failures.is_empty() {
        for f in tally.failures.iter().take(5) {
            eprintln!("loadgen: FAIL: {f}");
        }
        std::process::exit(1);
    }
    let rejected: usize = tally.rejections.values().sum();
    if tally.completed + rejected != opts.requests {
        eprintln!(
            "loadgen: FAIL: {} completed + {rejected} rejected != {} requests",
            tally.completed, opts.requests
        );
        std::process::exit(1);
    }
    if opts.requests > opts.specs && stats.cache_hits == 0 {
        eprintln!("loadgen: FAIL: repeated specs produced no cache hits");
        std::process::exit(1);
    }
    tally.latencies_us.clear();
    println!("loadgen: OK");
}

fn connect_with_retry(addr: std::net::SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(300)))
                    .expect("set timeout");
                return stream;
            }
            Err(e) => {
                if Instant::now() > deadline {
                    eprintln!("loadgen: cannot connect: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// One submit round-trip. `Ok(None)` on a completed stream, `Ok(code)`
/// on a typed rejection, `Err` on anything unprotocol-like.
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<Option<String>, String> {
    writeln!(stream, "{line}").map_err(|e| format!("write: {e}"))?;
    loop {
        let mut response = String::new();
        if reader
            .read_line(&mut response)
            .map_err(|e| format!("read: {e}"))?
            == 0
        {
            return Err("connection closed mid-request".into());
        }
        let value =
            json::parse(response.trim_end()).map_err(|e| format!("bad response line: {e}"))?;
        match value.get("op").and_then(Json::as_str) {
            Some("done") => return Ok(None),
            Some("error") => {
                return Ok(Some(
                    value
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("untyped")
                        .to_string(),
                ))
            }
            Some("accepted") | None => {} // record lines and the stream opener
            Some(op) => return Err(format!("unexpected control line {op:?}")),
        }
    }
}

fn report(opts: &Options, tally: &Tally, elapsed: Duration, stats: &hirise_serve::StatsSnapshot) {
    let mut sorted = tally.latencies_us.clone();
    sorted.sort_unstable();
    let pct = |p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    };
    let rejected: usize = tally.rejections.values().sum();
    let lookups = stats.cache_hits + stats.cache_misses;
    println!(
        "loadgen: {} requests, {} clients, {} distinct specs, {} workers",
        opts.requests, opts.clients, opts.specs, opts.workers
    );
    println!(
        "  wall time      {:.2}s  ({:.0} requests/s)",
        elapsed.as_secs_f64(),
        opts.requests as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  completed      {} ({rejected} rejected, {:.1}% rejection rate)",
        tally.completed,
        100.0 * rejected as f64 / opts.requests as f64
    );
    for (code, count) in &tally.rejections {
        println!("    rejected[{code}] {count}");
    }
    println!(
        "  cache          {} hits / {} lookups ({:.1}% hit rate), {} jobs simulated",
        stats.cache_hits,
        lookups,
        100.0 * stats.cache_hits as f64 / lookups.max(1) as f64,
        stats.jobs_run
    );
    println!(
        "  latency        p50 {}us  p99 {}us  max {}us",
        pct(0.50),
        pct(0.99),
        pct(1.0)
    );
}
