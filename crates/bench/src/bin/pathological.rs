//! §VI-B's pathological corner case: only inter-layer traffic, with the
//! inputs that share an L2LC all requesting different outputs on
//! another layer. The paper bounds the 3D switch at 1/4 of the flat 2D
//! throughput in this corner.

use hirise_bench::RunScale;
use hirise_core::HiRiseConfig;
use hirise_lab::saturation_packets_per_ns;
use hirise_phys::SwitchDesign;
use hirise_sim::traffic::{TrafficPattern, UniformRandom, WorstCaseL2lc};

fn saturation(design: &SwitchDesign, pattern_worst: bool, scale: &RunScale) -> f64 {
    let pattern: Box<dyn TrafficPattern> = if pattern_worst {
        Box::new(WorstCaseL2lc::new(64, 4))
    } else {
        Box::new(UniformRandom::new(64))
    };
    saturation_packets_per_ns(design, pattern, &scale.sim_params())
}

fn main() {
    let scale = RunScale::from_args();
    let flat = SwitchDesign::flat_2d(64);
    let hirise = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());

    println!("Pathological inter-layer corner case (§VI-B)\n");
    let flat_worst = saturation(&flat, true, &scale);
    let hirise_worst = saturation(&hirise, true, &scale);
    let flat_ur = saturation(&flat, false, &scale);
    let hirise_ur = saturation(&hirise, false, &scale);

    println!("                      2D        Hi-Rise   ratio");
    println!(
        "uniform random   : {flat_ur:8.2}  {hirise_ur:8.2}  {:5.2}x (packets/ns)",
        hirise_ur / flat_ur
    );
    println!(
        "worst-case L2LC  : {flat_worst:8.2}  {hirise_worst:8.2}  {:5.2}x (packets/ns)",
        hirise_worst / flat_worst
    );
    println!(
        "\npaper: in this corner the 3D switch can be limited to ~1/4 of the 2D\n\
         switch ({:.2} observed). Arbitration schemes cannot help here — the\n\
         L2LC bandwidth itself is the bottleneck.",
        hirise_worst / flat_worst
    );
}
