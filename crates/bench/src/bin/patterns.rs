//! Traffic-pattern characterisation (beyond the paper's evaluation):
//! saturation throughput of the 2D switch versus the Hi-Rise CLRG
//! switch across every synthetic pattern in `hirise-sim`, exposing how
//! traffic locality interacts with the layered datapath.
//!
//! Intra-layer-friendly patterns (neighbor shift) let Hi-Rise bypass
//! its L2LCs; inter-layer-heavy permutations (tornado, bit complement)
//! stress them.

use hirise_bench::{RunScale, Table};
use hirise_core::HiRiseConfig;
use hirise_lab::saturation_packets_per_ns;
use hirise_phys::SwitchDesign;
use hirise_sim::traffic::{
    BitComplement, Bursty, InterLayerOnly, NeighborShift, RandomPermutation, Tornado,
    TrafficPattern, Transpose, UniformRandom,
};

/// Factory for a boxed traffic pattern.
type PatternFactory = fn() -> Box<dyn TrafficPattern>;

fn saturation(design: &SwitchDesign, pattern: Box<dyn TrafficPattern>, scale: &RunScale) -> f64 {
    saturation_packets_per_ns(design, pattern, &scale.sim_params())
}

fn main() {
    let scale = RunScale::from_args();
    let flat = SwitchDesign::flat_2d(64);
    let hirise = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());

    let patterns: Vec<(&str, PatternFactory)> = vec![
        ("uniform random", || Box::new(UniformRandom::new(64))),
        ("bursty", || Box::new(Bursty::with_defaults(64))),
        ("transpose", || Box::new(Transpose::new(64))),
        ("bit complement", || Box::new(BitComplement::new(64))),
        ("tornado", || Box::new(Tornado::new(64))),
        ("neighbor shift", || Box::new(NeighborShift::new(64))),
        ("random perm", || Box::new(RandomPermutation::new(64, 42))),
        ("inter-layer only", || Box::new(InterLayerOnly::new(64, 4))),
    ];

    println!("Saturation throughput (packets/ns): 2D vs Hi-Rise CLRG, radix 64\n");
    let mut table = Table::new(["pattern", "2D", "Hi-Rise", "ratio"]);
    for (name, make) in patterns {
        let t2d = saturation(&flat, make(), &scale);
        let t3d = saturation(&hirise, make(), &scale);
        table.add_row([
            name.to_string(),
            format!("{t2d:.2}"),
            format!("{t3d:.2}"),
            format!("{:.2}", t3d / t2d),
        ]);
    }
    table.print();
    println!("\nratios > 1 favour Hi-Rise. Locality-friendly patterns (neighbor");
    println!("shift: mostly intra-layer) and conflict-free permutations benefit");
    println!("from the faster clock; inter-layer-heavy patterns squeeze through");
    println!("the L2LCs and can fall below the 2D switch (§VI-B).");
}
