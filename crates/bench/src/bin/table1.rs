//! Table I: implementation cost of 2D versus 3D folded switch
//! implementations for 64-radix (the 3D switch has 4 layers).
//!
//! Paper values: 2D 0.672 mm², 1.69 GHz, 71 pJ, 9.24 Tbps, 0 TSVs;
//! folded 0.705 mm², 1.58 GHz, 73 pJ, 8.86 Tbps, 8192 TSVs.

use hirise_bench::{CostRow, RunScale, Table};
use hirise_phys::SwitchDesign;

fn main() {
    let scale = RunScale::from_args();
    println!("Table I: 2D vs 3D folded, radix 64, 128-bit, uniform random\n");
    let mut table = Table::new(CostRow::headers());
    for (name, design) in [
        ("2D", SwitchDesign::flat_2d(64)),
        ("3D Folded", SwitchDesign::folded(64, 4)),
    ] {
        let row = CostRow::measure(name, &design, &scale);
        table.add_row(row.cells());
    }
    table.print();
    println!("\npaper: 2D 0.672/1.69/71/9.24/0; folded 0.705/1.58/73/8.86/8192");
}
