//! Table IV: implementation cost of the full design space for
//! 64-radix — 2D, 3D folded, and Hi-Rise with channel multiplicity
//! 4, 2 and 1 (baseline L-2-L LRG arbitration, as in the paper's
//! datapath study §VI-A).

use hirise_bench::{CostRow, RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig};
use hirise_phys::SwitchDesign;

fn main() {
    let scale = RunScale::from_args();
    println!("Table IV: 64-radix design space, 4 layers, uniform random\n");
    let mut table = Table::new(CostRow::headers());
    let mut rows = vec![
        ("2D", SwitchDesign::flat_2d(64)),
        ("3D Folded", SwitchDesign::folded(64, 4)),
    ];
    for c in [4usize, 2, 1] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(c)
            .scheme(ArbitrationScheme::LayerToLayerLrg)
            .build()
            .expect("valid configuration");
        rows.push((
            match c {
                4 => "3D 4-Channel",
                2 => "3D 2-Channel",
                _ => "3D 1-Channel",
            },
            SwitchDesign::hirise(&cfg),
        ));
    }
    for (name, design) in rows {
        table.add_row(CostRow::measure(name, &design, &scale).cells());
    }
    table.print();
    println!();
    println!("paper:        2D 0.672/1.69/71/ 9.24/0");
    println!("       3D folded 0.705/1.58/73/ 8.86/8192");
    println!("       3D 4-chan 0.451/2.24/42/10.97/6144");
    println!("       3D 2-chan 0.315/2.46/39/ 7.65/3072");
    println!("       3D 1-chan 0.247/2.64/37/ 4.27/1536");
}
