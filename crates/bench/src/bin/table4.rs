//! Table IV: implementation cost of the full design space for
//! 64-radix — 2D, 3D folded, and Hi-Rise with channel multiplicity
//! 4, 2 and 1 (baseline L-2-L LRG arbitration, as in the paper's
//! datapath study §VI-A).
//!
//! The throughput column is the expensive part (five overload
//! simulations), so it runs as one parallel `hirise_lab` campaign;
//! the analytic cost-model columns are filled in per design.

use hirise_bench::{CostRow, RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig};
use hirise_lab::{default_threads, CampaignSpec, FabricSpec, PatternSpec};
use hirise_phys::{tbps, SwitchDesign};

fn main() {
    let scale = RunScale::from_args();
    println!("Table IV: 64-radix design space, 4 layers, uniform random\n");
    let mut rows = vec![
        ("2D", SwitchDesign::flat_2d(64)),
        ("3D Folded", SwitchDesign::folded(64, 4)),
    ];
    for c in [4usize, 2, 1] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(c)
            .scheme(ArbitrationScheme::LayerToLayerLrg)
            .build()
            .expect("valid configuration");
        rows.push((
            match c {
                4 => "3D 4-Channel",
                2 => "3D 2-Channel",
                _ => "3D 1-Channel",
            },
            SwitchDesign::hirise(&cfg),
        ));
    }

    // One overload job per design (rate 1.0, no drain: the standard
    // saturation point — see `hirise_lab::saturation`). With a single
    // pattern/load/replicate the job index equals the fabric index.
    let mut spec = CampaignSpec::new("table4-throughput")
        .pattern(PatternSpec::Uniform)
        .loads([1.0])
        .sim(scale.sim_params().drain(0));
    for (_, design) in &rows {
        spec = spec.fabric(FabricSpec::from_point(design.point()));
    }
    let results = spec.run(default_threads());

    let mut table = Table::new(CostRow::headers());
    for ((name, design), result) in rows.iter().zip(&results) {
        let row = CostRow {
            design: name.to_string(),
            configuration: design.label(),
            area_mm2: design.area_mm2(),
            frequency_ghz: design.frequency_ghz(),
            energy_pj: design.energy_per_transaction_pj(),
            throughput_tbps: tbps(
                result.metrics.accepted_rate,
                design.frequency_ghz(),
                design.point().flit_bits(),
                4,
            ),
            tsvs: design.tsv_count(),
        };
        table.add_row(row.cells());
    }
    table.print();
    println!();
    println!("paper:        2D 0.672/1.69/71/ 9.24/0");
    println!("       3D folded 0.705/1.58/73/ 8.86/8192");
    println!("       3D 4-chan 0.451/2.24/42/10.97/6144");
    println!("       3D 2-chan 0.315/2.46/39/ 7.65/3072");
    println!("       3D 1-chan 0.247/2.64/37/ 4.27/1536");
}
