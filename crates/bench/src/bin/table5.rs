//! Table V: implementation cost of the arbitration variants for the
//! 4-channel 4-layer 64-radix switch — 2D baseline, 3D L-2-L LRG and
//! 3D CLRG. (WLRG is omitted, as in the paper, because its hardware
//! implementation is infeasible.)

use hirise_bench::{CostRow, RunScale, Table};
use hirise_core::{ArbitrationScheme, HiRiseConfig};
use hirise_phys::SwitchDesign;

fn main() {
    let scale = RunScale::from_args();
    println!("Table V: arbitration variants, 64-radix 4-channel 4-layer\n");
    let mut table = Table::new(CostRow::headers());
    table.add_row(CostRow::measure("2D", &SwitchDesign::flat_2d(64), &scale).cells());
    for (name, scheme) in [
        ("3D L-2-L LRG", ArbitrationScheme::LayerToLayerLrg),
        ("3D CLRG", ArbitrationScheme::class_based()),
    ] {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .scheme(scheme)
            .build()
            .expect("valid configuration");
        table.add_row(CostRow::measure(name, &SwitchDesign::hirise(&cfg), &scale).cells());
    }
    table.print();
    println!();
    println!("paper:        2D 0.672/1.69/71/ 9.24/0");
    println!("       L-2-L LRG 0.451/2.24/42/10.97/6144");
    println!("            CLRG 0.451/2.20/44/10.65/6144");
}
