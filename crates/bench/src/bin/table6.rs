//! Table VI: eight multi-programmed workloads on the 64-core CMP of
//! Table III, comparing a 2D Swizzle-Switch interconnect against the
//! Hi-Rise 4-channel 4-layer CLRG switch. Reports each mix's average
//! MPKI and the 3D-over-2D system speedup.

use hirise_bench::{RunScale, Table};
use hirise_core::{HiRiseConfig, HiRiseSwitch, Switch2d};
use hirise_manycore::{table_vi_mixes, CmpSystem, SystemConfig};
use hirise_phys::SwitchDesign;

fn main() {
    let scale = RunScale::from_args();
    let clrg_cfg = HiRiseConfig::paper_optimal();
    let freq_2d = SwitchDesign::flat_2d(64).frequency_ghz();
    let freq_3d = SwitchDesign::hirise(&clrg_cfg).frequency_ghz();
    println!("Table VI: 64-core CMP, 2D @ {freq_2d:.2} GHz vs Hi-Rise CLRG @ {freq_3d:.2} GHz\n");
    let sys_cfg = SystemConfig::new().instructions_per_core(scale.instructions_per_core);
    let mut table = Table::new([
        "Mix",
        "avg MPKI",
        "Speedup",
        "WSpeedup",
        "paper MPKI",
        "paper Speedup",
    ]);
    let mut speedups = Vec::new();
    for mix in table_vi_mixes() {
        let flat = CmpSystem::new(Switch2d::new(64), freq_2d, &mix, sys_cfg.clone()).run();
        let hirise =
            CmpSystem::new(HiRiseSwitch::new(&clrg_cfg), freq_3d, &mix, sys_cfg.clone()).run();
        assert!(flat.finished() && hirise.finished(), "runs must complete");
        let speedup = hirise.system_ipc() / flat.system_ipc();
        speedups.push(speedup);
        table.add_row([
            mix.name.to_string(),
            format!("{:.1}", mix.avg_mpki()),
            format!("{speedup:.3}"),
            format!("{:.3}", hirise.weighted_speedup(&flat)),
            format!("{:.1}", mix.paper_avg_mpki),
            format!("{:.2}", mix.paper_speedup),
        ]);
    }
    table.print();
    let mean = speedups
        .iter()
        .product::<f64>()
        .powf(1.0 / speedups.len() as f64);
    println!("\ngeometric-mean speedup: {mean:.3} (paper: ~1.08 average)");
}
