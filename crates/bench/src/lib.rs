//! Experiment harness for the Hi-Rise reproduction.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for paper-vs-measured results):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table I (2D vs 3D folded cost) |
//! | `table4` | Table IV (channel-multiplicity design space) |
//! | `table5` | Table V (arbitration variants) |
//! | `table6` | Table VI (application mixes, 64-core CMP) |
//! | `fig9` | Fig. 9a/b/c (frequency & energy scaling) |
//! | `fig10` | Fig. 10 (latency vs load, uniform random) |
//! | `fig11` | Fig. 11a/b/c (arbitration fairness) |
//! | `fig12` | Fig. 12 (TSV pitch sensitivity) |
//! | `fig13` | Fig. 13 / §VI-E (flit-level mesh-of-Hi-Rise, 1000 cores) |
//! | `headline` | §I/§VI-A headline comparison |
//! | `pathological` | §VI-B inter-layer corner case |
//! | `discussion` | §VI-E power chain vs mesh / flattened butterfly |
//! | `ablation` | CLRG class count, halving, allocation, local arbiter |
//! | `patterns` | locality sweep across all synthetic traffic patterns |
//! | `explore` | ad-hoc CLI: any config × pattern × load |
//! | `cyclebench` | simulator throughput baseline (`BENCH_sim.json`, not a paper artifact) |
//!
//! Pass `quick` as an argument to any binary for a shorter (but
//! noisier) run. The `benches/` directory holds wall-clock micro-benches
//! of the arbiters, switches and simulator themselves, built on the
//! internal [`quickbench`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod quickbench;
pub mod runs;
pub mod table;

pub use runs::{build_fabric, saturation_tbps, CostRow, RunScale};
pub use table::Table;
