//! Minimal wall-clock micro-benchmark harness with a criterion-shaped
//! API.
//!
//! The workspace previously used the external `criterion` crate for its
//! `benches/`; that dependency is gone so the workspace builds offline.
//! This module keeps the same call-site surface (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`, `black_box`,
//! `criterion_group!`/`criterion_main!`) backed by a simple
//! warmup-then-sample timer. It reports the median ns/iteration per
//! benchmark on stdout — no statistics machinery, no HTML reports, but
//! good enough to compare arbitration and simulation hot paths across
//! commits.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. by its input size.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Runs one timed closure: calibrates an iteration count during warmup,
/// then times `samples` batches and records the per-iteration medians.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the measured samples, filled in by `iter`.
    median_ns: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, storing the median ns/iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: grow the batch until it takes >= 1 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        self.iters_per_sample = batch;
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(3),
        median_ns: 0.0,
        iters_per_sample: 0,
    };
    f(&mut bencher);
    println!(
        "{full_name:<48} {:>12.1} ns/iter  ({} iters/sample, {} samples)",
        bencher.median_ns, bencher.iters_per_sample, bencher.samples
    );
}

/// Top-level harness handle, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

/// Bundles bench functions into a named runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::quickbench::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
