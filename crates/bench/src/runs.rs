//! Canonical experiment runs shared by the table/figure binaries.

use hirise_core::Fabric;
use hirise_lab::{saturation_throughput, FabricSpec, SimParams};
use hirise_phys::{tbps, DesignPoint, SwitchDesign};
use hirise_sim::traffic::UniformRandom;
use hirise_sim::SimConfig;

/// Simulation lengths for experiments: `full` for the published
/// numbers, `quick` for a fast smoke run (pass `quick` on the command
/// line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunScale {
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain cap in cycles.
    pub drain: u64,
    /// Instructions per core for CMP runs.
    pub instructions_per_core: u64,
}

impl RunScale {
    /// The scale used for the recorded EXPERIMENTS.md numbers.
    pub const fn full() -> Self {
        Self {
            warmup: 3_000,
            measure: 30_000,
            drain: 30_000,
            instructions_per_core: 20_000,
        }
    }

    /// A fast smoke scale (noisier).
    pub const fn quick() -> Self {
        Self {
            warmup: 500,
            measure: 3_000,
            drain: 3_000,
            instructions_per_core: 3_000,
        }
    }

    /// Picks the scale from the process arguments (`quick` selects the
    /// smoke scale).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "quick" || a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// A [`SimConfig`] for this scale at the given radix.
    pub fn sim_config(&self, radix: usize) -> SimConfig {
        SimConfig::new(radix)
            .warmup(self.warmup)
            .measure(self.measure)
            .drain(self.drain)
    }

    /// The equivalent campaign-runner [`SimParams`] for this scale.
    pub fn sim_params(&self) -> SimParams {
        SimParams::new().cycles(self.warmup, self.measure, self.drain)
    }
}

/// Builds the behavioural fabric for a physical design point.
pub fn build_fabric(point: &DesignPoint) -> Box<dyn Fabric> {
    FabricSpec::from_point(point).build()
}

/// Measures uniform-random saturation throughput in Tbps for a design
/// (simulated packets/cycle scaled by the design's clock). The
/// saturation methodology lives in `hirise_lab::saturation`.
pub fn saturation_tbps(design: &SwitchDesign, scale: &RunScale) -> f64 {
    let radix = design.point().radix();
    let fabric = build_fabric(design.point());
    let packets_per_cycle =
        saturation_throughput(fabric, UniformRandom::new(radix), &scale.sim_config(radix));
    tbps(
        packets_per_cycle,
        design.frequency_ghz(),
        design.point().flit_bits(),
        4,
    )
}

/// One row of a Table I/IV/V-style cost comparison.
#[derive(Clone, Debug)]
pub struct CostRow {
    /// Design name ("2D", "3D 4-Channel", ...).
    pub design: String,
    /// Configuration label (the paper's notation).
    pub configuration: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Frequency in GHz.
    pub frequency_ghz: f64,
    /// Energy per 128-bit transaction in pJ.
    pub energy_pj: f64,
    /// Uniform-random saturation throughput in Tbps.
    pub throughput_tbps: f64,
    /// TSVs required.
    pub tsvs: usize,
}

impl CostRow {
    /// Measures a full cost row for `design`.
    pub fn measure(name: &str, design: &SwitchDesign, scale: &RunScale) -> Self {
        Self {
            design: name.to_string(),
            configuration: design.label(),
            area_mm2: design.area_mm2(),
            frequency_ghz: design.frequency_ghz(),
            energy_pj: design.energy_per_transaction_pj(),
            throughput_tbps: saturation_tbps(design, scale),
            tsvs: design.tsv_count(),
        }
    }

    /// The row as formatted table cells.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.design.clone(),
            self.configuration.clone(),
            format!("{:.3}", self.area_mm2),
            format!("{:.2}", self.frequency_ghz),
            format!("{:.0}", self.energy_pj),
            format!("{:.2}", self.throughput_tbps),
            format!("{}", self.tsvs),
        ]
    }

    /// Headers matching [`cells`](Self::cells).
    pub fn headers() -> Vec<&'static str> {
        vec![
            "Design",
            "Configuration",
            "Area(mm2)",
            "Freq(GHz)",
            "E/trans(pJ)",
            "Thpt(Tbps)",
            "#TSVs",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::HiRiseConfig;

    #[test]
    fn scale_from_env_defaults_to_full() {
        // The test binary's args do not contain "quick".
        assert_eq!(RunScale::from_args(), RunScale::full());
    }

    #[test]
    fn builds_every_fabric_kind() {
        assert_eq!(
            build_fabric(&DesignPoint::Flat2d {
                radix: 8,
                flit_bits: 128
            })
            .radix(),
            8
        );
        assert_eq!(
            build_fabric(&DesignPoint::Folded {
                radix: 8,
                layers: 2,
                flit_bits: 128
            })
            .radix(),
            8
        );
        let cfg = HiRiseConfig::builder(8, 2).build().unwrap();
        assert_eq!(build_fabric(&DesignPoint::HiRise(cfg)).radix(), 8);
    }

    #[test]
    fn cost_row_is_self_consistent() {
        let design = SwitchDesign::flat_2d(16);
        let row = CostRow::measure("2D", &design, &RunScale::quick());
        assert_eq!(row.cells().len(), CostRow::headers().len());
        assert!(row.throughput_tbps > 0.0);
        assert_eq!(row.tsvs, 0);
    }
}
