//! Minimal column-aligned text tables for experiment output.

/// A simple text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) -> &mut Self {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.add_row(["a", "1"]).add_row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.add_row(["x"]);
        assert!(t.render().contains('x'));
    }
}
