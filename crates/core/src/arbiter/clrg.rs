//! Class-based Least Recently Granted (CLRG) counter state (§III-B4).
//!
//! Each inter-layer sub-block (one per final output) keeps a short
//! thermometer counter *per primary input* recording how often that input
//! has won this output. The counter value is the input's priority class —
//! class 0 (count 0) is the highest priority. Contenders are compared by
//! class first; LRG breaks ties within the winning class.
//!
//! To keep the counters short and to forgive bursts, whenever a counter
//! saturates all counters in the sub-block are divided by two, which
//! preserves the relative class ordering (the `Div2` block of Fig. 7).

/// Per-output CLRG class counters over `n` primary inputs.
///
/// The paper's hardware uses a 2-bit thermometer counter
/// (`{00, 01, 11}` = 3 classes); the class count is configurable here for
/// the tuning study the paper alludes to ("the number of classes required
/// is a heuristic that needs to be tuned").
#[derive(Clone, Debug)]
pub struct ClrgState {
    counters: Vec<u8>,
    max: u8,
    halve_on_saturation: bool,
}

impl ClrgState {
    /// Creates counters for `n` primary inputs with `classes` priority
    /// classes (counter values `0..classes`).
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2` (a single class degenerates to plain LRG).
    pub fn new(n: usize, classes: u8) -> Self {
        assert!(classes >= 2, "CLRG needs at least 2 classes");
        Self {
            counters: vec![0; n],
            max: classes - 1,
            halve_on_saturation: true,
        }
    }

    /// Disables the divide-by-2 on saturation (counters stick at the
    /// maximum class instead). Ablation knob; the paper's design halves.
    pub fn without_halving(mut self) -> Self {
        self.halve_on_saturation = false;
        self
    }

    /// Number of primary inputs tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether zero inputs are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Number of priority classes.
    #[inline]
    pub fn classes(&self) -> u8 {
        self.max + 1
    }

    /// Priority class of `input` (0 is the highest priority).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn class_of(&self, input: usize) -> u8 {
        self.counters[input]
    }

    /// Records that `input` won this output: its counter increments,
    /// relegating it to a lower-priority class. If the counter is already
    /// saturated, every counter in the sub-block is first divided by two.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn record_win(&mut self, input: usize) {
        assert!(input < self.counters.len(), "input {input} out of range");
        if self.counters[input] == self.max {
            if self.halve_on_saturation {
                for c in &mut self.counters {
                    *c /= 2;
                }
            } else {
                return; // stuck at the maximum class
            }
        }
        self.counters[input] += 1;
    }

    /// The lowest (best) class among `contenders`, or `None` if empty.
    pub fn best_class(&self, contenders: &[usize]) -> Option<u8> {
        contenders.iter().map(|&i| self.class_of(i)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wins_demote_class() {
        let mut clrg = ClrgState::new(4, 3);
        assert_eq!(clrg.class_of(2), 0);
        clrg.record_win(2);
        assert_eq!(clrg.class_of(2), 1);
        clrg.record_win(2);
        assert_eq!(clrg.class_of(2), 2);
    }

    #[test]
    fn saturation_halves_all_counters() {
        let mut clrg = ClrgState::new(3, 3);
        clrg.record_win(0);
        clrg.record_win(0); // 0 at class 2 (saturated)
        clrg.record_win(1); // 1 at class 1
        clrg.record_win(0); // saturation: {2,1,0} -> {1,0,0}, then 0 -> 2
        assert_eq!(clrg.class_of(0), 2);
        assert_eq!(clrg.class_of(1), 0);
        assert_eq!(clrg.class_of(2), 0);
    }

    #[test]
    fn halving_preserves_relative_order() {
        let mut clrg = ClrgState::new(2, 4);
        for _ in 0..3 {
            clrg.record_win(0);
        }
        clrg.record_win(1);
        assert!(clrg.class_of(0) > clrg.class_of(1));
        clrg.record_win(0); // triggers halving
        assert!(clrg.class_of(0) > clrg.class_of(1));
    }

    #[test]
    fn without_halving_sticks_at_max() {
        let mut clrg = ClrgState::new(2, 2).without_halving();
        clrg.record_win(0);
        clrg.record_win(0);
        clrg.record_win(0);
        assert_eq!(clrg.class_of(0), 1);
        assert_eq!(clrg.class_of(1), 0);
    }

    #[test]
    fn best_class_finds_minimum() {
        let mut clrg = ClrgState::new(4, 3);
        clrg.record_win(0);
        clrg.record_win(1);
        clrg.record_win(1);
        assert_eq!(clrg.best_class(&[0, 1]), Some(1));
        assert_eq!(clrg.best_class(&[0, 1, 3]), Some(0));
        assert_eq!(clrg.best_class(&[]), None);
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn rejects_single_class() {
        let _ = ClrgState::new(4, 1);
    }
}
