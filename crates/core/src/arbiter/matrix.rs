//! Least Recently Granted (LRG) matrix arbiter.
//!
//! Models the priority vectors stored in Swizzle-Switch cross-points
//! (§II-A): a matrix `p` where `p[i][j]` means requestor `i` currently
//! outranks requestor `j`. Granting is purely combinational (single
//! cycle); updating moves the winner to the lowest priority, which yields
//! least-recently-granted order.
//!
//! `grant` and `update` are deliberately separate operations: the Hi-Rise
//! local switch computes a phase-1 winner every cycle but only commits the
//! priority update when that winner also wins the inter-layer arbitration
//! (the back-propagated update of §III-B1 that prevents starvation).

use crate::bits::BitSet;

/// An `n`-way LRG matrix arbiter.
///
/// The priority relation is kept antisymmetric and total: for any two
/// distinct requestors exactly one outranks the other, so every non-empty
/// request set has exactly one winner.
#[derive(Clone, Debug)]
pub struct MatrixArbiter {
    /// `rows[i]` holds bit `j` iff `i` outranks `j`.
    rows: Vec<BitSet>,
    n: usize,
}

impl MatrixArbiter {
    /// Creates an arbiter over `n` requestors with the default initial
    /// order: lower indices outrank higher ones.
    pub fn new(n: usize) -> Self {
        let order: Vec<usize> = (0..n).collect();
        Self::with_order(&order)
    }

    /// Creates an arbiter with an explicit initial priority order,
    /// `order[0]` being the highest-priority requestor.
    ///
    /// This exists so tests can reproduce the paper's worked examples
    /// (Figs. 4 and 5), which start from particular LRG states.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: &[usize]) -> Self {
        let n = order.len();
        let mut seen = vec![false; n];
        for &r in order {
            assert!(r < n && !seen[r], "order must be a permutation of 0..n");
            seen[r] = true;
        }
        let mut rows = vec![BitSet::new(n); n];
        // A requestor's row is exactly the set of requestors ranked below
        // it, so a running "everyone not yet placed" set fills each row
        // with one word-level copy instead of an O(n²) per-bit loop.
        if let Some((&first, rest)) = order.split_first() {
            let mut below = BitSet::new(n);
            below.set_all_except(first);
            rows[first].copy_from(&below);
            for &winner in rest {
                below.remove(winner);
                rows[winner].copy_from(&below);
            }
        }
        Self { rows, n }
    }

    /// Number of requestors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requestors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns whether requestor `a` currently outranks requestor `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `a == b`.
    pub fn outranks(&self, a: usize, b: usize) -> bool {
        assert!(a != b, "a requestor does not outrank itself");
        self.rows[a].contains(b)
    }

    /// Picks the highest-priority requestor among `requests`, without
    /// changing any state. Returns `None` when `requests` is empty.
    ///
    /// Duplicates in `requests` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn grant(&self, requests: &[usize]) -> Option<usize> {
        let mut mask = BitSet::new(self.n);
        for &r in requests {
            assert!(r < self.n, "requestor {r} out of range");
            mask.insert(r);
        }
        self.grant_mask(&mask)
    }

    /// As [`grant`](Self::grant), but taking a pre-built request mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask capacity differs from the arbiter size.
    pub fn grant_mask(&self, requests: &BitSet) -> Option<usize> {
        assert_eq!(requests.capacity(), self.n, "request mask size mismatch");
        requests
            .iter()
            .find(|&candidate| self.rows[candidate].is_superset_except(requests, candidate))
    }

    /// Commits an LRG update: `winner` drops to the lowest priority and
    /// every other requestor gains priority over it.
    ///
    /// # Panics
    ///
    /// Panics if `winner` is out of range.
    pub fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range");
        self.rows[winner].clear();
        let word = winner / 64;
        let mask = 1u64 << (winner % 64);
        for (other, row) in self.rows.iter_mut().enumerate() {
            if other != winner {
                row.or_word(word, mask);
            }
        }
    }

    /// Current priority order, highest first. Intended for tests and
    /// debugging; it is O(n²).
    pub fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        // Rank = number of requestors this one outranks; in a total order
        // the ranks are all distinct.
        order.sort_by_key(|&i| std::cmp::Reverse(self.rows[i].len()));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_order_prefers_low_indices() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[2, 1, 3]), Some(1));
        assert_eq!(arb.grant(&[0, 1, 2, 3]), Some(0));
    }

    #[test]
    fn update_moves_winner_to_back() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(0));
        arb.update(0);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(1));
        arb.update(1);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(2));
        arb.update(2);
        // Back to the original order: least recently granted first.
        assert_eq!(arb.grant(&[0, 1, 2]), Some(0));
    }

    #[test]
    fn grant_without_update_is_stable() {
        let arb = MatrixArbiter::new(5);
        for _ in 0..3 {
            assert_eq!(arb.grant(&[4, 3]), Some(3));
        }
    }

    #[test]
    fn with_order_seeds_exact_priorities() {
        // The paper's Fig. 4 initial state on L1: 15 > 11 > 7 > 3 (we use a
        // 4-entry arbiter with that relative order).
        let arb = MatrixArbiter::with_order(&[3, 2, 1, 0]);
        assert_eq!(arb.grant(&[0, 1, 2, 3]), Some(3));
        assert_eq!(arb.priority_order(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[]), None);
    }

    #[test]
    fn single_requestor_always_wins() {
        let mut arb = MatrixArbiter::new(8);
        arb.update(5);
        assert_eq!(arb.grant(&[5]), Some(5));
    }

    #[test]
    fn lrg_order_emerges_from_grants() {
        // Repeatedly granting all requestors cycles through them.
        let mut arb = MatrixArbiter::new(4);
        let mut sequence = Vec::new();
        for _ in 0..8 {
            let w = arb.grant(&[0, 1, 2, 3]).unwrap();
            arb.update(w);
            sequence.push(w);
        }
        assert_eq!(sequence, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_requests_are_ignored() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[2, 2, 3, 3]), Some(2));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn with_order_rejects_duplicates() {
        let _ = MatrixArbiter::with_order(&[0, 0, 1]);
    }

    #[test]
    fn antisymmetry_is_preserved_by_updates() {
        let mut arb = MatrixArbiter::new(6);
        for winner in [3, 1, 4, 1, 5, 0, 2] {
            arb.update(winner);
            for a in 0..6 {
                for b in 0..6 {
                    if a != b {
                        assert_ne!(
                            arb.outranks(a, b),
                            arb.outranks(b, a),
                            "antisymmetry violated for ({a},{b})"
                        );
                    }
                }
            }
        }
    }
}
