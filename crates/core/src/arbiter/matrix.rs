//! Least Recently Granted (LRG) matrix arbiter.
//!
//! Models the priority vectors stored in Swizzle-Switch cross-points
//! (§II-A): a matrix `p` where `p[i][j]` means requestor `i` currently
//! outranks requestor `j`. Granting is purely combinational (single
//! cycle); updating moves the winner to the lowest priority, which yields
//! least-recently-granted order.
//!
//! `grant` and `update` are deliberately separate operations: the Hi-Rise
//! local switch computes a phase-1 winner every cycle but only commits the
//! priority update when that winner also wins the inter-layer arbitration
//! (the back-propagated update of §III-B1 that prevents starvation).

use crate::bits::BitSet;

/// An `n`-way LRG matrix arbiter.
///
/// The priority relation is kept antisymmetric and total: for any two
/// distinct requestors exactly one outranks the other, so every non-empty
/// request set has exactly one winner.
///
/// The matrix is stored row-major in one contiguous word arena (row `i`
/// occupies `words[i*w..(i+1)*w]`): `grant` reads rows with no pointer
/// chasing and `update` is a linear sweep the compiler can vectorize,
/// which is what makes per-cycle arbitration cheap at radix 64.
#[derive(Clone, Debug)]
pub struct MatrixArbiter {
    /// Row-major priority words; bit `j` of row `i` iff `i` outranks `j`.
    words: Vec<u64>,
    /// Words per row, `ceil(n / 64)`.
    w: usize,
    n: usize,
}

impl MatrixArbiter {
    /// Creates an arbiter over `n` requestors with the default initial
    /// order: lower indices outrank higher ones.
    pub fn new(n: usize) -> Self {
        let order: Vec<usize> = (0..n).collect();
        Self::with_order(&order)
    }

    /// Creates an arbiter with an explicit initial priority order,
    /// `order[0]` being the highest-priority requestor.
    ///
    /// This exists so tests can reproduce the paper's worked examples
    /// (Figs. 4 and 5), which start from particular LRG states.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: &[usize]) -> Self {
        let n = order.len();
        let w = n.div_ceil(64);
        let mut seen = vec![false; n];
        for &r in order {
            assert!(r < n && !seen[r], "order must be a permutation of 0..n");
            seen[r] = true;
        }
        let mut words = vec![0u64; n * w];
        // A requestor's row is exactly the set of requestors ranked below
        // it, so a running "everyone not yet placed" set fills each row
        // with one word-level copy instead of an O(n²) per-bit loop.
        let mut below = BitSet::new(n);
        for (rank, &winner) in order.iter().enumerate() {
            if rank == 0 {
                below.set_all_except(winner);
            } else {
                below.remove(winner);
            }
            words[winner * w..(winner + 1) * w].copy_from_slice(below.words());
        }
        Self { words, w, n }
    }

    /// Row `i` as a word slice.
    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.w..(i + 1) * self.w]
    }

    /// Number of requestors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requestors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns whether requestor `a` currently outranks requestor `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `a == b`.
    pub fn outranks(&self, a: usize, b: usize) -> bool {
        assert!(a != b, "a requestor does not outrank itself");
        assert!(a < self.n && b < self.n, "requestor out of range");
        self.row(a)[b / 64] >> (b % 64) & 1 == 1
    }

    /// Picks the highest-priority requestor among `requests`, without
    /// changing any state. Returns `None` when `requests` is empty.
    ///
    /// Duplicates in `requests` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn grant(&self, requests: &[usize]) -> Option<usize> {
        let mut mask = BitSet::new(self.n);
        for &r in requests {
            assert!(r < self.n, "requestor {r} out of range");
            mask.insert(r);
        }
        self.grant_mask(&mask)
    }

    /// As [`grant`](Self::grant), but taking a pre-built request mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask capacity differs from the arbiter size.
    pub fn grant_mask(&self, requests: &BitSet) -> Option<usize> {
        assert_eq!(requests.capacity(), self.n, "request mask size mismatch");
        requests.iter().find(|&candidate| {
            let row = self.row(candidate);
            requests.words().iter().enumerate().all(|(v, &need)| {
                let need = if v == candidate / 64 {
                    need & !(1u64 << (candidate % 64))
                } else {
                    need
                };
                need & !row[v] == 0
            })
        })
    }

    /// As [`grant_mask`](Self::grant_mask), but taking the request set as
    /// raw words (`requests[w]` holds requestors `64w..64w+63`) — the
    /// word-parallel kernel entry point. `W` must equal the arbiter's
    /// word count (`ceil(n / 64)`), and bits at or beyond `n` must be
    /// zero; both are debug-asserted. Candidates are scanned in
    /// ascending index order with masked word ops against the priority
    /// rows, so the result is identical to `grant_mask` on the same set.
    #[inline]
    pub fn grant_words<const W: usize>(&self, requests: &[u64; W]) -> Option<usize> {
        debug_assert_eq!(W, self.n.div_ceil(64), "word count mismatch");
        debug_assert!(
            self.n.is_multiple_of(64) || requests[W - 1] & !((1u64 << (self.n % 64)) - 1) == 0,
            "request bits beyond the arbiter size"
        );
        for word in 0..W {
            let mut rest = requests[word];
            while rest != 0 {
                let candidate_bit = rest & rest.wrapping_neg();
                let candidate = word * 64 + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let row = self.row(candidate);
                let mut outranked = true;
                for (v, &row_word) in row.iter().enumerate() {
                    let mut need = requests[v];
                    if v == word {
                        need &= !candidate_bit;
                    }
                    if need & !row_word != 0 {
                        outranked = false;
                        break;
                    }
                }
                if outranked {
                    return Some(candidate);
                }
            }
        }
        None
    }

    /// Commits an LRG update: `winner` drops to the lowest priority and
    /// every other requestor gains priority over it.
    ///
    /// # Panics
    ///
    /// Panics if `winner` is out of range.
    #[inline]
    pub fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range");
        let w = self.w;
        if w == 1 {
            // Single-word rows are contiguous, so the column sweep is a
            // plain bounds-check-free pass the compiler vectorizes.
            // Zeroing the winner's row afterwards both drops it below
            // everybody and takes back the self-edge in one store. This
            // is the path every arbiter with n <= 64 takes — all of
            // them, for the radices the paper evaluates — and `update`
            // runs twice per grant (local column + sub-block), so it is
            // hot.
            let mask = 1u64 << winner;
            for row in &mut self.words {
                *row |= mask;
            }
            self.words[winner] = 0;
            return;
        }
        // The winner drops below everybody: zero its row…
        self.words[winner * w..(winner + 1) * w].fill(0);
        // …and set its bit in every row — then take back the self-edge.
        let word = winner / 64;
        let mask = 1u64 << (winner % 64);
        for row in self.words.chunks_exact_mut(w) {
            row[word] |= mask;
        }
        self.words[winner * w + word] &= !mask;
    }

    /// Current priority order, highest first. Intended for tests and
    /// debugging; it is O(n²).
    pub fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        // Rank = number of requestors this one outranks; in a total order
        // the ranks are all distinct.
        order.sort_by_key(|&i| {
            std::cmp::Reverse(self.row(i).iter().map(|w| w.count_ones()).sum::<u32>())
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_order_prefers_low_indices() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[2, 1, 3]), Some(1));
        assert_eq!(arb.grant(&[0, 1, 2, 3]), Some(0));
    }

    #[test]
    fn update_moves_winner_to_back() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(0));
        arb.update(0);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(1));
        arb.update(1);
        assert_eq!(arb.grant(&[0, 1, 2]), Some(2));
        arb.update(2);
        // Back to the original order: least recently granted first.
        assert_eq!(arb.grant(&[0, 1, 2]), Some(0));
    }

    #[test]
    fn grant_without_update_is_stable() {
        let arb = MatrixArbiter::new(5);
        for _ in 0..3 {
            assert_eq!(arb.grant(&[4, 3]), Some(3));
        }
    }

    #[test]
    fn with_order_seeds_exact_priorities() {
        // The paper's Fig. 4 initial state on L1: 15 > 11 > 7 > 3 (we use a
        // 4-entry arbiter with that relative order).
        let arb = MatrixArbiter::with_order(&[3, 2, 1, 0]);
        assert_eq!(arb.grant(&[0, 1, 2, 3]), Some(3));
        assert_eq!(arb.priority_order(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[]), None);
    }

    #[test]
    fn single_requestor_always_wins() {
        let mut arb = MatrixArbiter::new(8);
        arb.update(5);
        assert_eq!(arb.grant(&[5]), Some(5));
    }

    #[test]
    fn lrg_order_emerges_from_grants() {
        // Repeatedly granting all requestors cycles through them.
        let mut arb = MatrixArbiter::new(4);
        let mut sequence = Vec::new();
        for _ in 0..8 {
            let w = arb.grant(&[0, 1, 2, 3]).unwrap();
            arb.update(w);
            sequence.push(w);
        }
        assert_eq!(sequence, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_requests_are_ignored() {
        let arb = MatrixArbiter::new(4);
        assert_eq!(arb.grant(&[2, 2, 3, 3]), Some(2));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn with_order_rejects_duplicates() {
        let _ = MatrixArbiter::with_order(&[0, 0, 1]);
    }

    /// Property test at radices straddling the word boundary (17, 33,
    /// 63, 65 plus exact-word sizes): random request sets and random
    /// LRG updates, with `grant_words` checked against `grant_mask`
    /// every step and the row tail invariant held throughout.
    #[test]
    fn grant_words_matches_grant_mask_across_awkward_radices() {
        use crate::rng::{Rng, SeedableRng, StdRng};

        fn check<const W: usize>(n: usize, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut arb = MatrixArbiter::new(n);
            for step in 0..500 {
                let mut words = [0u64; W];
                let mut mask = BitSet::new(n);
                // Mix sparse and dense request sets.
                let requestors = if step % 3 == 0 { n } else { n / 4 + 1 };
                for _ in 0..rng.gen_range(0..requestors + 1) {
                    let r = rng.gen_range(0..n);
                    words[r / 64] |= 1 << (r % 64);
                    mask.insert(r);
                }
                let expected = arb.grant_mask(&mask);
                assert_eq!(arb.grant_words::<W>(&words), expected, "n={n} step={step}");
                if let Some(winner) = expected {
                    arb.update(winner);
                }
                // Row tail invariant: no priority bits at or beyond n.
                if !n.is_multiple_of(64) {
                    let tail = !((1u64 << (n % 64)) - 1);
                    for row in 0..n {
                        assert_eq!(
                            arb.row(row)[W - 1] & tail,
                            0,
                            "stray tail bits in row {row}"
                        );
                    }
                }
            }
        }

        for (n, seed) in [(13, 1u64), (16, 2), (17, 3), (33, 4), (63, 5), (64, 6)] {
            check::<1>(n, 0xA5B1_7000 + seed);
        }
        for (n, seed) in [(65, 7u64), (128, 8)] {
            check::<2>(n, 0xA5B1_7000 + seed);
        }
    }

    #[test]
    fn antisymmetry_is_preserved_by_updates() {
        let mut arb = MatrixArbiter::new(6);
        for winner in [3, 1, 4, 1, 5, 0, 2] {
            arb.update(winner);
            for a in 0..6 {
                for b in 0..6 {
                    if a != b {
                        assert_ne!(
                            arb.outranks(a, b),
                            arb.outranks(b, a),
                            "antisymmetry violated for ({a},{b})"
                        );
                    }
                }
            }
        }
    }
}
