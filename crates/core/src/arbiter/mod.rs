//! Arbitration building blocks: LRG matrix arbiters, round-robin
//! arbiters, and the state machines behind the paper's inter-layer
//! schemes (Weighted LRG and Class-based LRG).
//!
//! The Swizzle-Switch family embeds arbitration in the crossbar
//! cross-points: each output column holds a priority vector per input and
//! resolves all requests in a single cycle. [`matrix::MatrixArbiter`]
//! models that priority-matrix structure exactly (grant and update are
//! separate steps because the Hi-Rise local switch only updates its
//! priorities when its winner also wins the *final* output, §III-B1).

pub mod clrg;
pub mod matrix;
pub mod round_robin;
pub mod wlrg;

/// Inter-layer arbitration scheme selector (§III-B).
///
/// This enum is intentionally exhaustive: the paper's design space has
/// exactly these three schemes, and downstream code (the physical
/// models, the experiment harness) matches on all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArbitrationScheme {
    /// Baseline: independent LRG at the local and inter-layer switches,
    /// with the local update back-propagated from final winners
    /// (§III-B1). Unfair when L2LCs carry disparate requestor counts.
    LayerToLayerLrg,
    /// Weighted LRG: the inter-layer LRG priority of a channel is held
    /// for as many wins as the channel had requestors (§III-B3). Fair but
    /// deemed infeasible to implement in hardware by the paper; modelled
    /// here for the Fig. 11 comparisons.
    WeightedLrg,
    /// Class-based LRG, the paper's proposal (§III-B4): per-output
    /// thermometer counters bin primary inputs into priority classes;
    /// LRG breaks ties within a class.
    ClassBased {
        /// Number of priority classes (counter states). The paper finds
        /// three classes sufficient for a 64-radix switch.
        classes: u8,
    },
}

impl ArbitrationScheme {
    /// Class-based LRG with the paper's three classes.
    pub const fn class_based() -> Self {
        ArbitrationScheme::ClassBased { classes: 3 }
    }

    /// Short label used in reports ("L-2-L LRG", "WLRG", "CLRG").
    pub fn label(&self) -> &'static str {
        match self {
            ArbitrationScheme::LayerToLayerLrg => "L-2-L LRG",
            ArbitrationScheme::WeightedLrg => "WLRG",
            ArbitrationScheme::ClassBased { .. } => "CLRG",
        }
    }
}

impl Default for ArbitrationScheme {
    /// Defaults to the paper's proposed CLRG with three classes.
    fn default() -> Self {
        Self::class_based()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_three_class_clrg() {
        assert_eq!(
            ArbitrationScheme::default(),
            ArbitrationScheme::ClassBased { classes: 3 }
        );
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(ArbitrationScheme::LayerToLayerLrg.label(), "L-2-L LRG");
        assert_eq!(ArbitrationScheme::WeightedLrg.label(), "WLRG");
        assert_eq!(ArbitrationScheme::class_based().label(), "CLRG");
    }
}
