//! Rotating round-robin arbiter.
//!
//! Not part of the paper's design — the Swizzle-Switch fabric uses LRG —
//! but provided as an ablation point (EXPERIMENTS.md) and because the
//! related-work discussion (§VII) contrasts CLRG with round-robin-based
//! allocators such as iSLIP. Like [`MatrixArbiter`](super::matrix::MatrixArbiter)
//! it separates `grant` from `update` so callers can apply the Hi-Rise
//! back-propagated update rule.

use crate::bits::BitSet;

/// An `n`-way round-robin arbiter with a rotating highest-priority pointer.
#[derive(Clone, Debug)]
pub struct RoundRobinArbiter {
    next: usize,
    n: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requestors, with requestor 0 initially
    /// at the highest priority.
    pub fn new(n: usize) -> Self {
        Self { next: 0, n }
    }

    /// Number of requestors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requestors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Picks the first requestor at or after the rotating pointer.
    /// Returns `None` when `requests` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn grant(&self, requests: &[usize]) -> Option<usize> {
        if requests.is_empty() || self.n == 0 {
            return None;
        }
        requests
            .iter()
            .inspect(|&&r| assert!(r < self.n, "requestor {r} out of range"))
            .copied()
            .min_by_key(|&r| (r + self.n - self.next) % self.n)
    }

    /// As [`grant`](Self::grant), but taking a pre-built request mask —
    /// the allocation-free hot path, mirroring
    /// [`MatrixArbiter::grant_mask`](super::matrix::MatrixArbiter::grant_mask).
    ///
    /// # Panics
    ///
    /// Panics if the mask capacity differs from the arbiter size.
    pub fn grant_mask(&self, requests: &BitSet) -> Option<usize> {
        assert_eq!(requests.capacity(), self.n, "request mask size mismatch");
        requests
            .iter()
            .min_by_key(|&r| (r + self.n - self.next) % self.n)
    }

    /// As [`grant_mask`](Self::grant_mask), but taking the request set as
    /// raw words (`requests[w]` holds requestors `64w..64w+63`) — the
    /// word-parallel kernel entry point. `W` must equal `ceil(n / 64)`
    /// and bits at or beyond `n` must be zero (debug-asserted). Picks
    /// the first set bit at or after the rotating pointer, wrapping,
    /// which is exactly the `grant_mask` minimum-distance winner.
    #[inline]
    pub fn grant_words<const W: usize>(&self, requests: &[u64; W]) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        debug_assert_eq!(W, self.n.div_ceil(64), "word count mismatch");
        debug_assert!(
            self.n.is_multiple_of(64) || requests[W - 1] & !((1u64 << (self.n % 64)) - 1) == 0,
            "request bits beyond the arbiter size"
        );
        let start_word = self.next / 64;
        let start_bit = self.next % 64;
        // At or after the pointer, within the pointer's word…
        let high = requests[start_word] & (!0u64 << start_bit);
        if high != 0 {
            return Some(start_word * 64 + high.trailing_zeros() as usize);
        }
        // …then whole words after it…
        for (w, &word) in requests.iter().enumerate().skip(start_word + 1) {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        // …then wrap: whole words before the pointer's word, and finally
        // the bits below the pointer.
        for (w, &word) in requests.iter().enumerate().take(start_word) {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        let low = requests[start_word] & !(!0u64 << start_bit);
        if low != 0 {
            return Some(start_word * 64 + low.trailing_zeros() as usize);
        }
        None
    }

    /// The requestor currently at the highest priority (the rotating
    /// pointer). Exposed so schedulers built on top — iSLIP keeps one
    /// grant pointer per output and one accept pointer per input — can
    /// be audited for the pointer-update-only-on-accept discipline.
    #[inline]
    pub fn pointer(&self) -> usize {
        self.next
    }

    /// Rotates the pointer past `winner` so it becomes the lowest
    /// priority next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `winner` is out of range.
    pub fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range");
        self.next = (winner + 1) % self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_through_requestors() {
        let mut arb = RoundRobinArbiter::new(4);
        let mut seq = Vec::new();
        for _ in 0..8 {
            let w = arb.grant(&[0, 1, 2, 3]).unwrap();
            arb.update(w);
            seq.push(w);
        }
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_non_requestors() {
        let mut arb = RoundRobinArbiter::new(4);
        arb.update(0); // pointer at 1
        assert_eq!(arb.grant(&[0, 3]), Some(3));
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(&[]), None);
    }

    #[test]
    fn grant_without_update_is_stable() {
        let arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(&[2, 3]), Some(2));
        assert_eq!(arb.grant(&[2, 3]), Some(2));
    }

    #[test]
    fn grant_mask_matches_grant() {
        let mut arb = RoundRobinArbiter::new(5);
        for rotate in 0..5 {
            let requests = [0usize, 2, 4];
            let mut mask = BitSet::new(5);
            for &r in &requests {
                mask.insert(r);
            }
            assert_eq!(arb.grant_mask(&mask), arb.grant(&requests), "{rotate}");
            arb.update(rotate);
        }
        assert_eq!(arb.grant_mask(&BitSet::new(5)), None);
    }

    /// Property test at radices straddling the word boundary: random
    /// request sets and random pointer rotations, with `grant_words`
    /// checked against `grant_mask` at every step.
    #[test]
    fn grant_words_matches_grant_mask_across_awkward_radices() {
        use crate::rng::{Rng, SeedableRng, StdRng};

        fn check<const W: usize>(n: usize, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut arb = RoundRobinArbiter::new(n);
            for step in 0..500 {
                let mut words = [0u64; W];
                let mut mask = BitSet::new(n);
                for _ in 0..rng.gen_range(0..n + 1) {
                    let r = rng.gen_range(0..n);
                    words[r / 64] |= 1 << (r % 64);
                    mask.insert(r);
                }
                let expected = arb.grant_mask(&mask);
                assert_eq!(
                    arb.grant_words::<W>(&words),
                    expected,
                    "n={n} step={step} next={}",
                    arb.next
                );
                if let Some(winner) = expected {
                    arb.update(winner);
                }
            }
        }

        for (n, seed) in [(13, 1u64), (16, 2), (17, 3), (33, 4), (63, 5), (64, 6)] {
            check::<1>(n, 0x2B2B_7000 + seed);
        }
        for (n, seed) in [(65, 7u64), (128, 8)] {
            check::<2>(n, 0x2B2B_7000 + seed);
        }
    }
}
