//! Weighted LRG (WLRG) hold-credit state (§III-B3).
//!
//! WLRG makes the inter-layer sub-block hold a channel's LRG priority for
//! a number of consecutive wins proportional to how many requestors the
//! channel represents. The local switch counts its parallel requestors
//! (the *weight*) and transmits it with the request; the sub-block keeps
//! the winner at the top of the LRG order until its credit is spent.
//!
//! The paper rejects WLRG for hardware (single-cycle population count and
//! weight transmission over the L2LC are prohibitive) but uses it as a
//! fairness yardstick in Fig. 11; this model plays the same role.

/// Per-sub-block WLRG credit tracker over `m` contender slots.
#[derive(Clone, Debug)]
pub struct WlrgState {
    /// Remaining wins before the slot's LRG priority may be demoted.
    credits: Vec<u32>,
}

impl WlrgState {
    /// Creates credit state for `m` contender slots.
    pub fn new(m: usize) -> Self {
        Self {
            credits: vec![0; m],
        }
    }

    /// Number of contender slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.credits.len()
    }

    /// Whether zero slots are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.credits.is_empty()
    }

    /// Records that `slot` won while representing `weight` requestors
    /// (weight ≥ 1). Returns `true` if the sub-block should commit the
    /// LRG demotion for this slot, `false` if the priority is held.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `weight` is zero.
    pub fn record_win(&mut self, slot: usize, weight: u32) -> bool {
        assert!(slot < self.credits.len(), "slot {slot} out of range");
        assert!(weight >= 1, "weight must be at least 1");
        if self.credits[slot] == 0 {
            // Fresh win: charge the full weight.
            self.credits[slot] = weight - 1;
        } else {
            self.credits[slot] -= 1;
        }
        self.credits[slot] == 0
    }

    /// Remaining hold credit for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn credit(&self, slot: usize) -> u32 {
        self.credits[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_one_always_demotes() {
        let mut wlrg = WlrgState::new(2);
        assert!(wlrg.record_win(0, 1));
        assert!(wlrg.record_win(0, 1));
    }

    #[test]
    fn weight_four_holds_for_four_wins() {
        let mut wlrg = WlrgState::new(2);
        assert!(!wlrg.record_win(1, 4)); // win 1 of 4: held
        assert!(!wlrg.record_win(1, 4)); // win 2
        assert!(!wlrg.record_win(1, 4)); // win 3
        assert!(wlrg.record_win(1, 4)); // win 4: demote
        assert_eq!(wlrg.credit(1), 0);
    }

    #[test]
    fn weight_resamples_after_credit_spent() {
        let mut wlrg = WlrgState::new(1);
        assert!(!wlrg.record_win(0, 2));
        assert!(wlrg.record_win(0, 2));
        // Requestor count dropped to 1: immediate demotion resumes.
        assert!(wlrg.record_win(0, 1));
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_is_rejected() {
        let mut wlrg = WlrgState::new(1);
        let _ = wlrg.record_win(0, 0);
    }
}
