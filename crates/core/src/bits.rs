//! A small fixed-capacity bit set used by the matrix arbiters.
//!
//! Radices in this crate are at most a few hundred, so a `Vec<u64>`-backed
//! set with no growth logic is both simple and fast. The arbiters use it
//! for request masks and priority-matrix rows.

/// A fixed-capacity set of bits indexed `0..capacity`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold bits `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of bit positions this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) {
        assert!(index < self.capacity, "bit index {index} out of range");
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn remove(&mut self, index: usize) {
        assert!(index < self.capacity, "bit index {index} out of range");
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Returns whether bit `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        assert!(index < self.capacity, "bit index {index} out of range");
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit `0..capacity` in one word-level pass. Bits at or
    /// beyond `capacity` stay zero, preserving the invariants `len`,
    /// `iter` and the superset tests rely on.
    pub fn set_all(&mut self) {
        self.words.fill(!0);
        self.mask_tail();
    }

    /// Sets every bit `0..capacity` except `skip` in one word-level
    /// pass — the priority-matrix "new winner outranks nobody, everyone
    /// outranks the winner" reset, without a per-bit loop.
    ///
    /// # Panics
    ///
    /// Panics if `skip >= capacity`.
    pub fn set_all_except(&mut self, skip: usize) {
        assert!(skip < self.capacity, "bit index {skip} out of range");
        self.words.fill(!0);
        self.words[skip / 64] &= !(1u64 << (skip % 64));
        self.mask_tail();
    }

    /// Makes `self` an exact copy of `other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// ORs a raw mask into word `word`; the arbiter update loop uses
    /// this to splice one precomputed bit into every row without
    /// re-deriving the word index and shift per row.
    ///
    /// Stray mask bits at or beyond `capacity` are dropped, preserving
    /// the tail invariant (`len`, `iter` and the superset tests assume
    /// bits past the capacity are zero) even for capacities that are not
    /// multiples of 64.
    // Part of the word-ops API surface; the hot kernels moved to raw
    // `[u64]` scratch, so outside tests (which pin the tail-masking
    // semantics at odd radices) this currently has no callers.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn or_word(&mut self, word: usize, mask: u64) {
        debug_assert!(word < self.words.len(), "word index {word} out of range");
        self.words[word] |= mask & self.valid_mask(word);
    }

    /// Reads word `word` of the backing storage. The tail invariant
    /// guarantees bits at or beyond `capacity` read as zero.
    #[allow(dead_code)]
    #[inline]
    pub(crate) fn word(&self, word: usize) -> u64 {
        self.words[word]
    }

    /// The backing words in ascending bit order; bits at or beyond
    /// `capacity` are guaranteed zero.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mask of the bit positions in word `word` that are inside
    /// `capacity` — all-ones except for a partial tail word.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn valid_mask(&self, word: usize) -> u64 {
        let tail = self.capacity % 64;
        if tail != 0 && word + 1 == self.words.len() {
            (1u64 << tail) - 1
        } else {
            !0
        }
    }

    /// Zeroes any bits at or beyond `capacity` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Asserts the tail invariant: no bits at or beyond `capacity`.
    #[cfg(test)]
    pub(crate) fn assert_tail_invariant(&self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last() {
                assert_eq!(
                    last & !((1u64 << tail) - 1),
                    0,
                    "stray bits beyond capacity {}",
                    self.capacity
                );
            }
        }
    }

    /// Returns whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns whether `self` contains every bit of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Returns whether `self` contains every bit of `other` except
    /// possibly bit `skip` — equivalent to cloning `other`, removing
    /// `skip` and calling [`is_superset`](Self::is_superset), without
    /// the allocation. This is the arbiter's hot path.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ or `skip` is out of range.
    pub fn is_superset_except(&self, other: &BitSet, skip: usize) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        assert!(skip < self.capacity, "bit index {skip} out of range");
        let skip_word = skip / 64;
        let skip_mask = !(1u64 << (skip % 64));
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .all(|(w, (a, b))| {
                let expected = if w == skip_word { b & skip_mask } else { *b };
                a & expected == expected
            })
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bit indices, produced by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * 64 + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
    }
}

impl Default for BitSet {
    /// An empty zero-capacity set; placeholder for scratch structures
    /// that are sized later (allocation-free, `vec![0; 0]` does not
    /// allocate).
    fn default() -> Self {
        Self::new(0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the largest element (capacity = max + 1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let capacity = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(capacity);
        for item in items {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = BitSet::new(130);
        assert!(set.is_empty());
        set.insert(0);
        set.insert(64);
        set.insert(129);
        assert!(set.contains(0));
        assert!(set.contains(64));
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.len(), 3);
        set.remove(64);
        assert!(!set.contains(64));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn iter_visits_bits_in_order() {
        let mut set = BitSet::new(200);
        for index in [5, 63, 64, 65, 128, 199] {
            set.insert(index);
        }
        let seen: Vec<usize> = set.iter().collect();
        assert_eq!(seen, vec![5, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn superset_logic() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        b.insert(2);
        assert!(!a.is_superset(&b));
    }

    #[test]
    fn superset_except_matches_clone_and_remove() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(1);
        b.insert(65);
        b.insert(3);
        // a lacks bit 3, so plain superset fails but skipping 3 passes.
        assert!(!a.is_superset(&b));
        assert!(a.is_superset_except(&b, 3));
        assert!(!a.is_superset_except(&b, 65), "still missing bit 3");
        // Reference behaviour: clone, remove, is_superset.
        let mut reference = b.clone();
        reference.remove(3);
        assert_eq!(a.is_superset(&reference), a.is_superset_except(&b, 3));
    }

    #[test]
    fn clear_resets_everything() {
        let mut set = BitSet::new(10);
        set.insert(3);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let set: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(set.capacity(), 10);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 3, 9]);
    }

    #[test]
    fn set_all_masks_the_tail_word() {
        for capacity in [1usize, 63, 64, 65, 70, 128, 130] {
            let mut set = BitSet::new(capacity);
            set.set_all();
            assert_eq!(set.len(), capacity, "capacity {capacity}");
            assert_eq!(set.iter().count(), capacity);
            assert!(set.contains(capacity - 1));
        }
    }

    #[test]
    fn set_all_except_drops_exactly_one_bit() {
        for capacity in [1usize, 64, 70, 130] {
            for skip in [0, capacity / 2, capacity - 1] {
                let mut set = BitSet::new(capacity);
                set.set_all_except(skip);
                assert_eq!(set.len(), capacity - 1, "capacity {capacity} skip {skip}");
                assert!(!set.contains(skip));
                // Matches the reference formulation: set_all then remove.
                let mut reference = BitSet::new(capacity);
                reference.set_all();
                reference.remove(skip);
                assert_eq!(set, reference);
            }
        }
    }

    #[test]
    fn copy_from_replicates_contents() {
        let mut src = BitSet::new(130);
        src.insert(0);
        src.insert(129);
        let mut dst = BitSet::new(130);
        dst.insert(5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn copy_from_rejects_capacity_mismatch() {
        let mut dst = BitSet::new(8);
        dst.copy_from(&BitSet::new(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_all_except_out_of_range_panics() {
        let mut set = BitSet::new(8);
        set.set_all_except(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let set = BitSet::new(8);
        let _ = set.contains(8);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let set = BitSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn or_word_drops_stray_bits_beyond_capacity() {
        for capacity in [17usize, 33, 63, 65, 130] {
            let mut set = BitSet::new(capacity);
            let last = capacity.div_ceil(64) - 1;
            // An all-ones mask into every word must produce exactly the
            // full set, never bits past the capacity.
            for word in 0..=last {
                set.or_word(word, !0);
            }
            set.assert_tail_invariant();
            assert_eq!(set.len(), capacity, "capacity {capacity}");
            assert_eq!(set.iter().count(), capacity);
            let mut reference = BitSet::new(capacity);
            reference.set_all();
            assert_eq!(set, reference, "capacity {capacity}");
        }
    }

    #[test]
    fn or_word_keeps_in_range_bits() {
        let mut set = BitSet::new(65);
        set.or_word(1, 0b1); // bit 64: last valid bit
        assert!(set.contains(64));
        set.or_word(0, 1 << 63);
        assert!(set.contains(63));
        assert_eq!(set.len(), 2);
        set.assert_tail_invariant();
    }

    #[test]
    fn word_level_passes_hold_tail_invariant_under_fuzz() {
        // Seeded pseudo-random mix of all word-level mutators at awkward
        // capacities; the tail invariant must hold after every step.
        let mut state = 0x5EED_B175u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for capacity in [17usize, 33, 63, 65] {
            let mut set = BitSet::new(capacity);
            let mut other = BitSet::new(capacity);
            for _ in 0..200 {
                match next() % 5 {
                    0 => set.set_all(),
                    1 => set.set_all_except(next() as usize % capacity),
                    2 => {
                        other.set_all_except(next() as usize % capacity);
                        set.copy_from(&other);
                    }
                    3 => set.or_word(
                        (next() as usize) % capacity.div_ceil(64),
                        next() | (next() << 32),
                    ),
                    _ => set.clear(),
                }
                set.assert_tail_invariant();
                assert!(set.len() <= capacity);
                assert_eq!(set.iter().count(), set.len());
            }
        }
    }
}
