//! Configuration for the Hi-Rise 3D switch.
//!
//! A [`HiRiseConfig`] captures the architectural parameters of §III of the
//! paper — radix `N`, stacked layer count `L`, channel multiplicity `c`,
//! flit width, layer-to-layer channel allocation policy, and the
//! inter-layer arbitration scheme — and derives the resulting geometry
//! (local switch dimensions, inter-layer sub-block size, TSV count).

use crate::arbiter::ArbitrationScheme;
use crate::error::ConfigError;
use crate::ids::{ChannelId, InputId, LayerId, OutputId};

/// Default flit width in bits (the paper's data-bus width).
pub const DEFAULT_FLIT_BITS: usize = 128;

/// Policy for assigning a layer-to-layer channel when the channel
/// multiplicity `c` is greater than one (§III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ChannelAllocation {
    /// Each channel services `N/(L*c)` pre-assigned inputs, selected in an
    /// interleaved fashion (the paper's default and the configuration used
    /// for all its headline results).
    #[default]
    InputBinned,
    /// Like input binning but keyed on the destination output index.
    OutputBinned,
    /// A priority mux chooses among all `N/L` inputs for each channel in
    /// turn. Utilizes channels better under adversarial traffic but
    /// serializes the channel arbitration (the delay cost shows up in the
    /// physical model, not here).
    PriorityBased,
}

/// Local-switch arbiter flavour. The paper uses LRG throughout; the
/// round-robin variant exists for the ablation study in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LocalArbiterKind {
    /// Least Recently Granted matrix arbitration (the paper's design).
    #[default]
    Lrg,
    /// Rotating round-robin priority.
    RoundRobin,
}

/// Architectural configuration of a Hi-Rise switch.
///
/// Construct via [`HiRiseConfig::builder`]; the builder validates the
/// divisibility constraints of the paper's geometry. The 64-radix,
/// 4-layer, 4-channel configuration the paper settles on is
/// [`HiRiseConfig::paper_optimal`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HiRiseConfig {
    radix: usize,
    layers: usize,
    channel_multiplicity: usize,
    flit_bits: usize,
    allocation: ChannelAllocation,
    scheme: ArbitrationScheme,
    local_arbiter: LocalArbiterKind,
}

impl HiRiseConfig {
    /// Starts building a configuration with `radix` ports spread over
    /// `layers` silicon layers.
    pub fn builder(radix: usize, layers: usize) -> HiRiseConfigBuilder {
        HiRiseConfigBuilder {
            radix,
            layers,
            channel_multiplicity: 1,
            flit_bits: DEFAULT_FLIT_BITS,
            allocation: ChannelAllocation::default(),
            scheme: ArbitrationScheme::default(),
            local_arbiter: LocalArbiterKind::default(),
        }
    }

    /// The configuration the paper selects after its design-space study:
    /// 64-radix, 4 layers, channel multiplicity 4, input binning, CLRG
    /// arbitration with 3 classes (§VI-A, §VI-B).
    pub fn paper_optimal() -> Self {
        Self::builder(64, 4)
            .channel_multiplicity(4)
            .scheme(ArbitrationScheme::class_based())
            .build()
            .expect("the paper's optimal configuration is valid")
    }

    /// Switch radix `N` (number of inputs, equal to number of outputs).
    #[inline]
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of stacked silicon layers `L`.
    #[inline]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Channel multiplicity `c`: L2LCs between each ordered layer pair.
    #[inline]
    pub fn channel_multiplicity(&self) -> usize {
        self.channel_multiplicity
    }

    /// Flit (data bus) width in bits.
    #[inline]
    pub fn flit_bits(&self) -> usize {
        self.flit_bits
    }

    /// Channel allocation policy for `c > 1`.
    #[inline]
    pub fn allocation(&self) -> ChannelAllocation {
        self.allocation
    }

    /// Inter-layer arbitration scheme.
    #[inline]
    pub fn scheme(&self) -> ArbitrationScheme {
        self.scheme
    }

    /// Local-switch arbiter flavour.
    #[inline]
    pub fn local_arbiter(&self) -> LocalArbiterKind {
        self.local_arbiter
    }

    /// Inputs (and outputs) per layer, `N/L`.
    #[inline]
    pub fn ports_per_layer(&self) -> usize {
        self.radix / self.layers
    }

    /// Outgoing L2LCs per layer, `c * (L - 1)`.
    #[inline]
    pub fn channels_per_layer(&self) -> usize {
        self.channel_multiplicity * (self.layers - 1)
    }

    /// Columns of the local switch: `N/L` intermediate outputs plus
    /// `c*(L-1)` L2LC outputs (the paper's `N/L x (N/L + c(L-1))`).
    #[inline]
    pub fn local_switch_outputs(&self) -> usize {
        self.ports_per_layer() + self.channels_per_layer()
    }

    /// Contenders at each inter-layer sub-block: the incoming L2LCs from
    /// every other layer plus the one local intermediate output
    /// (`c*(L-1) + 1`).
    #[inline]
    pub fn subblock_inputs(&self) -> usize {
        self.channels_per_layer() + 1
    }

    /// Total TSVs, following the paper's counting: each directed
    /// layer-pair has `c` channels of `flit_bits` vertical wires, giving
    /// `L*(L-1)*c*flit_bits` (Table IV: 1536 for the 1-channel 64-radix
    /// 4-layer switch, 6144 for 4-channel).
    #[inline]
    pub fn tsv_count(&self) -> usize {
        self.layers * (self.layers - 1) * self.channel_multiplicity * self.flit_bits
    }

    /// Layer hosting `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is outside `0..radix`.
    #[inline]
    pub fn layer_of_input(&self, input: InputId) -> LayerId {
        assert!(input.index() < self.radix, "input {input} out of range");
        LayerId::new(input.index() / self.ports_per_layer())
    }

    /// Layer hosting `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is outside `0..radix`.
    #[inline]
    pub fn layer_of_output(&self, output: OutputId) -> LayerId {
        assert!(output.index() < self.radix, "output {output} out of range");
        LayerId::new(output.index() / self.ports_per_layer())
    }

    /// Index of `input` within its layer, in `0..N/L`.
    #[inline]
    pub fn local_input_index(&self, input: InputId) -> usize {
        assert!(input.index() < self.radix, "input {input} out of range");
        input.index() % self.ports_per_layer()
    }

    /// Index of `output` within its layer, in `0..N/L`.
    #[inline]
    pub fn local_output_index(&self, output: OutputId) -> usize {
        assert!(output.index() < self.radix, "output {output} out of range");
        output.index() % self.ports_per_layer()
    }

    /// The input with local index `local` on `layer`.
    #[inline]
    pub fn input_on(&self, layer: LayerId, local: usize) -> InputId {
        assert!(layer.index() < self.layers && local < self.ports_per_layer());
        InputId::new(layer.index() * self.ports_per_layer() + local)
    }

    /// The output with local index `local` on `layer`.
    #[inline]
    pub fn output_on(&self, layer: LayerId, local: usize) -> OutputId {
        assert!(layer.index() < self.layers && local < self.ports_per_layer());
        OutputId::new(layer.index() * self.ports_per_layer() + local)
    }

    /// The channel (among the `c` between a layer pair) a request from
    /// `input` to `output` is bound to under the configured allocation
    /// policy, or `None` when the policy picks dynamically
    /// ([`ChannelAllocation::PriorityBased`]).
    pub fn bound_channel(&self, input: InputId, output: OutputId) -> Option<ChannelId> {
        match self.allocation {
            ChannelAllocation::InputBinned => Some(ChannelId::new(
                self.local_input_index(input) % self.channel_multiplicity,
            )),
            ChannelAllocation::OutputBinned => Some(ChannelId::new(
                self.local_output_index(output) % self.channel_multiplicity,
            )),
            ChannelAllocation::PriorityBased => None,
        }
    }

    /// A short human-readable description of the datapath, in the style of
    /// the paper's tables: `[(16x28), 16*(13x1)]x4`.
    pub fn configuration_label(&self) -> String {
        format!(
            "[({}x{}), {}*({}x1)]x{}",
            self.ports_per_layer(),
            self.local_switch_outputs(),
            self.ports_per_layer(),
            self.subblock_inputs(),
            self.layers
        )
    }
}

/// Builder for [`HiRiseConfig`]; see [`HiRiseConfig::builder`].
#[derive(Clone, Debug)]
pub struct HiRiseConfigBuilder {
    radix: usize,
    layers: usize,
    channel_multiplicity: usize,
    flit_bits: usize,
    allocation: ChannelAllocation,
    scheme: ArbitrationScheme,
    local_arbiter: LocalArbiterKind,
}

impl HiRiseConfigBuilder {
    /// Sets the channel multiplicity `c` (default 1).
    pub fn channel_multiplicity(mut self, c: usize) -> Self {
        self.channel_multiplicity = c;
        self
    }

    /// Sets the flit width in bits (default 128).
    pub fn flit_bits(mut self, bits: usize) -> Self {
        self.flit_bits = bits;
        self
    }

    /// Sets the channel allocation policy (default input-binned).
    pub fn allocation(mut self, allocation: ChannelAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Sets the inter-layer arbitration scheme (default CLRG, 3 classes).
    pub fn scheme(mut self, scheme: ArbitrationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the local arbiter flavour (default LRG).
    pub fn local_arbiter(mut self, kind: LocalArbiterKind) -> Self {
        self.local_arbiter = kind;
        self
    }

    /// Validates the parameters and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the geometry is inconsistent: zero
    /// radix, fewer than two layers, radix not divisible by layers,
    /// zero channel multiplicity, input counts that do not bin evenly
    /// into channels, a zero flit width, or a degenerate CLRG class count.
    pub fn build(self) -> Result<HiRiseConfig, ConfigError> {
        if self.radix == 0 {
            return Err(ConfigError::ZeroRadix);
        }
        if self.layers < 2 {
            return Err(ConfigError::TooFewLayers {
                layers: self.layers,
            });
        }
        if !self.radix.is_multiple_of(self.layers) {
            return Err(ConfigError::RadixNotDivisibleByLayers {
                radix: self.radix,
                layers: self.layers,
            });
        }
        if self.channel_multiplicity == 0 {
            return Err(ConfigError::ZeroChannelMultiplicity);
        }
        if self.flit_bits == 0 {
            return Err(ConfigError::ZeroFlitBits);
        }
        let inputs_per_layer = self.radix / self.layers;
        if matches!(
            self.allocation,
            ChannelAllocation::InputBinned | ChannelAllocation::OutputBinned
        ) && !inputs_per_layer.is_multiple_of(self.channel_multiplicity)
        {
            return Err(ConfigError::InputsNotDivisibleByChannels {
                inputs_per_layer,
                channels: self.channel_multiplicity,
            });
        }
        if let ArbitrationScheme::ClassBased { classes } = self.scheme {
            if classes < 2 {
                return Err(ConfigError::TooFewClasses {
                    classes: classes.into(),
                });
            }
        }
        Ok(HiRiseConfig {
            radix: self.radix,
            layers: self.layers,
            channel_multiplicity: self.channel_multiplicity,
            flit_bits: self.flit_bits,
            allocation: self.allocation,
            scheme: self.scheme,
            local_arbiter: self.local_arbiter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_matches_table_iv() {
        let cfg = HiRiseConfig::paper_optimal();
        assert_eq!(cfg.radix(), 64);
        assert_eq!(cfg.layers(), 4);
        assert_eq!(cfg.channel_multiplicity(), 4);
        assert_eq!(cfg.ports_per_layer(), 16);
        // Local switch 16x28, sub-blocks 13x1 (Table IV row "3D 4-Channel").
        assert_eq!(cfg.local_switch_outputs(), 28);
        assert_eq!(cfg.subblock_inputs(), 13);
        assert_eq!(cfg.tsv_count(), 6144);
        assert_eq!(cfg.configuration_label(), "[(16x28), 16*(13x1)]x4");
    }

    #[test]
    fn one_and_two_channel_geometry_matches_table_iv() {
        let one = HiRiseConfig::builder(64, 4).build().unwrap();
        assert_eq!(one.local_switch_outputs(), 19);
        assert_eq!(one.subblock_inputs(), 4);
        assert_eq!(one.tsv_count(), 1536);

        let two = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(2)
            .build()
            .unwrap();
        assert_eq!(two.local_switch_outputs(), 22);
        assert_eq!(two.subblock_inputs(), 7);
        assert_eq!(two.tsv_count(), 3072);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert_eq!(
            HiRiseConfig::builder(0, 4).build(),
            Err(ConfigError::ZeroRadix)
        );
        assert_eq!(
            HiRiseConfig::builder(64, 1).build(),
            Err(ConfigError::TooFewLayers { layers: 1 })
        );
        assert_eq!(
            HiRiseConfig::builder(65, 4).build(),
            Err(ConfigError::RadixNotDivisibleByLayers {
                radix: 65,
                layers: 4
            })
        );
        assert_eq!(
            HiRiseConfig::builder(64, 4).channel_multiplicity(0).build(),
            Err(ConfigError::ZeroChannelMultiplicity)
        );
        assert_eq!(
            HiRiseConfig::builder(64, 4).channel_multiplicity(3).build(),
            Err(ConfigError::InputsNotDivisibleByChannels {
                inputs_per_layer: 16,
                channels: 3
            })
        );
        assert_eq!(
            HiRiseConfig::builder(64, 4).flit_bits(0).build(),
            Err(ConfigError::ZeroFlitBits)
        );
        assert_eq!(
            HiRiseConfig::builder(64, 4)
                .scheme(ArbitrationScheme::ClassBased { classes: 1 })
                .build(),
            Err(ConfigError::TooFewClasses { classes: 1 })
        );
    }

    #[test]
    fn port_layer_mapping_round_trips() {
        let cfg = HiRiseConfig::paper_optimal();
        // Input 20 is local index 4 on layer 2 of the paper (zero-based L1).
        let input = InputId::new(20);
        assert_eq!(cfg.layer_of_input(input), LayerId::new(1));
        assert_eq!(cfg.local_input_index(input), 4);
        assert_eq!(cfg.input_on(LayerId::new(1), 4), input);

        // Output 63 is local index 15 on the paper's L4 (zero-based 3).
        let output = OutputId::new(63);
        assert_eq!(cfg.layer_of_output(output), LayerId::new(3));
        assert_eq!(cfg.local_output_index(output), 15);
        assert_eq!(cfg.output_on(LayerId::new(3), 15), output);
    }

    #[test]
    fn channel_binding_follows_policy() {
        let cfg = HiRiseConfig::paper_optimal();
        // Input binned: channel = local input index mod c.
        assert_eq!(
            cfg.bound_channel(InputId::new(20), OutputId::new(63)),
            Some(ChannelId::new(0))
        );
        assert_eq!(
            cfg.bound_channel(InputId::new(23), OutputId::new(63)),
            Some(ChannelId::new(3))
        );

        let out_binned = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .allocation(ChannelAllocation::OutputBinned)
            .build()
            .unwrap();
        assert_eq!(
            out_binned.bound_channel(InputId::new(20), OutputId::new(63)),
            Some(ChannelId::new(3))
        );

        let priority = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .allocation(ChannelAllocation::PriorityBased)
            .build()
            .unwrap();
        assert_eq!(
            priority.bound_channel(InputId::new(20), OutputId::new(63)),
            None
        );
    }

    #[test]
    fn priority_allocation_allows_uneven_binning() {
        // 16 inputs/layer with c = 3 cannot bin evenly, but priority-based
        // allocation does not pre-assign inputs so it is accepted.
        let cfg = HiRiseConfig::builder(48, 3)
            .channel_multiplicity(3)
            .allocation(ChannelAllocation::PriorityBased)
            .build();
        assert!(cfg.is_ok());
    }
}
