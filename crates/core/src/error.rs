//! Error types for switch configuration.

use std::error::Error;
use std::fmt;

/// An invalid switch configuration was requested.
///
/// Returned by [`crate::HiRiseConfigBuilder::build`] and the fabric
/// constructors that validate geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The radix was zero or otherwise unusable.
    ZeroRadix,
    /// Fewer than two layers were requested for a 3D switch.
    TooFewLayers {
        /// The offending layer count.
        layers: usize,
    },
    /// The radix does not divide evenly over the layers; the paper requires
    /// `N/L` inputs and outputs per layer.
    RadixNotDivisibleByLayers {
        /// Requested radix.
        radix: usize,
        /// Requested layer count.
        layers: usize,
    },
    /// Channel multiplicity must be at least one.
    ZeroChannelMultiplicity,
    /// Input-binned channel allocation needs the per-layer input count to
    /// divide evenly over the channels (`N/(L*c)` pre-assigned inputs per
    /// channel, §III-A).
    InputsNotDivisibleByChannels {
        /// Inputs per layer (`N/L`).
        inputs_per_layer: usize,
        /// Channel multiplicity `c`.
        channels: usize,
    },
    /// Flit width must be non-zero.
    ZeroFlitBits,
    /// CLRG needs at least two priority classes to be meaningful.
    TooFewClasses {
        /// The offending class count.
        classes: usize,
    },
    /// A fault referenced a resource outside the fabric's geometry.
    FaultSiteOutOfRange {
        /// The offending site.
        site: crate::fault::FaultSite,
    },
    /// A flaky fault's per-cycle probability was not a finite value in
    /// `[0, 1]`.
    InvalidFaultProbability,
    /// The fabric does not model fault injection.
    FaultsUnsupported,
    /// Priority seeding was requested on a non-LRG local arbiter.
    SeedingRequiresLrg,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRadix => write!(f, "switch radix must be at least 1"),
            ConfigError::TooFewLayers { layers } => {
                write!(f, "a 3D switch needs at least 2 layers, got {layers}")
            }
            ConfigError::RadixNotDivisibleByLayers { radix, layers } => write!(
                f,
                "radix {radix} does not divide evenly over {layers} layers"
            ),
            ConfigError::ZeroChannelMultiplicity => {
                write!(f, "channel multiplicity must be at least 1")
            }
            ConfigError::InputsNotDivisibleByChannels {
                inputs_per_layer,
                channels,
            } => write!(
                f,
                "{inputs_per_layer} inputs per layer do not bin evenly into {channels} channels"
            ),
            ConfigError::ZeroFlitBits => write!(f, "flit width must be non-zero"),
            ConfigError::TooFewClasses { classes } => {
                write!(f, "CLRG needs at least 2 priority classes, got {classes}")
            }
            ConfigError::FaultSiteOutOfRange { site } => {
                write!(f, "fault site {site:?} is outside the fabric's geometry")
            }
            ConfigError::InvalidFaultProbability => {
                write!(
                    f,
                    "flaky fault probability must be a finite value in [0, 1]"
                )
            }
            ConfigError::FaultsUnsupported => {
                write!(f, "this fabric does not support fault injection")
            }
            ConfigError::SeedingRequiresLrg => {
                write!(f, "priority seeding requires the LRG local arbiter")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let message = ConfigError::RadixNotDivisibleByLayers {
            radix: 65,
            layers: 4,
        }
        .to_string();
        assert!(message.contains("65"));
        assert!(message.contains('4'));
        assert!(message.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
