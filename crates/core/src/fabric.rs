//! The common interface all switch fabrics expose to the simulator.

use crate::error::ConfigError;
use crate::fault::{Fault, FaultLog};
use crate::ids::{InputId, OutputId};

/// A request from an input port to connect to an output port, presented
/// for one arbitration cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// Requesting primary input.
    pub input: InputId,
    /// Desired final output.
    pub output: OutputId,
}

impl Request {
    /// Creates a request from `input` to `output`.
    pub const fn new(input: InputId, output: OutputId) -> Self {
        Self { input, output }
    }
}

/// A granted connection: `input` now owns `output` (and every internal
/// resource on the path) until [`Fabric::release`] is called.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grant {
    /// The winning input.
    pub input: InputId,
    /// The output it was connected to.
    pub output: OutputId,
}

/// A switch fabric with built-in single-cycle arbitration and held
/// connections.
///
/// The protocol mirrors the Swizzle-Switch family: each arbitration cycle
/// the caller presents every outstanding [`Request`] (one per idle input);
/// the fabric resolves them in a single cycle and returns the [`Grant`]s.
/// A granted connection occupies its datapath — the output bus, and for
/// Hi-Rise the local-switch column and any layer-to-layer channel — until
/// the caller releases it, normally when a packet's tail flit has left.
///
/// Requests that lose simply have no effect; callers re-present them next
/// cycle. Requests from already-connected inputs are ignored.
///
/// `Send` is a supertrait so boxed fabrics can move into the sharded
/// simulator's worker threads; fabrics are plain data, so every
/// implementation satisfies it for free.
pub trait Fabric: Send {
    /// Number of input (and output) ports.
    fn radix(&self) -> usize;

    /// Runs one arbitration cycle over `requests`, establishing
    /// connections for the winners and returning them.
    ///
    /// At most one request per input may be presented; later duplicates
    /// are ignored.
    ///
    /// # Panics
    ///
    /// Implementations panic if a request references an out-of-range port.
    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant>;

    /// Runs one arbitration cycle like [`arbitrate`](Self::arbitrate),
    /// but writes the winners into a caller-owned buffer instead of
    /// allocating one. `grants` is cleared first, then filled; its
    /// capacity is reused across calls, which is what makes the
    /// simulator's steady-state cycle loop allocation-free.
    ///
    /// The default implementation delegates to `arbitrate`; the fabrics
    /// in this crate override it with natively buffer-filling paths and
    /// re-express `arbitrate` on top of it, so both entry points always
    /// produce identical grant sets.
    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        grants.clear();
        grants.extend(self.arbitrate(requests));
    }

    /// Releases the connection held by `input`, freeing the output and
    /// all internal resources. Does nothing if `input` holds none.
    ///
    /// # Panics
    ///
    /// Implementations panic if `input` is out of range.
    fn release(&mut self, input: InputId);

    /// The output currently connected to `input`, if any.
    fn connection(&self, input: InputId) -> Option<OutputId>;

    /// Whether `output` is currently owned by a connection.
    fn output_busy(&self, output: OutputId) -> bool;

    /// Whether `input` currently holds a connection.
    fn input_busy(&self, input: InputId) -> bool {
        self.connection(input).is_some()
    }

    /// Number of connections currently held.
    fn active_connections(&self) -> usize {
        (0..self.radix())
            .filter(|&i| self.connection(InputId::new(i)).is_some())
            .count()
    }

    /// Number of TSV bundles this fabric models as fault sites. Zero
    /// for fabrics without TSVs (the flat 2D baseline) — injecting a
    /// [`FaultSite::TsvBundle`](crate::fault::FaultSite::TsvBundle)
    /// fault into such a fabric is rejected as out of range.
    fn tsv_bundle_count(&self) -> usize {
        0
    }

    /// Enables deterministic fault injection, seeding the dedicated
    /// flaky-fault sampler (independent of any traffic PRNG, so
    /// enabling faults never perturbs a fault-free simulation).
    ///
    /// # Errors
    ///
    /// [`ConfigError::FaultsUnsupported`] when the fabric does not
    /// model faults (the default).
    fn enable_faults(&mut self, _seed: u64) -> Result<(), ConfigError> {
        Err(ConfigError::FaultsUnsupported)
    }

    /// Injects `fault`, enabling fault support with seed 0 first if
    /// [`enable_faults`](Self::enable_faults) was never called. A down
    /// resource refuses new arbitration and channel allocation;
    /// in-flight connections complete normally.
    ///
    /// # Errors
    ///
    /// [`ConfigError::FaultSiteOutOfRange`] for a site outside the
    /// fabric's geometry, [`ConfigError::InvalidFaultProbability`] for
    /// a flaky probability outside `[0, 1]`, or
    /// [`ConfigError::FaultsUnsupported`] when the fabric does not
    /// model faults (the default).
    fn inject_fault(&mut self, _fault: Fault) -> Result<(), ConfigError> {
        Err(ConfigError::FaultsUnsupported)
    }

    /// The fault-event log, if fault support was enabled.
    fn fault_log(&self) -> Option<&FaultLog> {
        None
    }

    /// Whether an idle arbitration cycle (no requests, no held
    /// connections) still mutates observable state, so the caller must
    /// tick the fabric every cycle rather than skipping it.
    ///
    /// Fabrics with flaky faults registered resample them (and draw
    /// from their fault PRNG) on every [`arbitrate`](Self::arbitrate)
    /// call, so skipping cycles would desynchronise the fault stream.
    /// Fault-free fabrics — and fabrics with only dead faults — are
    /// pure functions of the presented requests and may be skipped
    /// while idle. The conservative default is `true` (never skip);
    /// this crate's fabrics override it.
    fn ticks_when_idle(&self) -> bool {
        true
    }
}

impl<F: Fabric + ?Sized> Fabric for Box<F> {
    fn radix(&self) -> usize {
        (**self).radix()
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        (**self).arbitrate(requests)
    }

    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        (**self).arbitrate_into(requests, grants)
    }

    fn release(&mut self, input: InputId) {
        (**self).release(input)
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        (**self).connection(input)
    }

    fn output_busy(&self, output: OutputId) -> bool {
        (**self).output_busy(output)
    }

    fn tsv_bundle_count(&self) -> usize {
        (**self).tsv_bundle_count()
    }

    fn enable_faults(&mut self, seed: u64) -> Result<(), ConfigError> {
        (**self).enable_faults(seed)
    }

    fn inject_fault(&mut self, fault: Fault) -> Result<(), ConfigError> {
        (**self).inject_fault(fault)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        (**self).fault_log()
    }

    fn ticks_when_idle(&self) -> bool {
        (**self).ticks_when_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_fabrics_delegate() {
        let mut sw: Box<dyn Fabric> = Box::new(crate::Switch2d::new(4));
        assert_eq!(sw.radix(), 4);
        let grants = sw.arbitrate(&[Request::new(InputId::new(0), OutputId::new(1))]);
        assert_eq!(grants.len(), 1);
        assert!(sw.output_busy(OutputId::new(1)));
        sw.release(InputId::new(0));
        assert_eq!(sw.active_connections(), 0);
    }

    #[test]
    fn request_and_grant_are_plain_data() {
        let r = Request::new(InputId::new(1), OutputId::new(2));
        assert_eq!(r.input, InputId::new(1));
        assert_eq!(r.output, OutputId::new(2));
        let g = Grant {
            input: r.input,
            output: r.output,
        };
        assert!(!format!("{g:?}").is_empty());
    }
}
