//! Deterministic fault injection and graceful degradation.
//!
//! Hi-Rise's premise is vertical integration over TSVs, and TSV
//! yield/wear is the canonical risk of 3D stacking. This module models
//! three classes of fault site — inter-layer **TSV bundles**, switch
//! **input ports**, and individual crossbar **crosspoints** — each of
//! which can be *stuck-at-dead* (permanent) or *transiently flaky*
//! (down with a per-cycle probability sampled from a dedicated,
//! seed-driven PRNG that is independent of the traffic stream).
//!
//! Fabrics degrade gracefully instead of misbehaving: arbitration masks
//! out requests whose port or crosspoint is down, and Hi-Rise's channel
//! allocation re-bins around dead L2LCs (see
//! [`Fabric`](crate::Fabric)'s `enable_faults` / `inject_fault`
//! methods). Every up/down transition is appended to a recording-mode
//! [`FaultLog`] — bounded storage, unbounded count — so long campaigns
//! log degradation without allocating in the steady-state cycle loop.
//!
//! Semantics of a *down* resource: it refuses **new** arbitration and
//! channel allocation while down; connections already in flight
//! complete normally (a transfer drains before the fault bites).

use crate::bits::BitSet;
use crate::error::ConfigError;
use crate::rng::{Rng, SeedableRng, StdRng};

/// A physical resource that can fail.
///
/// TSV-bundle indices are interpreted by the owning fabric: for
/// Hi-Rise a bundle is one layer-to-layer channel (flat L2LC index,
/// `layers * (layers-1) * multiplicity` of them); for the folded
/// baseline it is one output bus crossing one layer boundary
/// (`output * (layers-1) + boundary`, `radix * (layers-1)` of them);
/// the flat 2D switch has none.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// An inter-layer TSV bundle, by fabric-interpreted flat index.
    TsvBundle {
        /// Flat bundle index, `0..tsv_bundle_count()`.
        index: usize,
    },
    /// A switch input port.
    Port {
        /// Input port index, `0..radix`.
        input: usize,
    },
    /// A single crossbar crosspoint.
    Crosspoint {
        /// Input port index, `0..radix`.
        input: usize,
        /// Output port index, `0..radix`.
        output: usize,
    },
}

/// How a fault manifests over time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Permanently stuck-at-dead from injection onwards.
    Dead,
    /// Transiently flaky: each cycle the site is down independently
    /// with the given probability.
    Flaky {
        /// Per-cycle down probability in `[0, 1]`.
        probability: f64,
    },
}

/// One injected fault: a site and how it fails.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// Where the fault is.
    pub site: FaultSite,
    /// How it manifests.
    pub kind: FaultKind,
}

impl Fault {
    /// A permanently dead `site`.
    pub const fn dead(site: FaultSite) -> Self {
        Self {
            site,
            kind: FaultKind::Dead,
        }
    }

    /// A flaky `site`, down each cycle with `probability`.
    pub const fn flaky(site: FaultSite, probability: f64) -> Self {
        Self {
            site,
            kind: FaultKind::Flaky { probability },
        }
    }
}

/// One recorded up/down transition of a fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fabric arbitration cycle at which the transition took effect
    /// (0 for faults injected before the first cycle).
    pub cycle: u64,
    /// The site that changed state.
    pub site: FaultSite,
    /// `true` when the site went down, `false` when it recovered.
    pub went_down: bool,
}

/// Recording-mode stream of fault transitions.
///
/// Mirrors the simulator's invariant checker: the first
/// [`MAX_RECORDED`](Self::MAX_RECORDED) events are stored verbatim for
/// inspection, every further event only bumps [`total`](Self::total).
/// The storage is preallocated, so pushing events never allocates —
/// flaky faults stay compatible with the allocation-free cycle loop.
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    recorded: Vec<FaultEvent>,
    total: u64,
}

impl FaultLog {
    /// Cap on stored events; the total count is unbounded.
    pub const MAX_RECORDED: usize = 16;

    fn new() -> Self {
        Self {
            recorded: Vec::with_capacity(Self::MAX_RECORDED),
            total: 0,
        }
    }

    fn push(&mut self, event: FaultEvent) {
        self.total += 1;
        if self.recorded.len() < Self::MAX_RECORDED {
            self.recorded.push(event);
        }
    }

    /// Total transitions observed, including those beyond the cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The first [`MAX_RECORDED`](Self::MAX_RECORDED) transitions.
    pub fn recorded(&self) -> &[FaultEvent] {
        &self.recorded
    }
}

/// How abstract TSV-bundle indices map onto datapath resources beyond
/// the direct `tsv_down` lookup the owning fabric performs itself.
#[derive(Clone, Debug)]
pub(crate) enum TsvMap {
    /// The fabric consults `tsv_down` directly (Hi-Rise checks its
    /// L2LCs), or has no TSVs at all (flat 2D).
    Direct,
    /// Folded baseline: bundle `output * (layers-1) + boundary` carries
    /// `output`'s bus across layer boundary `boundary`; while down it
    /// kills every crosspoint whose input→output path crosses that
    /// boundary.
    Folded {
        layers: usize,
        ports_per_layer: usize,
    },
}

/// Marks `site` in the given down-sets, expanding TSV bundles through
/// the fabric's [`TsvMap`].
fn apply_site(
    site: FaultSite,
    inputs: &mut BitSet,
    xpoints: &mut BitSet,
    tsvs: &mut BitSet,
    radix: usize,
    map: &TsvMap,
) {
    match site {
        FaultSite::Port { input } => inputs.insert(input),
        FaultSite::Crosspoint { input, output } => xpoints.insert(input * radix + output),
        FaultSite::TsvBundle { index } => {
            tsvs.insert(index);
            if let TsvMap::Folded {
                layers,
                ports_per_layer,
            } = *map
            {
                let output = index / (layers - 1);
                let boundary = index % (layers - 1);
                let layer_o = output / ports_per_layer;
                for input in 0..radix {
                    let layer_i = input / ports_per_layer;
                    let (low, high) = (layer_i.min(layer_o), layer_i.max(layer_o));
                    if low <= boundary && boundary < high {
                        xpoints.insert(input * radix + output);
                    }
                }
            }
        }
    }
}

/// Per-fabric fault state: the permanent dead sets, the per-cycle
/// effective down sets (dead ∪ currently-down flaky), the flaky fault
/// list with its dedicated PRNG, and the transition log.
///
/// The hot-path queries (`input_down`, `xpoint_down`, `tsv_down`) are
/// single `BitSet` tests; [`advance`](Self::advance) is a no-op beyond
/// a counter bump unless flaky faults exist.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    radix: usize,
    dead_inputs: BitSet,
    dead_xpoints: BitSet,
    dead_tsvs: BitSet,
    down_inputs: BitSet,
    down_xpoints: BitSet,
    down_tsvs: BitSet,
    flaky: Vec<Fault>,
    flaky_down: Vec<bool>,
    rng: StdRng,
    log: FaultLog,
    cycle: u64,
    map: TsvMap,
}

impl FaultState {
    pub(crate) fn new(radix: usize, tsv_count: usize, map: TsvMap, seed: u64) -> Self {
        Self {
            radix,
            dead_inputs: BitSet::new(radix),
            dead_xpoints: BitSet::new(radix * radix),
            dead_tsvs: BitSet::new(tsv_count),
            down_inputs: BitSet::new(radix),
            down_xpoints: BitSet::new(radix * radix),
            down_tsvs: BitSet::new(tsv_count),
            flaky: Vec::new(),
            flaky_down: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            log: FaultLog::new(),
            cycle: 0,
            map,
        }
    }

    fn validate_site(&self, site: FaultSite) -> Result<(), ConfigError> {
        let in_range = match site {
            FaultSite::Port { input } => input < self.radix,
            FaultSite::Crosspoint { input, output } => input < self.radix && output < self.radix,
            FaultSite::TsvBundle { index } => index < self.dead_tsvs.capacity(),
        };
        if in_range {
            Ok(())
        } else {
            Err(ConfigError::FaultSiteOutOfRange { site })
        }
    }

    pub(crate) fn inject(&mut self, fault: Fault) -> Result<(), ConfigError> {
        self.validate_site(fault.site)?;
        match fault.kind {
            FaultKind::Dead => {
                apply_site(
                    fault.site,
                    &mut self.dead_inputs,
                    &mut self.dead_xpoints,
                    &mut self.dead_tsvs,
                    self.radix,
                    &self.map,
                );
                apply_site(
                    fault.site,
                    &mut self.down_inputs,
                    &mut self.down_xpoints,
                    &mut self.down_tsvs,
                    self.radix,
                    &self.map,
                );
                self.log.push(FaultEvent {
                    cycle: self.cycle,
                    site: fault.site,
                    went_down: true,
                });
            }
            FaultKind::Flaky { probability } => {
                if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                    return Err(ConfigError::InvalidFaultProbability);
                }
                self.flaky.push(fault);
                self.flaky_down.push(false);
            }
        }
        Ok(())
    }

    /// Advances one arbitration cycle: re-samples every flaky fault and
    /// rebuilds the effective down sets. Allocation-free: word-level
    /// `BitSet` copies plus one PRNG draw per flaky fault, and the log
    /// stores into preallocated capacity.
    pub(crate) fn advance(&mut self) {
        self.cycle += 1;
        if self.flaky.is_empty() {
            return; // down == dead, maintained at injection time
        }
        self.down_inputs.copy_from(&self.dead_inputs);
        self.down_xpoints.copy_from(&self.dead_xpoints);
        self.down_tsvs.copy_from(&self.dead_tsvs);
        for i in 0..self.flaky.len() {
            let fault = self.flaky[i];
            let FaultKind::Flaky { probability } = fault.kind else {
                continue;
            };
            let down = self.rng.gen_bool(probability);
            if down != self.flaky_down[i] {
                self.flaky_down[i] = down;
                self.log.push(FaultEvent {
                    cycle: self.cycle,
                    site: fault.site,
                    went_down: down,
                });
            }
            if down {
                apply_site(
                    fault.site,
                    &mut self.down_inputs,
                    &mut self.down_xpoints,
                    &mut self.down_tsvs,
                    self.radix,
                    &self.map,
                );
            }
        }
    }

    #[inline]
    pub(crate) fn input_down(&self, input: usize) -> bool {
        self.down_inputs.contains(input)
    }

    #[inline]
    pub(crate) fn xpoint_down(&self, input: usize, output: usize) -> bool {
        self.down_xpoints.contains(input * self.radix + output)
    }

    #[inline]
    pub(crate) fn tsv_down(&self, index: usize) -> bool {
        self.down_tsvs.contains(index)
    }

    pub(crate) fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Whether any flaky faults are registered. When false,
    /// [`advance`](Self::advance) is a pure counter bump with no PRNG
    /// draws, which is what lets a simulator skip idle cycles for this
    /// fabric without perturbing fault sampling streams.
    #[inline]
    pub(crate) fn has_flaky(&self) -> bool {
        !self.flaky.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_faults_take_effect_immediately_and_log_once() {
        let mut state = FaultState::new(8, 4, TsvMap::Direct, 1);
        state
            .inject(Fault::dead(FaultSite::Port { input: 3 }))
            .unwrap();
        state
            .inject(Fault::dead(FaultSite::TsvBundle { index: 2 }))
            .unwrap();
        assert!(state.input_down(3));
        assert!(!state.input_down(2));
        assert!(state.tsv_down(2));
        assert_eq!(state.log().total(), 2);
        // Dead faults survive advancement with no flaky faults present.
        for _ in 0..100 {
            state.advance();
        }
        assert!(state.input_down(3));
        assert!(state.tsv_down(2));
        assert_eq!(state.log().total(), 2);
    }

    #[test]
    fn out_of_range_sites_are_rejected() {
        let mut state = FaultState::new(4, 2, TsvMap::Direct, 1);
        let site = FaultSite::TsvBundle { index: 2 };
        assert_eq!(
            state.inject(Fault::dead(site)),
            Err(ConfigError::FaultSiteOutOfRange { site })
        );
        let site = FaultSite::Crosspoint {
            input: 0,
            output: 4,
        };
        assert_eq!(
            state.inject(Fault::dead(site)),
            Err(ConfigError::FaultSiteOutOfRange { site })
        );
    }

    #[test]
    fn flaky_probability_is_validated() {
        let mut state = FaultState::new(4, 0, TsvMap::Direct, 1);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert_eq!(
                state.inject(Fault::flaky(FaultSite::Port { input: 0 }, bad)),
                Err(ConfigError::InvalidFaultProbability)
            );
        }
        assert!(state
            .inject(Fault::flaky(FaultSite::Port { input: 0 }, 0.5))
            .is_ok());
    }

    #[test]
    fn zero_probability_flaky_fault_never_goes_down() {
        let mut state = FaultState::new(4, 0, TsvMap::Direct, 7);
        state
            .inject(Fault::flaky(FaultSite::Port { input: 1 }, 0.0))
            .unwrap();
        for _ in 0..10_000 {
            state.advance();
            assert!(!state.input_down(1));
        }
        assert_eq!(state.log().total(), 0);
    }

    #[test]
    fn always_down_flaky_fault_logs_one_transition() {
        let mut state = FaultState::new(4, 0, TsvMap::Direct, 7);
        state
            .inject(Fault::flaky(FaultSite::Port { input: 1 }, 1.0))
            .unwrap();
        for _ in 0..50 {
            state.advance();
            assert!(state.input_down(1));
        }
        assert_eq!(state.log().total(), 1);
        assert_eq!(state.log().recorded()[0].site, FaultSite::Port { input: 1 });
    }

    #[test]
    fn flaky_sampling_is_seed_deterministic() {
        let run = |seed| {
            let mut state = FaultState::new(4, 0, TsvMap::Direct, seed);
            state
                .inject(Fault::flaky(FaultSite::Port { input: 0 }, 0.5))
                .unwrap();
            let mut trace = Vec::new();
            for _ in 0..256 {
                state.advance();
                trace.push(state.input_down(0));
            }
            (trace, state.log().total())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn log_storage_is_capped_but_total_is_not() {
        let mut state = FaultState::new(4, 0, TsvMap::Direct, 3);
        state
            .inject(Fault::flaky(FaultSite::Port { input: 0 }, 0.5))
            .unwrap();
        for _ in 0..10_000 {
            state.advance();
        }
        assert!(state.log().total() > FaultLog::MAX_RECORDED as u64);
        assert_eq!(state.log().recorded().len(), FaultLog::MAX_RECORDED);
    }

    #[test]
    fn folded_tsv_bundle_kills_boundary_crossing_crosspoints() {
        // 8 ports over 4 layers (2 per layer), bundle for output 6
        // (layer 3) at boundary 1: inputs on layers 0..=1 cross it,
        // inputs on layers 2..=3 do not.
        let map = TsvMap::Folded {
            layers: 4,
            ports_per_layer: 2,
        };
        let mut state = FaultState::new(8, 8 * 3, map, 1);
        let index = 6 * 3 + 1; // output 6, boundary 1
        state
            .inject(Fault::dead(FaultSite::TsvBundle { index }))
            .unwrap();
        for input in 0..8 {
            let crosses = input / 2 <= 1; // layers 0 and 1 are below boundary 1
            assert_eq!(
                state.xpoint_down(input, 6),
                crosses,
                "input {input} -> output 6"
            );
            // Other outputs are untouched.
            assert!(!state.xpoint_down(input, 5));
        }
    }
}
