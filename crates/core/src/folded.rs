//! The 3D *folded* baseline switch (§II-B).
//!
//! A 2D Swizzle-Switch folded evenly over `L` silicon layers: each layer
//! holds `N/L` inputs and `N/L` locally-connected outputs, but the fabric
//! is still one monolithic `N x N` crossbar whose 64 output buses punch
//! through every layer on TSVs. Arbitration is therefore *identical* to
//! the 2D switch — what changes is the physical cost: every output bus
//! wire needs a TSV per layer boundary (8192 TSVs for the 64-radix,
//! 128-bit, 4-layer switch of Table I) and the added TSV capacitance
//! slows the clock. The behavioural model here delegates to
//! [`Switch2d`]; the physical differences live in `hirise-phys`.

use crate::error::ConfigError;
use crate::fabric::{Fabric, Grant, Request};
use crate::fault::{Fault, FaultLog, TsvMap};
use crate::ids::{InputId, LayerId, OutputId};
use crate::kernel::ArbiterKernel;
use crate::switch2d::Switch2d;

/// A 2D switch folded over `layers` silicon layers.
#[derive(Clone, Debug)]
pub struct FoldedSwitch {
    inner: Switch2d,
    layers: usize,
    flit_bits: usize,
}

impl FoldedSwitch {
    /// Creates a folded switch of the given radix over `layers` layers
    /// with the default 128-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero, `layers < 2`, or the radix does not
    /// divide evenly over the layers.
    pub fn new(radix: usize, layers: usize) -> Self {
        Self::with_flit_bits(radix, layers, crate::config::DEFAULT_FLIT_BITS)
    }

    /// Creates a folded switch with an explicit bus width.
    ///
    /// # Panics
    ///
    /// As [`FoldedSwitch::new`], and if `flit_bits` is zero.
    pub fn with_flit_bits(radix: usize, layers: usize, flit_bits: usize) -> Self {
        Self::with_kernel(radix, layers, flit_bits, ArbiterKernel::default())
    }

    /// Creates a folded switch with an explicit arbitration kernel (see
    /// [`Switch2d::with_kernel`]); arbitration delegates to the flat
    /// switch, so the kernel choice passes straight through.
    ///
    /// # Panics
    ///
    /// As [`FoldedSwitch::with_flit_bits`].
    pub fn with_kernel(
        radix: usize,
        layers: usize,
        flit_bits: usize,
        kernel: ArbiterKernel,
    ) -> Self {
        assert!(layers >= 2, "a folded switch needs at least 2 layers");
        assert!(
            radix.is_multiple_of(layers),
            "radix {radix} does not divide evenly over {layers} layers"
        );
        assert!(flit_bits > 0, "flit width must be non-zero");
        Self {
            inner: Switch2d::with_kernel(radix, kernel),
            layers,
            flit_bits,
        }
    }

    /// The arbitration kernel in effect on the underlying flat switch.
    pub fn kernel(&self) -> ArbiterKernel {
        self.inner.kernel()
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Inputs (and outputs) per layer.
    pub fn ports_per_layer(&self) -> usize {
        self.radix() / self.layers
    }

    /// Layer hosting `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn layer_of_input(&self, input: InputId) -> LayerId {
        assert!(input.index() < self.radix(), "input {input} out of range");
        LayerId::new(input.index() / self.ports_per_layer())
    }

    /// TSV count under the paper's accounting: every one of the `N`
    /// output buses (of `flit_bits` wires) must reach every layer, so the
    /// folded switch needs `N * flit_bits` vertical wires (Table I:
    /// 8192 for 64 x 128-bit over 4 layers).
    pub fn tsv_count(&self) -> usize {
        self.radix() * self.flit_bits
    }

    /// Seeds one output column's LRG order; see
    /// [`Switch2d::seed_output_priority`].
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `order` is not a permutation.
    pub fn seed_output_priority(&mut self, output: OutputId, order: &[usize]) {
        self.inner.seed_output_priority(output, order);
    }
}

impl Fabric for FoldedSwitch {
    fn radix(&self) -> usize {
        self.inner.radix()
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        self.inner.arbitrate(requests)
    }

    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        self.inner.arbitrate_into(requests, grants)
    }

    fn release(&mut self, input: InputId) {
        self.inner.release(input);
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        self.inner.connection(input)
    }

    fn output_busy(&self, output: OutputId) -> bool {
        self.inner.output_busy(output)
    }

    /// One fault-site bundle per (output bus, layer boundary): a bundle
    /// is the `flit_bits` vertical wires carrying one output bus across
    /// one boundary, indexed `output * (layers-1) + boundary`.
    fn tsv_bundle_count(&self) -> usize {
        self.inner.radix() * (self.layers - 1)
    }

    fn enable_faults(&mut self, seed: u64) -> Result<(), ConfigError> {
        let bundles = self.inner.radix() * (self.layers - 1);
        let map = TsvMap::Folded {
            layers: self.layers,
            ports_per_layer: self.ports_per_layer(),
        };
        self.inner.enable_faults_mapped(bundles, map, seed);
        Ok(())
    }

    fn inject_fault(&mut self, fault: Fault) -> Result<(), ConfigError> {
        if !self.inner.faults_enabled() {
            Fabric::enable_faults(self, 0)?;
        }
        self.inner.inject_fault_inner(fault)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        self.inner.fault_log()
    }

    fn ticks_when_idle(&self) -> bool {
        self.inner.ticks_when_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_tsv_count() {
        let sw = FoldedSwitch::new(64, 4);
        assert_eq!(sw.tsv_count(), 8192);
        assert_eq!(sw.ports_per_layer(), 16);
    }

    #[test]
    fn arbitration_matches_flat_2d() {
        let mut folded = FoldedSwitch::new(16, 4);
        let mut flat = Switch2d::new(16);
        let requests: Vec<Request> = (0..16)
            .map(|i| Request::new(InputId::new(i), OutputId::new((i * 3) % 16)))
            .collect();
        let a = folded.arbitrate(&requests);
        let b = flat.arbitrate(&requests);
        assert_eq!(a, b);
    }

    #[test]
    fn layer_mapping() {
        let sw = FoldedSwitch::new(64, 4);
        assert_eq!(sw.layer_of_input(InputId::new(0)), LayerId::new(0));
        assert_eq!(sw.layer_of_input(InputId::new(20)), LayerId::new(1));
        assert_eq!(sw.layer_of_input(InputId::new(63)), LayerId::new(3));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_fold() {
        let _ = FoldedSwitch::new(65, 4);
    }

    #[test]
    fn dead_tsv_bundle_blocks_boundary_crossing_paths_only() {
        use crate::fabric::Request;
        use crate::fault::{Fault, FaultSite};

        let mut sw = FoldedSwitch::new(8, 4); // 2 ports per layer
        assert_eq!(Fabric::tsv_bundle_count(&sw), 8 * 3);
        // Output 6 lives on layer 3; kill its bus at boundary 1.
        sw.inject_fault(Fault::dead(FaultSite::TsvBundle { index: 6 * 3 + 1 }))
            .unwrap();
        // Input 0 (layer 0) must cross boundary 1 to reach output 6.
        let blocked = sw.arbitrate(&[Request::new(InputId::new(0), OutputId::new(6))]);
        assert!(blocked.is_empty());
        // Input 4 (layer 2) sits above the break: unaffected.
        let ok = sw.arbitrate(&[Request::new(InputId::new(4), OutputId::new(6))]);
        assert_eq!(ok.len(), 1);
        sw.release(InputId::new(4));
        // Other outputs of the blocked input are fine too.
        let ok = sw.arbitrate(&[Request::new(InputId::new(0), OutputId::new(7))]);
        assert_eq!(ok.len(), 1);
        assert_eq!(sw.fault_log().unwrap().total(), 1);
    }
}
