//! Layer-to-layer channel (L2LC) bookkeeping.
//!
//! Each ordered pair of layers is joined by `c` dedicated vertical
//! channels (Fig. 2). A channel is owned by at most one in-flight
//! connection at a time; ownership is what makes the L2LCs a bandwidth
//! bottleneck under inter-layer-heavy traffic (§VI-B's pathological case).

use crate::ids::InputId;

/// Busy/owner state for every L2LC of a switch, indexed by
/// `(source layer, destination layer, channel)`.
#[derive(Clone, Debug)]
pub(crate) struct ChannelTable {
    layers: usize,
    multiplicity: usize,
    owners: Vec<Option<InputId>>,
    /// Bitmap mirror of `owners.is_some()`; the arbitration admission
    /// loop probes busyness once per inter-layer request per cycle, and
    /// a bit test on a hot word beats an `Option<InputId>` load.
    busy: Vec<u64>,
}

impl ChannelTable {
    pub(crate) fn new(layers: usize, multiplicity: usize) -> Self {
        let count = layers * (layers - 1) * multiplicity;
        Self {
            layers,
            multiplicity,
            owners: vec![None; count],
            busy: vec![0; count.div_ceil(64).max(1)],
        }
    }

    /// Flat index of channel `k` from `src` to `dst` (`src != dst`).
    pub(crate) fn index(&self, src: usize, dst: usize, k: usize) -> usize {
        debug_assert!(src != dst, "no channel from a layer to itself");
        debug_assert!(src < self.layers && dst < self.layers && k < self.multiplicity);
        let compressed_dst = if dst < src { dst } else { dst - 1 };
        (src * (self.layers - 1) + compressed_dst) * self.multiplicity + k
    }

    pub(crate) fn is_busy(&self, src: usize, dst: usize, k: usize) -> bool {
        let idx = self.index(src, dst, k);
        self.busy[idx / 64] >> (idx % 64) & 1 == 1
    }

    pub(crate) fn acquire(&mut self, src: usize, dst: usize, k: usize, owner: InputId) {
        let idx = self.index(src, dst, k);
        debug_assert!(self.owners[idx].is_none(), "channel already owned");
        self.owners[idx] = Some(owner);
        self.busy[idx / 64] |= 1u64 << (idx % 64);
    }

    pub(crate) fn release(&mut self, src: usize, dst: usize, k: usize) {
        let idx = self.index(src, dst, k);
        debug_assert!(self.owners[idx].is_some(), "releasing a free channel");
        self.owners[idx] = None;
        self.busy[idx / 64] &= !(1u64 << (idx % 64));
    }

    #[cfg(test)]
    pub(crate) fn busy_count(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_unique_and_dense() {
        let table = ChannelTable::new(4, 4);
        let mut seen = [false; 4 * 3 * 4];
        for src in 0..4 {
            for dst in 0..4 {
                if src == dst {
                    continue;
                }
                for k in 0..4 {
                    let idx = table.index(src, dst, k);
                    assert!(!seen[idx], "duplicate index for ({src},{dst},{k})");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn acquire_release_cycle() {
        let mut table = ChannelTable::new(3, 2);
        assert!(!table.is_busy(0, 2, 1));
        table.acquire(0, 2, 1, InputId::new(5));
        assert!(table.is_busy(0, 2, 1));
        assert!(!table.is_busy(2, 0, 1)); // direction matters
        assert_eq!(table.busy_count(), 1);
        table.release(0, 2, 1);
        assert!(!table.is_busy(0, 2, 1));
    }
}
