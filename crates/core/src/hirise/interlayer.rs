//! The per-output *inter-layer sub-block* (§III-A, §IV-B).
//!
//! Each final output has a `(c(L-1)+1) x 1` sub-block that chooses, every
//! cycle, between the incoming L2LCs from every other layer and the one
//! local intermediate output. The sub-block embeds the inter-layer
//! arbitration scheme: baseline layer-to-layer LRG, Weighted LRG, or the
//! paper's Class-based LRG (Fig. 7's cross-point with class counters,
//! priority-select muxes and a 13-bit LRG).

use crate::arbiter::clrg::ClrgState;
use crate::arbiter::matrix::MatrixArbiter;
use crate::arbiter::wlrg::WlrgState;
use crate::arbiter::ArbitrationScheme;
use crate::bits::BitSet;
use crate::ids::InputId;

/// A contender presented to a sub-block for one arbitration cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Contender {
    /// Sub-block slot: `compressed_src * c + k` for an L2LC, or the last
    /// slot for the local intermediate output.
    pub slot: usize,
    /// The primary input riding this slot (the phase-1 winner).
    pub input: InputId,
    /// Parallel requestors the slot represented at phase 1 (WLRG weight).
    pub weight: u32,
}

/// One inter-layer sub-block with its arbitration state.
#[derive(Clone, Debug)]
pub(crate) struct SubBlock {
    lrg: MatrixArbiter,
    wlrg: Option<WlrgState>,
    clrg: Option<ClrgState>,
    /// Cross-check every decision against the signal-level circuit
    /// model of `crate::xpoint` (debug aid; see
    /// [`HiRiseSwitch::enable_signal_validation`](crate::HiRiseSwitch::enable_signal_validation)).
    validate_signals: bool,
    /// Candidate-slot mask, reused across cycles so the hot path stays
    /// allocation-free.
    mask: BitSet,
}

impl SubBlock {
    /// Creates a sub-block with `slots` contender slots over a switch of
    /// `radix` primary inputs, using `scheme`.
    pub(crate) fn new(slots: usize, radix: usize, scheme: ArbitrationScheme) -> Self {
        let (wlrg, clrg) = match scheme {
            ArbitrationScheme::LayerToLayerLrg => (None, None),
            ArbitrationScheme::WeightedLrg => (Some(WlrgState::new(slots)), None),
            ArbitrationScheme::ClassBased { classes } => {
                (None, Some(ClrgState::new(radix, classes)))
            }
        };
        Self {
            lrg: MatrixArbiter::new(slots),
            wlrg,
            clrg,
            validate_signals: false,
            mask: BitSet::new(slots),
        }
    }

    /// Enables per-decision validation against the circuit model.
    pub(crate) fn enable_signal_validation(&mut self) {
        self.validate_signals = true;
    }

    /// Runs one sub-block arbitration cycle, commits the scheme's state
    /// updates, and returns the index into `contenders` of the winner.
    ///
    /// Returns `None` for an empty contender set.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if two contenders share a slot.
    pub(crate) fn arbitrate(&mut self, contenders: &[Contender]) -> Option<usize> {
        if contenders.is_empty() {
            return None;
        }

        // Debug-only duplicate-slot check, via the reused mask instead of
        // the old sort-a-Vec formulation (the mask is rebuilt below).
        #[cfg(debug_assertions)]
        {
            self.mask.clear();
            for contender in contenders {
                assert!(
                    !self.mask.contains(contender.slot),
                    "contender slots must be unique"
                );
                self.mask.insert(contender.slot);
            }
        }

        // Build the candidate-slot mask in the reused scratch set.
        self.mask.clear();
        if let Some(clrg) = &self.clrg {
            // Class-based LRG: best (lowest-count) class wins; LRG breaks
            // ties within that class. The slot-level LRG is updated every
            // cycle even when the class decided the winner (Fig. 5,
            // arbitration cycle 2: "Even though LRG is not used for this
            // arbitration cycle, it is still updated").
            let best = contenders
                .iter()
                .map(|c| clrg.class_of(c.input.index()))
                .min()
                .expect("non-empty contender set");
            for contender in contenders {
                if clrg.class_of(contender.input.index()) == best {
                    self.mask.insert(contender.slot);
                }
            }
        } else {
            for contender in contenders {
                self.mask.insert(contender.slot);
            }
        }
        let slot = self
            .lrg
            .grant_mask(&self.mask)
            .expect("non-empty candidate set");
        Some(self.finish(contenders, slot))
    }

    /// As [`arbitrate`](Self::arbitrate), but carrying the candidate-slot
    /// set as one raw `u64` word — the word-parallel kernel path. The
    /// caller guarantees the sub-block has at most 64 slots (checked at
    /// kernel resolution; see [`crate::kernel::KernelSel`]). Decisions
    /// and state updates are bit-identical to the scalar path.
    pub(crate) fn arbitrate_word(&mut self, contenders: &[Contender]) -> Option<usize> {
        if contenders.is_empty() {
            return None;
        }

        #[cfg(debug_assertions)]
        {
            let mut seen = 0u64;
            for contender in contenders {
                assert!(
                    seen >> contender.slot & 1 == 0,
                    "contender slots must be unique"
                );
                seen |= 1 << contender.slot;
            }
        }

        if contenders.len() == 1 {
            // A lone contender wins regardless of priority state; skip
            // the mask build and the matrix scan. `finish` still applies
            // the exact same priority updates (and, under
            // `validate_signals`, the same circuit cross-check).
            return Some(self.finish(contenders, contenders[0].slot));
        }

        let mut mask = 0u64;
        if let Some(clrg) = &self.clrg {
            let best = contenders
                .iter()
                .map(|c| clrg.class_of(c.input.index()))
                .min()
                .expect("non-empty contender set");
            for contender in contenders {
                if clrg.class_of(contender.input.index()) == best {
                    mask |= 1 << contender.slot;
                }
            }
        } else {
            for contender in contenders {
                mask |= 1 << contender.slot;
            }
        }
        let slot = self
            .lrg
            .grant_words::<1>(&[mask])
            .expect("non-empty candidate set");
        Some(self.finish(contenders, slot))
    }

    /// Shared tail of both arbitration paths: map the winning slot back
    /// to its contender, optionally cross-check the circuit model, and
    /// commit the scheme's state updates.
    fn finish(&mut self, contenders: &[Contender], slot: usize) -> usize {
        let winner_index = contenders.iter().position(|c| c.slot == slot).unwrap();

        if self.validate_signals {
            let classed: Vec<crate::xpoint::ClassedContender> = contenders
                .iter()
                .map(|c| crate::xpoint::ClassedContender {
                    slot: c.slot,
                    class: self
                        .clrg
                        .as_ref()
                        .map_or(0, |clrg| clrg.class_of(c.input.index())),
                })
                .collect();
            let classes = self.clrg.as_ref().map_or(1, ClrgState::classes).max(1);
            let circuit = crate::xpoint::arbitrate_clrg_column(&classed, &self.lrg, classes);
            assert_eq!(
                circuit,
                Some(winner_index),
                "behavioural winner disagrees with the Fig. 7 circuit model"
            );
        }

        let winner = contenders[winner_index];
        match (&mut self.wlrg, &mut self.clrg) {
            (Some(wlrg), _) => {
                // WLRG holds the winner's LRG priority until its weight
                // credit is spent (§III-B3).
                if wlrg.record_win(winner.slot, winner.weight) {
                    self.lrg.update(winner.slot);
                }
            }
            (None, Some(clrg)) => {
                self.lrg.update(winner.slot);
                clrg.record_win(winner.input.index());
            }
            (None, None) => {
                // Baseline: "its priority is updated after every
                // arbitration cycle" (§III-B1).
                self.lrg.update(winner.slot);
            }
        }
        winner_index
    }

    /// The CLRG class of `input` at this sub-block, if running CLRG.
    pub(crate) fn clrg_class(&self, input: InputId) -> Option<u8> {
        self.clrg.as_ref().map(|c| c.class_of(input.index()))
    }

    /// Replaces the slot-level LRG order (tests and worked examples).
    pub(crate) fn seed_priority(&mut self, order: &[usize]) {
        self.lrg = MatrixArbiter::with_order(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contender(slot: usize, input: usize) -> Contender {
        Contender {
            slot,
            input: InputId::new(input),
            weight: 1,
        }
    }

    #[test]
    fn baseline_uses_pure_slot_lrg() {
        let mut sb = SubBlock::new(4, 64, ArbitrationScheme::LayerToLayerLrg);
        // Slot 0 wins, then drops behind slot 1.
        let cs = [contender(0, 10), contender(1, 20)];
        assert_eq!(sb.arbitrate(&cs), Some(0));
        assert_eq!(sb.arbitrate(&cs), Some(1));
        assert_eq!(sb.arbitrate(&cs), Some(0));
    }

    #[test]
    fn clrg_class_overrides_lrg() {
        let mut sb = SubBlock::new(4, 64, ArbitrationScheme::class_based());
        let a = contender(0, 10);
        let b = contender(1, 20);
        // First win goes to slot 0 (LRG tie-break in class P0); input 10
        // moves to class P1, so input 20 must win next even though slot 0
        // may outrank slot 1.
        assert_eq!(sb.arbitrate(&[a, b]), Some(0));
        assert_eq!(sb.clrg_class(InputId::new(10)), Some(1));
        assert_eq!(sb.arbitrate(&[a, b]), Some(1));
        assert_eq!(sb.clrg_class(InputId::new(20)), Some(1));
    }

    #[test]
    fn wlrg_holds_priority_for_weighted_winners() {
        let mut sb = SubBlock::new(2, 64, ArbitrationScheme::WeightedLrg);
        // Slot 0 carries 2 requestors; it should win twice before slot 1
        // gets a turn.
        let heavy = Contender {
            slot: 0,
            input: InputId::new(3),
            weight: 2,
        };
        let light = contender(1, 20);
        assert_eq!(sb.arbitrate(&[heavy, light]), Some(0));
        assert_eq!(sb.arbitrate(&[heavy, light]), Some(0));
        assert_eq!(sb.arbitrate(&[heavy, light]), Some(1));
    }

    #[test]
    fn arbitrate_word_twins_arbitrate_across_schemes() {
        for scheme in [
            ArbitrationScheme::LayerToLayerLrg,
            ArbitrationScheme::WeightedLrg,
            ArbitrationScheme::class_based(),
        ] {
            let mut scalar = SubBlock::new(13, 64, scheme);
            let mut word = SubBlock::new(13, 64, scheme);
            let mut state = 0xABCD_1234u64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for step in 0..500 {
                let mut contenders = Vec::new();
                for slot in 0..13 {
                    if next() % 3 == 0 {
                        contenders.push(Contender {
                            slot,
                            input: InputId::new(next() % 64),
                            weight: (next() % 4 + 1) as u32,
                        });
                    }
                }
                assert_eq!(
                    scalar.arbitrate(&contenders),
                    word.arbitrate_word(&contenders),
                    "{scheme:?} step {step}"
                );
            }
        }
    }

    #[test]
    fn empty_contenders_yield_none() {
        let mut sb = SubBlock::new(4, 64, ArbitrationScheme::class_based());
        assert_eq!(sb.arbitrate(&[]), None);
    }

    #[test]
    fn single_contender_always_wins() {
        let mut sb = SubBlock::new(13, 64, ArbitrationScheme::class_based());
        for _ in 0..5 {
            assert_eq!(sb.arbitrate(&[contender(7, 42)]), Some(0));
        }
        // Its class keeps degrading, halving on saturation.
        let class = sb.clrg_class(InputId::new(42)).unwrap();
        assert!(class >= 1);
    }
}
