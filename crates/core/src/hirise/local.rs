//! The per-layer *local switch* (§III-A).
//!
//! On each layer an `N/L x (N/L + c(L-1))` switch lets the layer's inputs
//! arbitrate for the `N/L` local intermediate outputs (one per final
//! output on this layer) and the `c(L-1)` outgoing L2LCs. Every column
//! carries its own priority state in the cross-points; crucially, a
//! column's priority is only updated when its winner also wins the final
//! output at the inter-layer switch (the back-propagated update of
//! §III-B1 — this is what guarantees freedom from starvation).

use crate::arbiter::matrix::MatrixArbiter;
use crate::arbiter::round_robin::RoundRobinArbiter;
use crate::bits::BitSet;
use crate::config::LocalArbiterKind;
use crate::error::ConfigError;

/// One arbitration column of the local switch.
#[derive(Clone, Debug)]
pub(crate) enum ColumnArbiter {
    Lrg(MatrixArbiter),
    RoundRobin(RoundRobinArbiter),
}

impl ColumnArbiter {
    fn new(kind: LocalArbiterKind, n: usize) -> Self {
        match kind {
            LocalArbiterKind::Lrg => ColumnArbiter::Lrg(MatrixArbiter::new(n)),
            LocalArbiterKind::RoundRobin => ColumnArbiter::RoundRobin(RoundRobinArbiter::new(n)),
        }
    }

    /// Slice-path reference implementation; the hot path uses
    /// [`grant_mask`](Self::grant_mask).
    #[cfg(test)]
    pub(crate) fn grant(&self, requests: &[usize]) -> Option<usize> {
        match self {
            ColumnArbiter::Lrg(a) => a.grant(requests),
            ColumnArbiter::RoundRobin(a) => a.grant(requests),
        }
    }

    pub(crate) fn grant_mask(&self, requests: &BitSet) -> Option<usize> {
        match self {
            ColumnArbiter::Lrg(a) => a.grant_mask(requests),
            ColumnArbiter::RoundRobin(a) => a.grant_mask(requests),
        }
    }

    /// As [`grant_mask`](Self::grant_mask) over raw request words — the
    /// word-parallel kernel path.
    #[inline]
    pub(crate) fn grant_words<const W: usize>(&self, requests: &[u64; W]) -> Option<usize> {
        match self {
            ColumnArbiter::Lrg(a) => a.grant_words::<W>(requests),
            ColumnArbiter::RoundRobin(a) => a.grant_words::<W>(requests),
        }
    }

    #[inline]
    pub(crate) fn update(&mut self, winner: usize) {
        match self {
            ColumnArbiter::Lrg(a) => a.update(winner),
            ColumnArbiter::RoundRobin(a) => a.update(winner),
        }
    }
}

/// The local switch of one layer: `ports` intermediate columns followed
/// by `channel_columns` L2LC columns.
#[derive(Clone, Debug)]
pub(crate) struct LocalSwitch {
    columns: Vec<ColumnArbiter>,
    ports: usize,
    multiplicity: usize,
}

impl LocalSwitch {
    pub(crate) fn new(
        kind: LocalArbiterKind,
        ports: usize,
        channel_columns: usize,
        multiplicity: usize,
    ) -> Self {
        Self {
            columns: (0..ports + channel_columns)
                .map(|_| ColumnArbiter::new(kind, ports))
                .collect(),
            ports,
            multiplicity,
        }
    }

    /// Total number of columns (intermediate + L2LC).
    pub(crate) fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column index of the intermediate output feeding local output
    /// `local_output`.
    pub(crate) fn intermediate_column(&self, local_output: usize) -> usize {
        debug_assert!(local_output < self.ports);
        local_output
    }

    /// Column index of channel `k` towards `dst` from `src`
    /// (`compressed_dst` packs the destination layers excluding `src`).
    pub(crate) fn channel_column(&self, compressed_dst: usize, k: usize) -> usize {
        debug_assert!(k < self.multiplicity);
        self.ports + compressed_dst * self.multiplicity + k
    }

    /// Slice-path reference implementation; the hot path uses
    /// [`grant_mask`](Self::grant_mask).
    #[cfg(test)]
    pub(crate) fn grant(&self, column: usize, requests: &[usize]) -> Option<usize> {
        self.columns[column].grant(requests)
    }

    /// As [`grant`](Self::grant), but over a pre-built request mask of
    /// local-input bits — the allocation-free hot path.
    pub(crate) fn grant_mask(&self, column: usize, requests: &BitSet) -> Option<usize> {
        self.columns[column].grant_mask(requests)
    }

    /// As [`grant_mask`](Self::grant_mask) over raw request words
    /// (`requests[w]` holds local inputs `64w..64w+63`) — the
    /// word-parallel kernel path. `W` must equal `ceil(ports / 64)`.
    #[inline]
    pub(crate) fn grant_words<const W: usize>(
        &self,
        column: usize,
        requests: &[u64; W],
    ) -> Option<usize> {
        self.columns[column].grant_words::<W>(requests)
    }

    #[inline]
    pub(crate) fn update(&mut self, column: usize, winner: usize) {
        self.columns[column].update(winner);
    }

    /// Replaces a column's arbiter with a seeded LRG order (tests and
    /// worked examples).
    ///
    /// # Errors
    ///
    /// [`ConfigError::SeedingRequiresLrg`] when the local arbiter kind
    /// is not LRG — an invalid fabric x scheme combination that callers
    /// must reject before simulation starts.
    pub(crate) fn seed_column(
        &mut self,
        column: usize,
        order: &[usize],
    ) -> Result<(), ConfigError> {
        match &mut self.columns[column] {
            ColumnArbiter::Lrg(a) => {
                *a = MatrixArbiter::with_order(order);
                Ok(())
            }
            ColumnArbiter::RoundRobin(_) => Err(ConfigError::SeedingRequiresLrg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_layout_matches_paper_geometry() {
        // 64-radix 4-layer 4-channel: local switch is 16 x 28.
        let local = LocalSwitch::new(LocalArbiterKind::Lrg, 16, 12, 4);
        assert_eq!(local.column_count(), 28);
        assert_eq!(local.intermediate_column(15), 15);
        assert_eq!(local.channel_column(0, 0), 16);
        assert_eq!(local.channel_column(2, 3), 27);
    }

    #[test]
    fn columns_arbitrate_independently() {
        let mut local = LocalSwitch::new(LocalArbiterKind::Lrg, 4, 3, 1);
        assert_eq!(local.grant(0, &[1, 2]), Some(1));
        local.update(0, 1);
        // Column 0's update must not affect column 1.
        assert_eq!(local.grant(0, &[1, 2]), Some(2));
        assert_eq!(local.grant(1, &[1, 2]), Some(1));
    }

    #[test]
    fn grant_mask_matches_grant_for_both_kinds() {
        for kind in [LocalArbiterKind::Lrg, LocalArbiterKind::RoundRobin] {
            let local = LocalSwitch::new(kind, 4, 2, 1);
            let mut mask = BitSet::new(4);
            mask.insert(1);
            mask.insert(3);
            for column in 0..local.column_count() {
                assert_eq!(
                    local.grant_mask(column, &mask),
                    local.grant(column, &[1, 3]),
                    "{kind:?} column {column}"
                );
            }
        }
    }

    #[test]
    fn grant_words_matches_grant_mask_for_both_kinds() {
        for kind in [LocalArbiterKind::Lrg, LocalArbiterKind::RoundRobin] {
            let mut local = LocalSwitch::new(kind, 16, 12, 4);
            let mut state = 0xD00D_F00Du64;
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let word = (state >> 24) & 0xFFFF; // 16 local inputs
                let mut mask = BitSet::new(16);
                for bit in 0..16 {
                    if word >> bit & 1 == 1 {
                        mask.insert(bit);
                    }
                }
                for column in 0..local.column_count() {
                    let expected = local.grant_mask(column, &mask);
                    assert_eq!(
                        local.grant_words::<1>(column, &[word]),
                        expected,
                        "{kind:?}"
                    );
                    if let Some(winner) = expected {
                        local.update(column, winner);
                    }
                }
            }
        }
    }

    #[test]
    fn round_robin_flavour_works() {
        let mut local = LocalSwitch::new(LocalArbiterKind::RoundRobin, 4, 0, 1);
        assert_eq!(local.grant(2, &[0, 3]), Some(0));
        local.update(2, 0);
        assert_eq!(local.grant(2, &[0, 3]), Some(3));
    }

    #[test]
    fn seeding_round_robin_is_a_typed_error() {
        let mut local = LocalSwitch::new(LocalArbiterKind::RoundRobin, 4, 0, 1);
        assert_eq!(
            local.seed_column(0, &[3, 2, 1, 0]),
            Err(ConfigError::SeedingRequiresLrg)
        );
        let mut local = LocalSwitch::new(LocalArbiterKind::Lrg, 4, 0, 1);
        assert_eq!(local.seed_column(0, &[3, 2, 1, 0]), Ok(()));
    }
}
