//! The Hi-Rise hierarchical 3D switch (§III).
//!
//! For a radix-`N` switch over `L` layers, each layer hosts `N/L` inputs
//! and `N/L` outputs, a *local switch* (`N/L x (N/L + c(L-1))`) and an
//! *inter-layer switch* of `N/L` sub-blocks (`(c(L-1)+1) x 1` each),
//! joined by `c` dedicated layer-to-layer channels per ordered layer
//! pair.
//!
//! A connection from input `i` to output `o` arbitrates in a single
//! cycle with two phases (Fig. 8's two-phase clocking):
//!
//! 1. **Local phase** — `i` competes with the other inputs of its layer
//!    for the local resource: the intermediate output feeding `o` when
//!    `o` is on the same layer, otherwise an L2LC towards `o`'s layer.
//! 2. **Inter-layer phase** — the phase-1 winners (one per L2LC plus the
//!    local intermediate) compete at `o`'s sub-block under the configured
//!    scheme (L-2-L LRG, WLRG, or CLRG).
//!
//! The final winner holds the output, its local column and its L2LC until
//! [`released`](crate::Fabric::release). Local-switch priorities update
//! only on a final win (back-propagation, §III-B1), which guarantees
//! every persistent requestor eventually rises to the top and is served.

mod channel;
mod interlayer;
mod local;

use crate::bits::BitSet;
use crate::config::HiRiseConfig;
use crate::error::ConfigError;
use crate::fabric::{Fabric, Grant, Request};
use crate::fault::{Fault, FaultLog, FaultState, TsvMap};
use crate::ids::{ChannelId, InputId, LayerId, OutputId};
use crate::kernel::{ArbiterKernel, KernelSel};
use channel::ChannelTable;
use interlayer::{Contender, SubBlock};
use local::LocalSwitch;

/// The local resource a connection holds on its source layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PathResource {
    /// Same-layer connection through the dedicated intermediate output.
    Intermediate,
    /// Inter-layer connection through channel `k` from `src` to `dst`.
    Channel { src: usize, dst: usize, k: usize },
}

/// An established connection's footprint.
#[derive(Clone, Copy, Debug)]
struct Path {
    output: OutputId,
    resource: PathResource,
}

/// A request that survived admission and was binned to a local column.
#[derive(Clone, Copy, Debug)]
struct ColumnRequest {
    local_input: usize,
    input: InputId,
    output: OutputId,
}

/// A phase-1 winner headed to an inter-layer sub-block.
#[derive(Clone, Copy, Debug)]
struct Phase1Winner {
    layer: usize,
    column: usize,
    request: ColumnRequest,
    weight: u32,
    resource: PathResource,
}

/// What kind of column a local-switch column index refers to.
#[derive(Clone, Copy, Debug)]
enum ColumnKind {
    Intermediate,
    Channel { compressed_dst: usize, k: usize },
}

/// Precomputed index-decode tables for the word kernel. The admission
/// loop runs per request per cycle; these tables replace the `/ % `
/// arithmetic of the `HiRiseConfig` helpers (runtime-divisor divisions)
/// with single loads.
#[derive(Clone, Debug)]
struct Decode {
    /// `(layer, local index)` per global input.
    input: Vec<(u16, u16)>,
    /// `(layer, local index)` per global output.
    output: Vec<(u16, u16)>,
    /// Flat column index (`layer * cols + column`) -> `(layer, column)`.
    col: Vec<(u16, u16)>,
    /// Channel allocation policy, hoisted out of the request loop.
    allocation: crate::config::ChannelAllocation,
    /// Statically-bound channel per input (input-binned policy).
    in_k: Vec<u16>,
    /// Statically-bound channel per output (output-binned policy).
    out_k: Vec<u16>,
}

impl Decode {
    fn new(cfg: &HiRiseConfig) -> Self {
        let p = cfg.ports_per_layer();
        let c = cfg.channel_multiplicity();
        let cols = p + cfg.channels_per_layer();
        let split = |index: usize| ((index / p) as u16, (index % p) as u16);
        Self {
            input: (0..cfg.radix()).map(split).collect(),
            output: (0..cfg.radix()).map(split).collect(),
            col: (0..cfg.layers() * cols)
                .map(|flat| ((flat / cols) as u16, (flat % cols) as u16))
                .collect(),
            allocation: cfg.allocation(),
            in_k: (0..cfg.radix()).map(|i| ((i % p) % c) as u16).collect(),
            out_k: (0..cfg.radix()).map(|o| ((o % p) % c) as u16).collect(),
        }
    }
}

/// Persistent per-cycle scratch for the arbitration hot path: flat
/// clear-and-reuse arenas replacing the `Vec<Vec<...>>` structures the
/// original implementation allocated on every call. After a few warmup
/// cycles every inner vector has reached its steady-state capacity and
/// an arbitration cycle performs zero heap allocations.
///
/// `Default` is allocation-free (empty vectors, zero-capacity mask), so
/// [`std::mem::take`] can move the scratch out of the switch for the
/// duration of a cycle without touching the allocator.
#[derive(Clone, Debug, Default)]
struct ArbScratch {
    /// Per-input duplicate-request filter.
    seen: Vec<bool>,
    /// `layer * columns + column` -> statically-binned admitted requests.
    column_reqs: Vec<Vec<ColumnRequest>>,
    /// `src * layers + dst` -> priority-based allocation pools.
    pools: Vec<Vec<ColumnRequest>>,
    /// Phase-1 winners of the current cycle.
    winners: Vec<Phase1Winner>,
    /// Local-input request mask handed to the column arbiters.
    local_mask: BitSet,
    /// Per final output: indices into `winners`.
    per_output: Vec<Vec<usize>>,
    /// Outputs with contenders, in first-seen order.
    touched_outputs: Vec<usize>,
    /// Contender list for one sub-block at a time.
    contenders: Vec<Contender>,
    /// Word-kernel arena: `(layer * columns + column) * W` request words
    /// of local-input bits (the masked-word form of `column_reqs`).
    col_masks: Vec<u64>,
    /// Word-kernel arena: bitmap over flat column indices with at least
    /// one admitted request.
    touched_cols: Vec<u64>,
    /// Word-kernel arena: `(src * layers + dst) * W` request words (the
    /// masked-word form of `pools`).
    pool_masks: Vec<u64>,
    /// Word-kernel arena: the output each admitted input requested this
    /// cycle, indexed by global input (valid only for set mask bits).
    dest: Vec<u32>,
    /// Word-kernel arena: bitmap over outputs, used to detect whether
    /// any two phase-1 winners share a final output this cycle.
    out_bits: Vec<u64>,
}

impl ArbScratch {
    fn new(cfg: &HiRiseConfig) -> Self {
        let l = cfg.layers();
        let cols = cfg.ports_per_layer() + cfg.channels_per_layer();
        // Word arenas are sized for the word kernel's mask width; the
        // scalar kernel simply never touches them (a few hundred bytes).
        let w = cfg.ports_per_layer().div_ceil(64).max(1);
        Self {
            seen: vec![false; cfg.radix()],
            column_reqs: vec![Vec::new(); l * cols],
            pools: vec![Vec::new(); l * l],
            winners: Vec::new(),
            local_mask: BitSet::new(cfg.ports_per_layer()),
            per_output: vec![Vec::new(); cfg.radix()],
            touched_outputs: Vec::new(),
            contenders: Vec::new(),
            col_masks: vec![0; l * cols * w],
            touched_cols: vec![0; (l * cols).div_ceil(64)],
            pool_masks: vec![0; l * l * w],
            dest: vec![0; cfg.radix()],
            out_bits: vec![0; cfg.radix().div_ceil(64)],
        }
    }

    /// Empties the arenas both kernels share while keeping capacity.
    ///
    /// `col_masks`/`touched_cols`/`pool_masks` are clear-on-consume:
    /// the word-kernel loops zero every bit they set within the same
    /// cycle, so no per-cycle sweep is needed here. The same holds for
    /// `per_output` (drained by the phase-2 loop) and the scalar bins
    /// (see [`reset_scalar_bins`](Self::reset_scalar_bins)). `dest`
    /// holds stale values by design (read only for set mask bits).
    fn reset(&mut self) {
        self.seen.fill(false);
        self.winners.clear();
        self.touched_outputs.clear();
        self.contenders.clear();
    }

    /// Empties the scalar kernel's binning arenas. Separate from
    /// [`reset`](Self::reset) because sweeping these ~`L * columns` Vec
    /// headers every cycle is a measurable fraction of an arbitration
    /// when the word kernel (which never touches them) is active.
    fn reset_scalar_bins(&mut self) {
        for list in &mut self.column_reqs {
            list.clear();
        }
        for pool in &mut self.pools {
            pool.clear();
        }
    }
}

/// The Hi-Rise hierarchical 3D switch.
///
/// See the [module documentation](self) for the architecture and the
/// [crate documentation](crate) for a usage example.
#[derive(Clone, Debug)]
pub struct HiRiseSwitch {
    cfg: HiRiseConfig,
    locals: Vec<LocalSwitch>,
    subblocks: Vec<SubBlock>,
    channels: ChannelTable,
    connections: Vec<Option<Path>>,
    output_owner: Vec<Option<InputId>>,
    /// Bitmap mirror of `connections.is_some()`, so the per-request
    /// admission check is one bit test instead of an `Option<Path>`
    /// load.
    connected: Vec<u64>,
    /// Bitmap mirror of `output_owner.is_some()` for the phase-2 skip.
    owned: Vec<u64>,
    column_kinds: Vec<ColumnKind>,
    /// Grants that travelled over each L2LC (flat channel index).
    channel_grants: Vec<u64>,
    /// Grants that used the local intermediate path, per layer.
    local_grants: Vec<u64>,
    /// Per-cycle arbitration scratch, reused across calls.
    scratch: ArbScratch,
    /// Resolved arbitration kernel (see [`ArbiterKernel`]).
    kernel: KernelSel,
    /// Index-decode tables for the word kernel's admission loop.
    decode: Decode,
    /// Fault-injection state; `None` until faults are enabled.
    faults: Option<FaultState>,
}

impl HiRiseSwitch {
    /// Builds a switch for `cfg` with the default (word-parallel)
    /// arbitration kernel.
    pub fn new(cfg: &HiRiseConfig) -> Self {
        Self::with_kernel(cfg, ArbiterKernel::default())
    }

    /// Builds a switch for `cfg` with an explicit arbitration kernel.
    ///
    /// The word kernel carries the request→bin→priority-pool→grant
    /// pipeline as masked `u64` word operations, monomorphized over the
    /// local-switch mask width at construction (`N/L` bits; radix
    /// 16/32/64 over 4 layers all resolve to one word). Geometries the
    /// word kernels do not cover — or sub-blocks wider than 64 slots —
    /// fall back to the scalar pipeline. Both kernels produce
    /// bit-identical grant sequences.
    pub fn with_kernel(cfg: &HiRiseConfig, kernel: ArbiterKernel) -> Self {
        let p = cfg.ports_per_layer();
        let l = cfg.layers();
        let c = cfg.channel_multiplicity();
        let locals = (0..l)
            .map(|_| LocalSwitch::new(cfg.local_arbiter(), p, c * (l - 1), c))
            .collect();
        let subblocks = (0..cfg.radix())
            .map(|_| SubBlock::new(cfg.subblock_inputs(), cfg.radix(), cfg.scheme()))
            .collect();
        let mut column_kinds = Vec::with_capacity(p + c * (l - 1));
        for _ in 0..p {
            column_kinds.push(ColumnKind::Intermediate);
        }
        for compressed_dst in 0..l - 1 {
            for k in 0..c {
                column_kinds.push(ColumnKind::Channel { compressed_dst, k });
            }
        }
        // The sub-block word path carries its candidate-slot set in one
        // u64, so a sub-block wider than 64 slots forces the scalar
        // pipeline regardless of the local mask width.
        let sel = if cfg.subblock_inputs() <= 64 {
            KernelSel::resolve(kernel, p)
        } else {
            KernelSel::Scalar
        };
        Self {
            cfg: cfg.clone(),
            locals,
            subblocks,
            channels: ChannelTable::new(l, c),
            connections: vec![None; cfg.radix()],
            output_owner: vec![None; cfg.radix()],
            connected: vec![0; cfg.radix().div_ceil(64)],
            owned: vec![0; cfg.radix().div_ceil(64)],
            column_kinds,
            channel_grants: vec![0; l * (l - 1) * c],
            local_grants: vec![0; l],
            scratch: ArbScratch::new(cfg),
            kernel: sel,
            decode: Decode::new(cfg),
            faults: None,
        }
    }

    /// The switch's configuration.
    pub fn config(&self) -> &HiRiseConfig {
        &self.cfg
    }

    /// The arbitration kernel actually in effect (word fallbacks report
    /// as scalar).
    pub fn kernel(&self) -> ArbiterKernel {
        self.kernel.effective()
    }

    /// Whether the L2LC `k` from `src` to `dst` is currently held by a
    /// connection.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `src == dst` or an index is out of
    /// range.
    pub fn channel_busy(&self, src: LayerId, dst: LayerId, k: ChannelId) -> bool {
        self.channels.is_busy(src.index(), dst.index(), k.index())
    }

    /// The sub-block slot polled by channel `k` arriving from `src` at
    /// any sub-block on `dst` (Fig. 7's cross-point ordering).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or an index is out of range.
    pub fn subblock_slot(&self, src: LayerId, k: ChannelId, dst: LayerId) -> usize {
        assert!(src != dst, "no channel from a layer to itself");
        assert!(src.index() < self.cfg.layers() && dst.index() < self.cfg.layers());
        assert!(k.index() < self.cfg.channel_multiplicity());
        let compressed_src = if src.index() < dst.index() {
            src.index()
        } else {
            src.index() - 1
        };
        compressed_src * self.cfg.channel_multiplicity() + k.index()
    }

    /// The sub-block slot of the local intermediate output (the last
    /// slot).
    pub fn local_subblock_slot(&self) -> usize {
        self.cfg.subblock_inputs() - 1
    }

    /// The CLRG priority class of `input` at `output`'s sub-block, or
    /// `None` when the switch is not running CLRG.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn clrg_class(&self, output: OutputId, input: InputId) -> Option<u8> {
        assert!(input.index() < self.cfg.radix(), "input out of range");
        self.subblocks[output.index()].clrg_class(input)
    }

    /// Seeds the LRG order of the local-switch column feeding channel `k`
    /// from `src` towards `dst`, highest-priority local input first.
    /// For reproducing the paper's worked examples (Figs. 4 and 5).
    ///
    /// # Errors
    ///
    /// [`ConfigError::SeedingRequiresLrg`] when the switch was built
    /// with a non-LRG local arbiter — priority seeding has no meaning
    /// for round-robin columns, so the combination is rejected before
    /// any simulation starts instead of panicking mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, an index is out of range, or `order` is
    /// not a permutation of `0..N/L`.
    pub fn seed_local_channel_priority(
        &mut self,
        src: LayerId,
        dst: LayerId,
        k: ChannelId,
        order: &[usize],
    ) -> Result<(), ConfigError> {
        assert!(src != dst, "no channel from a layer to itself");
        let compressed_dst = if dst.index() < src.index() {
            dst.index()
        } else {
            dst.index() - 1
        };
        let column = self.locals[src.index()].channel_column(compressed_dst, k.index());
        self.locals[src.index()].seed_column(column, order)
    }

    /// Seeds the LRG order of the local-switch column feeding the
    /// intermediate output for `output` (which selects the layer too).
    ///
    /// # Errors
    ///
    /// As [`seed_local_channel_priority`](Self::seed_local_channel_priority).
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `order` is not a
    /// permutation of `0..N/L`.
    pub fn seed_local_intermediate_priority(
        &mut self,
        output: OutputId,
        order: &[usize],
    ) -> Result<(), ConfigError> {
        let layer = self.cfg.layer_of_output(output);
        let column =
            self.locals[layer.index()].intermediate_column(self.cfg.local_output_index(output));
        self.locals[layer.index()].seed_column(column, order)
    }

    /// Seeds the slot-level LRG order of `output`'s sub-block, highest
    /// priority first (`order` is a permutation of `0..c(L-1)+1`).
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `order` is not a permutation.
    pub fn seed_subblock_priority(&mut self, output: OutputId, order: &[usize]) {
        self.subblocks[output.index()].seed_priority(order);
    }

    /// Grants that have travelled over L2LC `k` from `src` to `dst`
    /// since construction — the raw material of an L2LC-utilisation
    /// analysis (the paper's §VI-B bottleneck discussion).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or an index is out of range.
    pub fn channel_grant_count(&self, src: LayerId, dst: LayerId, k: ChannelId) -> u64 {
        assert!(src != dst, "no channel from a layer to itself");
        assert!(src.index() < self.cfg.layers() && dst.index() < self.cfg.layers());
        assert!(k.index() < self.cfg.channel_multiplicity());
        let compressed_dst = if dst.index() < src.index() {
            dst.index()
        } else {
            dst.index() - 1
        };
        let c = self.cfg.channel_multiplicity();
        let l = self.cfg.layers();
        self.channel_grants[(src.index() * (l - 1) + compressed_dst) * c + k.index()]
    }

    /// Grants that used `layer`'s local intermediate path (same-layer
    /// connections) since construction.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn local_grant_count(&self, layer: LayerId) -> u64 {
        self.local_grants[layer.index()]
    }

    /// Fraction of all grants so far that crossed layers (used an
    /// L2LC). Uniform random traffic over `L` layers approaches
    /// `(L-1)/L`.
    pub fn inter_layer_fraction(&self) -> f64 {
        let crossed: u64 = self.channel_grants.iter().sum();
        let local: u64 = self.local_grants.iter().sum();
        if crossed + local == 0 {
            0.0
        } else {
            crossed as f64 / (crossed + local) as f64
        }
    }

    /// Enables signal-level validation: every inter-layer arbitration
    /// decision is re-derived through the circuit model of
    /// [`crate::xpoint`] (the Fig. 7 priority-line bus) and asserted to
    /// agree with the behavioural arbiter. A debugging and verification
    /// aid; it roughly doubles arbitration cost.
    pub fn enable_signal_validation(&mut self) {
        for subblock in &mut self.subblocks {
            subblock.enable_signal_validation();
        }
    }

    fn column_count(&self) -> usize {
        debug_assert_eq!(
            self.locals[0].column_count(),
            self.cfg.ports_per_layer() + self.cfg.channels_per_layer()
        );
        self.cfg.ports_per_layer() + self.cfg.channels_per_layer()
    }

    fn dst_of_compressed(&self, src: usize, compressed_dst: usize) -> usize {
        if compressed_dst < src {
            compressed_dst
        } else {
            compressed_dst + 1
        }
    }

    /// First usable channel from `src` to `dst`, scanning forward from
    /// the statically-bound channel `k0` (graceful degradation: a dead
    /// L2LC re-bins its traffic onto the next live channel of the same
    /// layer pair). `None` when every channel of the pair is down.
    fn usable_channel(&self, src: usize, dst: usize, k0: usize) -> Option<usize> {
        let Some(faults) = &self.faults else {
            return Some(k0);
        };
        let c = self.cfg.channel_multiplicity();
        (0..c)
            .map(|d| (k0 + d) % c)
            .find(|&k| !faults.tsv_down(self.channels.index(src, dst, k)))
    }

    /// Phase 1: admit requests into local columns (or priority pools) and
    /// elect one winner per column. Winners accumulate in
    /// `scratch.winners`; all working memory comes from `scratch`.
    fn phase1(&self, requests: &[Request], scratch: &mut ArbScratch) {
        let l = self.cfg.layers();
        let c = self.cfg.channel_multiplicity();
        let cols = self.column_count();

        for request in requests {
            let input = request.input;
            let output = request.output;
            assert!(
                input.index() < self.cfg.radix(),
                "input {input} out of range"
            );
            assert!(
                output.index() < self.cfg.radix(),
                "output {output} out of range"
            );
            if scratch.seen[input.index()]
                || self.connected[input.index() / 64] >> (input.index() % 64) & 1 == 1
            {
                continue;
            }
            if let Some(faults) = &self.faults {
                if faults.input_down(input.index())
                    || faults.xpoint_down(input.index(), output.index())
                {
                    continue; // dead port or crosspoint: request is masked out
                }
            }
            scratch.seen[input.index()] = true;
            let src = self.cfg.layer_of_input(input).index();
            let dst = self.cfg.layer_of_output(output).index();
            let col_req = ColumnRequest {
                local_input: self.cfg.local_input_index(input),
                input,
                output,
            };
            if src == dst {
                let column =
                    self.locals[src].intermediate_column(self.cfg.local_output_index(output));
                scratch.column_reqs[src * cols + column].push(col_req);
            } else {
                match self.cfg.bound_channel(input, output) {
                    Some(k) => {
                        // Graceful degradation: if the bound L2LC is dead,
                        // re-bin onto the next live channel of the pair.
                        let Some(k) = self.usable_channel(src, dst, k.index()) else {
                            continue; // every channel of the pair is down
                        };
                        if self.channels.is_busy(src, dst, k) {
                            continue; // channel held by a transfer; retry later
                        }
                        let compressed_dst = if dst < src { dst } else { dst - 1 };
                        let column = self.locals[src].channel_column(compressed_dst, k);
                        scratch.column_reqs[src * cols + column].push(col_req);
                    }
                    None => scratch.pools[src * l + dst].push(col_req),
                }
            }
        }

        // Statically-binned columns arbitrate in parallel.
        for layer in 0..l {
            for column in 0..cols {
                let list = &scratch.column_reqs[layer * cols + column];
                if list.is_empty() {
                    continue;
                }
                scratch.local_mask.clear();
                for request in list {
                    scratch.local_mask.insert(request.local_input);
                }
                let winner_local = self.locals[layer]
                    .grant_mask(column, &scratch.local_mask)
                    .expect("non-empty request set");
                let request = *list
                    .iter()
                    .find(|r| r.local_input == winner_local)
                    .expect("winner comes from the request list");
                let resource = match self.column_kinds[column] {
                    ColumnKind::Intermediate => PathResource::Intermediate,
                    ColumnKind::Channel { compressed_dst, k } => PathResource::Channel {
                        src: layer,
                        dst: self.dst_of_compressed(layer, compressed_dst),
                        k,
                    },
                };
                scratch.winners.push(Phase1Winner {
                    layer,
                    column,
                    request,
                    weight: list.len() as u32,
                    resource,
                });
            }
        }

        // Priority-based allocation serializes over the channels of each
        // layer pair: the highest-priority remaining requestor takes the
        // next free channel (§III-A).
        for src in 0..l {
            for dst in 0..l {
                if src == dst {
                    continue;
                }
                let pool = &mut scratch.pools[src * l + dst];
                if pool.is_empty() {
                    continue;
                }
                let compressed_dst = if dst < src { dst } else { dst - 1 };
                for k in 0..c {
                    if pool.is_empty() {
                        break;
                    }
                    if self.channels.is_busy(src, dst, k) {
                        continue;
                    }
                    if let Some(faults) = &self.faults {
                        if faults.tsv_down(self.channels.index(src, dst, k)) {
                            continue; // dead L2LC: skip it, later channels absorb
                        }
                    }
                    let column = self.locals[src].channel_column(compressed_dst, k);
                    scratch.local_mask.clear();
                    for request in pool.iter() {
                        scratch.local_mask.insert(request.local_input);
                    }
                    let winner_local = self.locals[src]
                        .grant_mask(column, &scratch.local_mask)
                        .expect("non-empty pool");
                    let pos = pool
                        .iter()
                        .position(|r| r.local_input == winner_local)
                        .expect("winner comes from the pool");
                    let weight = pool.len() as u32;
                    let request = pool.swap_remove(pos);
                    scratch.winners.push(Phase1Winner {
                        layer: src,
                        column,
                        request,
                        weight,
                        resource: PathResource::Channel { src, dst, k },
                    });
                }
            }
        }
    }

    /// Word-parallel phase 1: the same admission → bin → arbitrate
    /// pipeline as [`phase1`](Self::phase1), but carrying every request
    /// set as `W` masked `u64` words of local-input bits. Binning ORs a
    /// bit into the column's mask, column election runs
    /// [`LocalSwitch::grant_words`] directly on the words, and winner
    /// weight is a popcount. Columns are visited in ascending flat
    /// `(layer, column)` order — exactly the scalar loop order — so the
    /// LRG state and the winner sequence evolve bit-identically.
    fn phase1_words<const W: usize>(&self, requests: &[Request], scratch: &mut ArbScratch) {
        debug_assert_eq!(W, self.cfg.ports_per_layer().div_ceil(64).max(1));
        let l = self.cfg.layers();
        let c = self.cfg.channel_multiplicity();
        let p = self.cfg.ports_per_layer();
        let cols = self.column_count();

        for request in requests {
            let input = request.input;
            let output = request.output;
            assert!(
                input.index() < self.cfg.radix(),
                "input {input} out of range"
            );
            assert!(
                output.index() < self.cfg.radix(),
                "output {output} out of range"
            );
            if scratch.seen[input.index()]
                || self.connected[input.index() / 64] >> (input.index() % 64) & 1 == 1
            {
                continue;
            }
            if let Some(faults) = &self.faults {
                if faults.input_down(input.index())
                    || faults.xpoint_down(input.index(), output.index())
                {
                    continue; // dead port or crosspoint: request is masked out
                }
            }
            scratch.seen[input.index()] = true;
            let (src, local) = self.decode.input[input.index()];
            let (src, local) = (src as usize, local as usize);
            let (dst, out_local) = self.decode.output[output.index()];
            let (dst, out_local) = (dst as usize, out_local as usize);
            scratch.dest[input.index()] = output.index() as u32;
            if src == dst {
                // An intermediate column is 1:1 with its output, so every
                // request binned here contends for `output` alone. If the
                // output is still mid-transfer the whole column loses in
                // phase 2 with no state updates, so dropping the request
                // now is exact — and it skips the column election for the
                // common head-of-line-blocked case, where a stalled VC
                // re-requests the same busy output every cycle.
                if self.owned[output.index() / 64] >> (output.index() % 64) & 1 == 1 {
                    continue;
                }
                // Intermediate column index == the output's local index.
                let flat = src * cols + out_local;
                scratch.col_masks[flat * W + local / 64] |= 1u64 << (local % 64);
                scratch.touched_cols[flat / 64] |= 1u64 << (flat % 64);
            } else {
                use crate::config::ChannelAllocation;
                let bound = match self.decode.allocation {
                    ChannelAllocation::InputBinned => {
                        Some(self.decode.in_k[input.index()] as usize)
                    }
                    ChannelAllocation::OutputBinned => {
                        Some(self.decode.out_k[output.index()] as usize)
                    }
                    ChannelAllocation::PriorityBased => None,
                };
                match bound {
                    Some(k) => {
                        let Some(k) = self.usable_channel(src, dst, k) else {
                            continue; // every channel of the pair is down
                        };
                        if self.channels.is_busy(src, dst, k) {
                            continue; // channel held by a transfer; retry later
                        }
                        let compressed_dst = if dst < src { dst } else { dst - 1 };
                        // channel_column(compressed_dst, k) without the call.
                        let flat = src * cols + p + compressed_dst * c + k;
                        scratch.col_masks[flat * W + local / 64] |= 1u64 << (local % 64);
                        scratch.touched_cols[flat / 64] |= 1u64 << (flat % 64);
                    }
                    None => {
                        let pool = src * l + dst;
                        scratch.pool_masks[pool * W + local / 64] |= 1u64 << (local % 64);
                    }
                }
            }
        }

        // Statically-binned columns: ascending flat index = the scalar
        // path's (layer-major, column-minor) order. Masks are
        // clear-on-consume so the arenas stay zero between cycles.
        for word_index in 0..scratch.touched_cols.len() {
            let mut bits = scratch.touched_cols[word_index];
            scratch.touched_cols[word_index] = 0;
            while bits != 0 {
                let flat = word_index * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (layer, column) = self.decode.col[flat];
                let (layer, column) = (layer as usize, column as usize);
                let base = flat * W;
                let mask_words = &mut scratch.col_masks[base..base + W];
                let mask: [u64; W] = (&*mask_words).try_into().expect("exact W-word slice");
                mask_words.fill(0);
                let weight: u32 = mask.iter().map(|w| w.count_ones()).sum();
                let winner_local = self.locals[layer]
                    .grant_words::<W>(column, &mask)
                    .expect("non-empty request set");
                let input = InputId::new(layer * p + winner_local);
                let output = OutputId::new(scratch.dest[input.index()] as usize);
                if self.owned[output.index() / 64] >> (output.index() % 64) & 1 == 1 {
                    // The elected winner's output is mid-transfer, so it
                    // is a guaranteed phase-2 loser: the whole per-output
                    // group is dropped there with no state updates
                    // (election itself is read-only). Dropping the winner
                    // here skips the grouping work. Only channel columns
                    // reach this — intermediate columns to owned outputs
                    // were filtered at admission.
                    continue;
                }
                let resource = match self.column_kinds[column] {
                    ColumnKind::Intermediate => PathResource::Intermediate,
                    ColumnKind::Channel { compressed_dst, k } => PathResource::Channel {
                        src: layer,
                        dst: self.dst_of_compressed(layer, compressed_dst),
                        k,
                    },
                };
                scratch.winners.push(Phase1Winner {
                    layer,
                    column,
                    request: ColumnRequest {
                        local_input: winner_local,
                        input,
                        output,
                    },
                    weight,
                    resource,
                });
            }
        }

        // Priority-based pools, serialized over each pair's channels in
        // the scalar path's (src, dst, k) order. The winner's bit is
        // cleared from the pool between channels; the mask is zeroed
        // when the pair is done (unserved requestors simply lose).
        for src in 0..l {
            for dst in 0..l {
                if src == dst {
                    continue;
                }
                let base = (src * l + dst) * W;
                if scratch.pool_masks[base..base + W].iter().all(|&w| w == 0) {
                    continue;
                }
                let compressed_dst = if dst < src { dst } else { dst - 1 };
                for k in 0..c {
                    let mask: [u64; W] = (&scratch.pool_masks[base..base + W])
                        .try_into()
                        .expect("exact W-word slice");
                    let weight: u32 = mask.iter().map(|w| w.count_ones()).sum();
                    if weight == 0 {
                        break;
                    }
                    if self.channels.is_busy(src, dst, k) {
                        continue;
                    }
                    if let Some(faults) = &self.faults {
                        if faults.tsv_down(self.channels.index(src, dst, k)) {
                            continue; // dead L2LC: skip it, later channels absorb
                        }
                    }
                    let column = self.locals[src].channel_column(compressed_dst, k);
                    let winner_local = self.locals[src]
                        .grant_words::<W>(column, &mask)
                        .expect("non-empty pool");
                    scratch.pool_masks[base + winner_local / 64] &= !(1u64 << (winner_local % 64));
                    let input = InputId::new(src * p + winner_local);
                    let output = OutputId::new(scratch.dest[input.index()] as usize);
                    if self.owned[output.index() / 64] >> (output.index() % 64) & 1 == 1 {
                        // Guaranteed phase-2 loser (see the binned-column
                        // loop above): the winner still leaves the pool —
                        // it lost its shot this cycle either way — but is
                        // not carried into phase 2.
                        continue;
                    }
                    scratch.winners.push(Phase1Winner {
                        layer: src,
                        column,
                        request: ColumnRequest {
                            local_input: winner_local,
                            input,
                            output,
                        },
                        weight,
                        resource: PathResource::Channel { src, dst, k },
                    });
                }
                scratch.pool_masks[base..base + W].fill(0);
            }
        }
    }

    /// The sub-block contender a phase-1 winner presents at its output.
    fn contender_of(&self, w: &Phase1Winner) -> Contender {
        let slot = match w.resource {
            PathResource::Intermediate => self.local_subblock_slot(),
            PathResource::Channel { src, dst, k } => {
                self.subblock_slot(LayerId::new(src), ChannelId::new(k), LayerId::new(dst))
            }
        };
        Contender {
            slot,
            input: w.request.input,
            weight: w.weight,
        }
    }

    /// Phase-2 commit for the winner of `output`: back-propagate the
    /// local priority update, seize the path resources, and record the
    /// connection.
    fn commit_winner(&mut self, winner: &Phase1Winner, output: usize, grants: &mut Vec<Grant>) {
        self.locals[winner.layer].update(winner.column, winner.request.local_input);
        match winner.resource {
            PathResource::Channel { src, dst, k } => {
                self.channels.acquire(src, dst, k, winner.request.input);
                let compressed_dst = if dst < src { dst } else { dst - 1 };
                let c = self.cfg.channel_multiplicity();
                let l = self.cfg.layers();
                self.channel_grants[(src * (l - 1) + compressed_dst) * c + k] += 1;
            }
            PathResource::Intermediate => {
                self.local_grants[winner.layer] += 1;
            }
        }
        let input = winner.request.input;
        self.connections[input.index()] = Some(Path {
            output: OutputId::new(output),
            resource: winner.resource,
        });
        self.connected[input.index() / 64] |= 1u64 << (input.index() % 64);
        self.output_owner[output] = Some(input);
        self.owned[output / 64] |= 1u64 << (output % 64);
        grants.push(Grant {
            input,
            output: OutputId::new(output),
        });
    }
}

impl Fabric for HiRiseSwitch {
    fn radix(&self) -> usize {
        self.cfg.radix()
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.arbitrate_into(requests, &mut grants);
        grants
    }

    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        grants.clear();
        if let Some(faults) = &mut self.faults {
            faults.advance();
        }
        // Detach the scratch arenas so phase 1 and 2 can borrow `self`
        // freely; reattached below.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset();
        match self.kernel {
            KernelSel::Scalar => {
                scratch.reset_scalar_bins();
                self.phase1(requests, &mut scratch);
            }
            KernelSel::Word1 => self.phase1_words::<1>(requests, &mut scratch),
            KernelSel::Word2 => self.phase1_words::<2>(requests, &mut scratch),
            KernelSel::Word4 => self.phase1_words::<4>(requests, &mut scratch),
        }

        // Phase 2. In the word kernel, phase 1 never emits a winner for
        // an owned output, and on most cycles no two winners share a
        // final output either — every sub-block sees exactly one
        // contender. Detect that with one bitmap pass and, when it
        // holds, skip the per-output grouping entirely: processing
        // winners in emission order is then identical to the grouped
        // path's first-seen output order, so the state evolution stays
        // bit-for-bit the same (the twin tests pin this).
        let mut collision = false;
        if self.kernel != KernelSel::Scalar {
            for winner in &scratch.winners {
                let output = winner.request.output.index();
                let word = &mut scratch.out_bits[output / 64];
                collision |= *word >> (output % 64) & 1 == 1;
                *word |= 1u64 << (output % 64);
            }
            for word in &mut scratch.out_bits {
                *word = 0;
            }
        }

        if self.kernel != KernelSel::Scalar && !collision {
            for index in 0..scratch.winners.len() {
                let winner = scratch.winners[index];
                let output = winner.request.output.index();
                let contender = self.contender_of(&winner);
                let winner_pos = self.subblocks[output]
                    .arbitrate_word(std::slice::from_ref(&contender))
                    .expect("non-empty contender set");
                debug_assert_eq!(winner_pos, 0);
                self.commit_winner(&winner, output, grants);
            }
            self.scratch = scratch;
            return;
        }

        // Grouped path: collect phase-1 winners per final output and run
        // the sub-block arbitration over each contender set.
        for (index, winner) in scratch.winners.iter().enumerate() {
            let output = winner.request.output.index();
            if scratch.per_output[output].is_empty() {
                scratch.touched_outputs.push(output);
            }
            scratch.per_output[output].push(index);
        }

        for touched in 0..scratch.touched_outputs.len() {
            let output = scratch.touched_outputs[touched];
            if self.owned[output / 64] >> (output % 64) & 1 == 1 {
                // Output mid-transfer: contenders lose silently. The
                // group is still drained (`per_output` is
                // clear-on-consume).
                scratch.per_output[output].clear();
                continue;
            }
            scratch.contenders.clear();
            for &index in &scratch.per_output[output] {
                scratch
                    .contenders
                    .push(self.contender_of(&scratch.winners[index]));
            }
            let winner_pos = match self.kernel {
                KernelSel::Scalar => self.subblocks[output].arbitrate(&scratch.contenders),
                _ => self.subblocks[output].arbitrate_word(&scratch.contenders),
            }
            .expect("non-empty contender set");
            let winner = scratch.winners[scratch.per_output[output][winner_pos]];
            scratch.per_output[output].clear();
            self.commit_winner(&winner, output, grants);
        }
        self.scratch = scratch;
    }

    fn release(&mut self, input: InputId) {
        assert!(
            input.index() < self.cfg.radix(),
            "input {input} out of range"
        );
        if let Some(path) = self.connections[input.index()].take() {
            self.connected[input.index() / 64] &= !(1u64 << (input.index() % 64));
            let out = path.output.index();
            self.output_owner[out] = None;
            self.owned[out / 64] &= !(1u64 << (out % 64));
            if let PathResource::Channel { src, dst, k } = path.resource {
                self.channels.release(src, dst, k);
            }
        }
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        self.connections[input.index()].map(|p| p.output)
    }

    fn output_busy(&self, output: OutputId) -> bool {
        self.output_owner[output.index()].is_some()
    }

    /// One fault-site bundle per L2LC: `L * (L-1) * c` bundles, indexed
    /// `(src * (L-1) + compressed_dst) * c + k` like the channel table.
    fn tsv_bundle_count(&self) -> usize {
        let l = self.cfg.layers();
        l * (l - 1) * self.cfg.channel_multiplicity()
    }

    fn enable_faults(&mut self, seed: u64) -> Result<(), ConfigError> {
        let tsvs = Fabric::tsv_bundle_count(self);
        self.faults = Some(FaultState::new(
            self.cfg.radix(),
            tsvs,
            TsvMap::Direct,
            seed,
        ));
        Ok(())
    }

    fn inject_fault(&mut self, fault: Fault) -> Result<(), ConfigError> {
        if self.faults.is_none() {
            Fabric::enable_faults(self, 0)?;
        }
        self.faults
            .as_mut()
            .expect("fault state enabled above")
            .inject(fault)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        self.faults.as_ref().map(|f| f.log())
    }

    fn ticks_when_idle(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultState::has_flaky)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbitrationScheme;
    use crate::config::ChannelAllocation;

    fn req(i: usize, o: usize) -> Request {
        Request::new(InputId::new(i), OutputId::new(o))
    }

    fn one_channel_switch(scheme: ArbitrationScheme) -> HiRiseSwitch {
        let cfg = HiRiseConfig::builder(64, 4).scheme(scheme).build().unwrap();
        HiRiseSwitch::new(&cfg)
    }

    /// Runs one pure arbitration cycle (grant then immediately release),
    /// returning the winning input for `output`.
    fn arbitration_winner(sw: &mut HiRiseSwitch, contenders: &[usize], output: usize) -> usize {
        let requests: Vec<Request> = contenders.iter().map(|&i| req(i, output)).collect();
        let grants = sw.arbitrate(&requests);
        assert_eq!(grants.len(), 1, "exactly one winner for a single output");
        let winner = grants[0].input;
        sw.release(winner);
        winner.index()
    }

    /// Fig. 4: baseline L-2-L LRG allocates disproportionately to the
    /// lone requestor from L2. Inputs {3,7,11,15} on L1 and {20} on L2
    /// all request output 63 on L4; the observed pattern must be
    /// {15, 20, 11, 20, 7, 20, 3, 20, 15, 20, ...}.
    #[test]
    fn fig4_baseline_l2l_lrg_sequence() {
        let mut sw = one_channel_switch(ArbitrationScheme::LayerToLayerLrg);
        // Initial L1 local LRG: 15 > 11 > 7 > 3 (priorities decrease top
        // to bottom in the figure); the rest of the order is immaterial.
        let mut order = vec![15, 11, 7, 3];
        order.extend((0..16).filter(|i| ![15, 11, 7, 3].contains(i)));
        sw.seed_local_channel_priority(LayerId::new(0), LayerId::new(3), ChannelId::new(0), &order)
            .expect("default local arbiter is LRG");
        // Fig. 4 cycle 1: "Input 15 wins as C1,4 has higher priority than
        // C2,4" — the default slot order (C1,4 first) already encodes it.

        let contenders = [3, 7, 11, 15, 20];
        let sequence: Vec<usize> = (0..10)
            .map(|_| arbitration_winner(&mut sw, &contenders, 63))
            .collect();
        assert_eq!(sequence, vec![15, 20, 11, 20, 7, 20, 3, 20, 15, 20]);
    }

    /// Fig. 5: CLRG restores 2D-LRG-like fairness for the same traffic.
    /// Expected pattern: {20, 15, 11, 7, 3, 20, 15, 11, 7, 3, ...}.
    #[test]
    fn fig5_clrg_sequence() {
        let mut sw = one_channel_switch(ArbitrationScheme::class_based());
        let mut order = vec![15, 11, 7, 3];
        order.extend((0..16).filter(|i| ![15, 11, 7, 3].contains(i)));
        sw.seed_local_channel_priority(LayerId::new(0), LayerId::new(3), ChannelId::new(0), &order)
            .expect("default local arbiter is LRG");
        // Fig. 5 cycle 1: "Input 20 wins, as C2,4 has higher LRG priority
        // than C1,4" — seed the sub-block so slot C2,4 outranks C1,4.
        let c14 = sw.subblock_slot(LayerId::new(0), ChannelId::new(0), LayerId::new(3));
        let c24 = sw.subblock_slot(LayerId::new(1), ChannelId::new(0), LayerId::new(3));
        let c34 = sw.subblock_slot(LayerId::new(2), ChannelId::new(0), LayerId::new(3));
        let local = sw.local_subblock_slot();
        sw.seed_subblock_priority(OutputId::new(63), &[c24, c14, c34, local]);

        let contenders = [3, 7, 11, 15, 20];
        let sequence: Vec<usize> = (0..11)
            .map(|_| arbitration_winner(&mut sw, &contenders, 63))
            .collect();
        assert_eq!(sequence, vec![20, 15, 11, 7, 3, 20, 15, 11, 7, 3, 20]);
    }

    /// WLRG also resolves the Fig. 4 bias: the four-requestor channel is
    /// held at high priority for four consecutive wins.
    #[test]
    fn wlrg_balances_adversarial_pattern() {
        let mut sw = one_channel_switch(ArbitrationScheme::WeightedLrg);
        let contenders = [3, 7, 11, 15, 20];
        let mut wins = [0usize; 64];
        for _ in 0..100 {
            let w = arbitration_winner(&mut sw, &contenders, 63);
            wins[w] += 1;
        }
        // Every contender gets 1/5 of the bandwidth.
        for &i in &contenders {
            assert_eq!(wins[i], 20, "input {i} should win exactly 20 of 100");
        }
    }

    /// The baseline's unfairness quantified: input 20 gets ~half the
    /// bandwidth while the four L1 inputs split the other half.
    #[test]
    fn baseline_gives_lone_contender_half_the_slots() {
        let mut sw = one_channel_switch(ArbitrationScheme::LayerToLayerLrg);
        let contenders = [3, 7, 11, 15, 20];
        let mut wins = [0usize; 64];
        for _ in 0..100 {
            let w = arbitration_winner(&mut sw, &contenders, 63);
            wins[w] += 1;
        }
        assert_eq!(wins[20], 50);
        for &i in &[3, 7, 11, 15] {
            assert!(
                (11..=14).contains(&wins[i]),
                "input {i} won {} times",
                wins[i]
            );
        }
    }

    /// CLRG gives each contender an equal share regardless of layer.
    #[test]
    fn clrg_equalizes_adversarial_throughput() {
        let mut sw = one_channel_switch(ArbitrationScheme::class_based());
        let contenders = [3, 7, 11, 15, 20];
        let mut wins = [0usize; 64];
        for _ in 0..100 {
            let w = arbitration_winner(&mut sw, &contenders, 63);
            wins[w] += 1;
        }
        for &i in &contenders {
            assert_eq!(wins[i], 20, "input {i} should win exactly 20 of 100");
        }
    }

    #[test]
    fn same_layer_connection_uses_intermediate_output() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Input 0 and output 5 are both on layer 0.
        let grants = sw.arbitrate(&[req(0, 5)]);
        assert_eq!(grants.len(), 1);
        // No channel should be held.
        for dst in 1..4 {
            for k in 0..4 {
                assert!(!sw.channel_busy(LayerId::new(0), LayerId::new(dst), ChannelId::new(k)));
            }
        }
        sw.release(InputId::new(0));
        assert!(!sw.output_busy(OutputId::new(5)));
    }

    #[test]
    fn inter_layer_connection_holds_its_channel() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Input 0 (layer 0, local 0, bound to channel 0) to output 63.
        let grants = sw.arbitrate(&[req(0, 63)]);
        assert_eq!(grants.len(), 1);
        assert!(sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(0)));
        // Input 4 is also bound to channel 0 towards layer 3: blocked.
        assert!(sw.arbitrate(&[req(4, 62)]).is_empty());
        // Input 1 rides channel 1: free to connect to another output.
        assert_eq!(sw.arbitrate(&[req(1, 62)]).len(), 1);
        sw.release(InputId::new(0));
        assert!(!sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(0)));
        // Channel 0 is free again.
        assert_eq!(sw.arbitrate(&[req(4, 61)]).len(), 1);
    }

    #[test]
    fn one_channel_serializes_inter_layer_transfers() {
        let cfg = HiRiseConfig::builder(64, 4).build().unwrap();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Two layer-0 inputs to two different outputs on layer 3: only
        // one can hold the single L2LC.
        let grants = sw.arbitrate(&[req(0, 60), req(1, 61)]);
        assert_eq!(grants.len(), 1);
        let loser = if grants[0].input == InputId::new(0) {
            1
        } else {
            0
        };
        assert!(sw.arbitrate(&[req(loser, 60 + loser)]).is_empty());
    }

    #[test]
    fn distinct_layers_connect_in_parallel() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        // One input per layer, each to a distinct output on the next
        // layer: all four should connect in a single cycle.
        let requests = [req(0, 16), req(16, 32), req(32, 48), req(48, 0)];
        let grants = sw.arbitrate(&requests);
        assert_eq!(grants.len(), 4);
        assert_eq!(sw.active_connections(), 4);
    }

    #[test]
    fn busy_input_and_duplicate_requests_are_ignored() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        assert_eq!(sw.arbitrate(&[req(0, 63)]).len(), 1);
        assert!(sw.arbitrate(&[req(0, 62)]).is_empty());
        // Duplicate in the same cycle: only the first counts.
        let grants = sw.arbitrate(&[req(1, 40), req(1, 41)]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].output, OutputId::new(40));
    }

    #[test]
    fn output_binned_allocation_respects_output_channel() {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .allocation(ChannelAllocation::OutputBinned)
            .build()
            .unwrap();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Output 63 has local index 15 -> channel 3.
        assert_eq!(sw.arbitrate(&[req(0, 63)]).len(), 1);
        assert!(sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(3)));
    }

    #[test]
    fn priority_based_allocation_uses_all_channels() {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .allocation(ChannelAllocation::PriorityBased)
            .build()
            .unwrap();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Four inputs that input-binning would map to the SAME channel
        // (locals 0, 4, 8, 12 are all k = 0): priority allocation spreads
        // them over the four channels so all four connect at once.
        let grants = sw.arbitrate(&[req(0, 60), req(4, 61), req(8, 62), req(12, 63)]);
        assert_eq!(grants.len(), 4);
    }

    #[test]
    fn input_binned_same_channel_inputs_serialize() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        // Locals 0, 4, 8, 12 all bind to channel 0 towards layer 3.
        let grants = sw.arbitrate(&[req(0, 60), req(4, 61), req(8, 62), req(12, 63)]);
        assert_eq!(grants.len(), 1);
    }

    /// §III-B1: back-propagated local updates guarantee no starvation —
    /// under persistent full contention every requesting input
    /// eventually wins.
    #[test]
    fn no_starvation_under_persistent_contention() {
        for scheme in [
            ArbitrationScheme::LayerToLayerLrg,
            ArbitrationScheme::WeightedLrg,
            ArbitrationScheme::class_based(),
        ] {
            let mut sw = one_channel_switch(scheme);
            let contenders: Vec<usize> = (0..64).collect();
            let mut wins = [0usize; 64];
            for _ in 0..64 * 20 {
                let w = arbitration_winner(&mut sw, &contenders, 63);
                wins[w] += 1;
            }
            for (i, &w) in wins.iter().enumerate() {
                assert!(w > 0, "{}: input {i} starved", scheme.label());
            }
        }
    }

    #[test]
    fn grant_counters_track_paths() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        // One local connection on layer 0, one inter-layer 0 -> 3.
        assert_eq!(sw.arbitrate(&[req(0, 5)]).len(), 1);
        assert_eq!(sw.arbitrate(&[req(1, 63)]).len(), 1);
        assert_eq!(sw.local_grant_count(LayerId::new(0)), 1);
        // Input 1 is bound to channel 1 (local index 1 mod 4).
        assert_eq!(
            sw.channel_grant_count(LayerId::new(0), LayerId::new(3), ChannelId::new(1)),
            1
        );
        assert!((sw.inter_layer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inter_layer_fraction_matches_uniform_expectation() {
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..2_000 {
            let mut requests = Vec::new();
            for i in 0..64 {
                requests.push(Request::new(InputId::new(i), OutputId::new(next() % 64)));
            }
            let grants = sw.arbitrate(&requests);
            for grant in grants {
                sw.release(grant.input);
            }
        }
        // Uniform destinations over 4 layers: 3/4 of grants cross.
        let fraction = sw.inter_layer_fraction();
        assert!((0.70..0.80).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn clrg_class_introspection() {
        let mut sw = one_channel_switch(ArbitrationScheme::class_based());
        assert_eq!(sw.clrg_class(OutputId::new(63), InputId::new(20)), Some(0));
        let _ = arbitration_winner(&mut sw, &[20], 63);
        assert_eq!(sw.clrg_class(OutputId::new(63), InputId::new(20)), Some(1));
        // A different output's sub-block is untouched.
        assert_eq!(sw.clrg_class(OutputId::new(62), InputId::new(20)), Some(0));
    }

    /// Long random runs with per-decision circuit validation: the
    /// behavioural sub-block and the Fig. 7 signal model never diverge.
    #[test]
    fn signal_validation_holds_under_random_traffic() {
        for scheme in [
            ArbitrationScheme::LayerToLayerLrg,
            ArbitrationScheme::WeightedLrg,
            ArbitrationScheme::class_based(),
        ] {
            let cfg = HiRiseConfig::builder(64, 4)
                .channel_multiplicity(4)
                .scheme(scheme)
                .build()
                .unwrap();
            let mut sw = HiRiseSwitch::new(&cfg);
            sw.enable_signal_validation();
            // Deterministic pseudo-random request stream.
            let mut state = 0x12345u64;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for _ in 0..500 {
                let mut requests = Vec::new();
                for i in 0..64 {
                    if next() % 3 != 0 {
                        requests.push(Request::new(InputId::new(i), OutputId::new(next() % 64)));
                    }
                }
                let grants = sw.arbitrate(&requests);
                for grant in grants {
                    if next() % 2 == 0 {
                        sw.release(grant.input);
                    }
                }
                // Periodically release everything to avoid deadlocking
                // the request stream.
                if next() % 7 == 0 {
                    for i in 0..64 {
                        sw.release(InputId::new(i));
                    }
                }
            }
        }
    }

    #[test]
    fn baseline_switch_has_no_clrg_state() {
        let sw = one_channel_switch(ArbitrationScheme::LayerToLayerLrg);
        assert_eq!(sw.clrg_class(OutputId::new(63), InputId::new(20)), None);
    }

    #[test]
    fn seeding_a_round_robin_switch_is_a_typed_error() {
        use crate::config::LocalArbiterKind;
        let cfg = HiRiseConfig::builder(64, 4)
            .local_arbiter(LocalArbiterKind::RoundRobin)
            .build()
            .unwrap();
        let mut sw = HiRiseSwitch::new(&cfg);
        let order: Vec<usize> = (0..16).collect();
        let err = sw
            .seed_local_channel_priority(
                LayerId::new(0),
                LayerId::new(3),
                ChannelId::new(0),
                &order,
            )
            .unwrap_err();
        assert_eq!(err, ConfigError::SeedingRequiresLrg);
        let err = sw
            .seed_local_intermediate_priority(OutputId::new(5), &order)
            .unwrap_err();
        assert_eq!(err, ConfigError::SeedingRequiresLrg);
    }

    #[test]
    fn dead_l2lc_rebins_input_binned_traffic() {
        use crate::fault::{Fault, FaultSite};
        let cfg = HiRiseConfig::paper_optimal(); // input-binned, c = 4
        let mut sw = HiRiseSwitch::new(&cfg);
        assert_eq!(Fabric::tsv_bundle_count(&sw), 4 * 3 * 4);
        // Input 0 (layer 0, local 0) binds to channel 0 towards layer 3.
        // Kill that bundle: (src 0 * 3 + compressed_dst 2) * 4 + k 0.
        sw.inject_fault(Fault::dead(FaultSite::TsvBundle { index: 2 * 4 }))
            .unwrap();
        // The request still connects, re-binned onto channel 1.
        let grants = sw.arbitrate(&[req(0, 63)]);
        assert_eq!(grants.len(), 1);
        assert!(!sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(0)));
        assert!(sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(1)));
    }

    #[test]
    fn all_channels_dead_blocks_the_pair_gracefully() {
        use crate::fault::{Fault, FaultSite};
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        for k in 0..4 {
            sw.inject_fault(Fault::dead(FaultSite::TsvBundle { index: 2 * 4 + k }))
                .unwrap();
        }
        // Layer 0 -> layer 3 has no live channel left: the request
        // simply loses this cycle instead of panicking or deadlocking.
        assert!(sw.arbitrate(&[req(0, 63)]).is_empty());
        // Other layer pairs are untouched.
        assert_eq!(sw.arbitrate(&[req(0, 16)]).len(), 1);
        assert_eq!(sw.fault_log().unwrap().total(), 4);
    }

    #[test]
    fn dead_l2lc_is_skipped_by_priority_allocation() {
        use crate::fault::{Fault, FaultSite};
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .allocation(ChannelAllocation::PriorityBased)
            .build()
            .unwrap();
        let mut sw = HiRiseSwitch::new(&cfg);
        sw.inject_fault(Fault::dead(FaultSite::TsvBundle { index: 2 * 4 }))
            .unwrap();
        // Four contenders for layer 0 -> 3 but only three live channels:
        // exactly three connect, none over the dead channel.
        let grants = sw.arbitrate(&[req(0, 60), req(4, 61), req(8, 62), req(12, 63)]);
        assert_eq!(grants.len(), 3);
        assert!(!sw.channel_busy(LayerId::new(0), LayerId::new(3), ChannelId::new(0)));
    }

    /// The word kernel must twin the scalar kernel bit-for-bit: same
    /// grant sequences under random traffic across every scheme and
    /// channel-allocation policy, with connections held and released at
    /// random so channel-busy and pool serialization paths all fire.
    #[test]
    fn word_kernel_twins_scalar_kernel() {
        use crate::kernel::ArbiterKernel;
        for scheme in [
            ArbitrationScheme::LayerToLayerLrg,
            ArbitrationScheme::WeightedLrg,
            ArbitrationScheme::class_based(),
        ] {
            for allocation in [
                ChannelAllocation::InputBinned,
                ChannelAllocation::OutputBinned,
                ChannelAllocation::PriorityBased,
            ] {
                let cfg = HiRiseConfig::builder(64, 4)
                    .channel_multiplicity(4)
                    .scheme(scheme)
                    .allocation(allocation)
                    .build()
                    .unwrap();
                let mut scalar = HiRiseSwitch::with_kernel(&cfg, ArbiterKernel::Scalar);
                let mut word = HiRiseSwitch::with_kernel(&cfg, ArbiterKernel::Word);
                assert_eq!(scalar.kernel(), ArbiterKernel::Scalar);
                assert_eq!(word.kernel(), ArbiterKernel::Word);
                let mut state = 0xFEED_5EEDu64;
                let mut next = move || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as usize
                };
                for cycle in 0..1500 {
                    let mut requests = Vec::new();
                    for i in 0..64 {
                        if next() % 3 != 0 {
                            requests
                                .push(Request::new(InputId::new(i), OutputId::new(next() % 64)));
                        }
                    }
                    let a = scalar.arbitrate(&requests);
                    let b = word.arbitrate(&requests);
                    assert_eq!(
                        a,
                        b,
                        "{} / {allocation:?} diverged at cycle {cycle}",
                        scheme.label()
                    );
                    for grant in a {
                        if next() % 3 == 0 {
                            scalar.release(grant.input);
                            word.release(grant.input);
                        }
                    }
                }
                assert_eq!(
                    scalar.inter_layer_fraction(),
                    word.inter_layer_fraction(),
                    "grant counters must match too"
                );
            }
        }
    }

    #[test]
    fn word_kernel_matches_scalar_under_faults() {
        use crate::fault::{Fault, FaultSite};
        use crate::kernel::ArbiterKernel;
        let cfg = HiRiseConfig::paper_optimal();
        let mut scalar = HiRiseSwitch::with_kernel(&cfg, ArbiterKernel::Scalar);
        let mut word = HiRiseSwitch::with_kernel(&cfg, ArbiterKernel::Word);
        for sw in [&mut scalar, &mut word] {
            sw.inject_fault(Fault::dead(FaultSite::TsvBundle { index: 2 * 4 }))
                .unwrap();
            sw.inject_fault(Fault::dead(FaultSite::Port { input: 7 }))
                .unwrap();
            sw.inject_fault(Fault::dead(FaultSite::Crosspoint {
                input: 1,
                output: 63,
            }))
            .unwrap();
        }
        let mut state = 0xC0FF_EE00u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for cycle in 0..1000 {
            let mut requests = Vec::new();
            for i in 0..64 {
                if next() % 2 == 0 {
                    requests.push(Request::new(InputId::new(i), OutputId::new(next() % 64)));
                }
            }
            let a = scalar.arbitrate(&requests);
            let b = word.arbitrate(&requests);
            assert_eq!(a, b, "faulted twin diverged at cycle {cycle}");
            for grant in a {
                if next() % 3 == 0 {
                    scalar.release(grant.input);
                    word.release(grant.input);
                }
            }
        }
    }

    #[test]
    fn oversized_subblock_falls_back_to_scalar() {
        // 2 layers x 64 channels -> sub-block of 65 slots: the word
        // kernel cannot carry the slot set in one u64, so the switch
        // must report (and run) the scalar pipeline.
        let cfg = HiRiseConfig::builder(256, 2)
            .channel_multiplicity(64)
            .build()
            .unwrap();
        let sw = HiRiseSwitch::new(&cfg);
        assert_eq!(sw.kernel(), crate::kernel::ArbiterKernel::Scalar);
    }

    #[test]
    fn dead_port_and_crosspoint_are_masked() {
        use crate::fault::{Fault, FaultSite};
        let cfg = HiRiseConfig::paper_optimal();
        let mut sw = HiRiseSwitch::new(&cfg);
        sw.inject_fault(Fault::dead(FaultSite::Port { input: 0 }))
            .unwrap();
        sw.inject_fault(Fault::dead(FaultSite::Crosspoint {
            input: 1,
            output: 63,
        }))
        .unwrap();
        assert!(sw.arbitrate(&[req(0, 63)]).is_empty());
        assert!(sw.arbitrate(&[req(1, 63)]).is_empty());
        // Input 1's other outputs still work.
        assert_eq!(sw.arbitrate(&[req(1, 62)]).len(), 1);
    }
}
