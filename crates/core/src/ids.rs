//! Strongly-typed identifiers for switch ports, layers and channels.
//!
//! The paper talks about *primary inputs*, *final outputs*, silicon
//! *layers* and *layer-to-layer channels* (L2LCs). Using newtypes keeps
//! an input index from ever being used where an output index is meant —
//! a real hazard in a hierarchical switch where both range over `0..N`.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A primary input port of a switch fabric, in `0..radix`.
    ///
    /// For 3D fabrics the inputs are distributed evenly over the layers:
    /// input `i` lives on layer `i / (radix / layers)` (see [`LayerId`]).
    InputId,
    "i"
);

id_type!(
    /// A final output port of a switch fabric, in `0..radix`.
    OutputId,
    "o"
);

id_type!(
    /// A silicon layer of a 3D switch, in `0..layers`.
    ///
    /// The paper numbers layers starting from 1 (L1..L4); this type uses
    /// zero-based indices, so the paper's L1 is `LayerId::new(0)`.
    LayerId,
    "L"
);

id_type!(
    /// One of the `c` layer-to-layer channels between an ordered pair of
    /// layers (the paper's *channel multiplicity* index, `0..c`).
    ChannelId,
    "c"
);

/// A dense handle into a packet arena slot, in `0..arena_len`, with a
/// reserved [`NONE`](Self::NONE) sentinel for packets that carry no
/// arena-side metadata (single-switch simulations, test fixtures).
///
/// Unlike the `usize` port identifiers above this is deliberately
/// 32-bit: it rides inside every in-flight packet, and arenas are
/// indexed densely with a free-list, so `u32::MAX` slots is plenty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketHandle(u32);

impl PacketHandle {
    /// The "no arena slot" sentinel.
    pub const NONE: Self = Self(u32::MAX);

    /// Creates a handle from a raw slot index.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is the reserved sentinel value `u32::MAX`.
    #[inline]
    pub const fn new(slot: u32) -> Self {
        assert!(slot != u32::MAX, "u32::MAX is reserved for NONE");
        Self(slot)
    }

    /// Returns the raw slot index. The sentinel returns `u32::MAX`.
    #[inline]
    pub const fn slot(self) -> u32 {
        self.0
    }

    /// Whether this handle refers to an arena slot.
    #[inline]
    pub const fn is_some(self) -> bool {
        self.0 != u32::MAX
    }
}

impl Default for PacketHandle {
    #[inline]
    fn default() -> Self {
        Self::NONE
    }
}

impl fmt::Display for PacketHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "h{}", self.0)
        } else {
            f.write_str("h-")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_handles_distinguish_none() {
        assert!(!PacketHandle::NONE.is_some());
        assert_eq!(PacketHandle::default(), PacketHandle::NONE);
        let h = PacketHandle::new(7);
        assert!(h.is_some());
        assert_eq!(h.slot(), 7);
        assert_eq!(h.to_string(), "h7");
        assert_eq!(PacketHandle::NONE.to_string(), "h-");
    }

    #[test]
    fn round_trips_through_usize() {
        let input = InputId::new(42);
        assert_eq!(input.index(), 42);
        assert_eq!(usize::from(input), 42);
        assert_eq!(InputId::from(42), input);
    }

    #[test]
    fn distinct_types_are_distinct() {
        // This is a compile-time property; here we just confirm values and
        // formatting stay legible.
        assert_eq!(InputId::new(3).to_string(), "i3");
        assert_eq!(OutputId::new(3).to_string(), "o3");
        assert_eq!(LayerId::new(1).to_string(), "L1");
        assert_eq!(ChannelId::new(0).to_string(), "c0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(InputId::new(1) < InputId::new(2));
        assert_eq!(OutputId::default(), OutputId::new(0));
    }
}
