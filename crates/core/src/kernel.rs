//! Arbitration kernel selection.
//!
//! Every fabric ships two functionally identical arbitration pipelines:
//! the original *scalar* pipeline that walks per-request lists, and a
//! *word-parallel* pipeline that carries the request→bin→grant flow as
//! masked `u64` word operations end-to-end (the representation
//! [`MatrixArbiter::grant_words`](crate::MatrixArbiter::grant_words)
//! consumes directly). The word pipeline is monomorphized over the mask
//! word count `W` at fabric construction — radix 16/32/64 resolve to
//! `W = 1`, 65–128 to `W = 2`, 129–256 to `W = 4` — so the compiler
//! unrolls the word loops for the standard grid. Geometries beyond 256
//! fall back to the scalar pipeline.
//!
//! Both kernels produce bit-identical grant sequences; the differential
//! suite (`tests/differential.rs`) co-steps scalar and word twins to pin
//! that equivalence.

/// Which arbitration kernel a fabric instance executes. Selected once at
/// construction; see [`Switch2d::with_kernel`](crate::Switch2d::with_kernel)
/// and [`HiRiseSwitch::with_kernel`](crate::HiRiseSwitch::with_kernel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ArbiterKernel {
    /// Word-parallel masked-word pipeline (the default). Falls back to
    /// the scalar pipeline for geometries it does not cover.
    #[default]
    Word,
    /// The original per-request scalar pipeline.
    Scalar,
}

impl ArbiterKernel {
    /// Parses the labels used by `cyclebench` and campaign specs.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "word" => Some(Self::Word),
            "scalar" => Some(Self::Scalar),
            _ => None,
        }
    }

    /// Stable label for reports and benchmark schemas.
    pub fn label(self) -> &'static str {
        match self {
            Self::Word => "word",
            Self::Scalar => "scalar",
        }
    }
}

/// Resolved kernel: the monomorphization a fabric instance dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum KernelSel {
    Scalar,
    Word1,
    Word2,
    Word4,
}

impl KernelSel {
    /// Resolves a requested kernel against the widest bit mask the
    /// fabric's word pipeline must carry (`mask_bits` positions).
    pub(crate) fn resolve(kernel: ArbiterKernel, mask_bits: usize) -> Self {
        match kernel {
            ArbiterKernel::Scalar => Self::Scalar,
            ArbiterKernel::Word => match mask_bits.div_ceil(64) {
                0 | 1 => Self::Word1,
                2 => Self::Word2,
                4 => Self::Word4,
                _ => Self::Scalar,
            },
        }
    }

    /// The kernel actually in effect (word fallbacks report as scalar).
    pub(crate) fn effective(self) -> ArbiterKernel {
        match self {
            Self::Scalar => ArbiterKernel::Scalar,
            _ => ArbiterKernel::Word,
        }
    }

    /// Mask word count for the word kernels; `None` for scalar.
    pub(crate) fn words(self) -> Option<usize> {
        match self {
            Self::Scalar => None,
            Self::Word1 => Some(1),
            Self::Word2 => Some(2),
            Self::Word4 => Some(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_covers_the_standard_grid() {
        for radix in [16usize, 32, 64] {
            assert_eq!(
                KernelSel::resolve(ArbiterKernel::Word, radix),
                KernelSel::Word1
            );
        }
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Word, 128),
            KernelSel::Word2
        );
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Word, 256),
            KernelSel::Word4
        );
        // div_ceil = 3 has no monomorphized kernel: scalar fallback.
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Word, 192),
            KernelSel::Scalar
        );
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Scalar, 64),
            KernelSel::Scalar
        );
    }

    #[test]
    fn labels_round_trip() {
        for kernel in [ArbiterKernel::Word, ArbiterKernel::Scalar] {
            assert_eq!(ArbiterKernel::parse(kernel.label()), Some(kernel));
        }
        assert_eq!(ArbiterKernel::parse("simd"), None);
    }

    #[test]
    fn effective_kernel_reports_fallback() {
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Word, 512).effective(),
            ArbiterKernel::Scalar
        );
        assert_eq!(
            KernelSel::resolve(ArbiterKernel::Word, 64).effective(),
            ArbiterKernel::Word
        );
        assert_eq!(KernelSel::Word2.words(), Some(2));
        assert_eq!(KernelSel::Scalar.words(), None);
    }
}
