//! Switch fabrics and arbitration schemes from the MICRO 2014 paper
//! *Hi-Rise: A High-Radix Switch for 3D Integration with Single-cycle
//! Arbitration* (Jeloka, Das, Dreslinski, Mudge, Blaauw).
//!
//! This crate models, at cycle granularity, the three switch fabrics the
//! paper evaluates plus every arbitration scheme it discusses:
//!
//! * [`Switch2d`] — the flat 2D Swizzle-Switch baseline: a matrix crossbar
//!   with arbitration embedded in the cross-points, using Least Recently
//!   Granted (LRG) priority (§II-A of the paper).
//! * [`FoldedSwitch`] — the naive 3D baseline: the same 2D switch folded
//!   over `L` silicon layers (§II-B).
//! * [`HiRiseSwitch`] — the paper's contribution: a hierarchical 3D switch
//!   with a *local switch* and an *inter-layer switch* per layer, joined by
//!   dedicated layer-to-layer channels (L2LCs), arbitrating end-to-end in a
//!   single cycle (§III).
//! * [`MatchingSwitch`] — the iterative-matching opponents from the
//!   related-work discussion (§VII): iSLIP, ESLIP, and a wrapped
//!   wavefront allocator, selectable via [`MatchPolicy`]. These are the
//!   multi-iteration schedulers the paper's single-cycle claim is
//!   benchmarked against.
//!
//! The inter-layer arbitration policy is selectable per §III-B:
//! baseline layer-to-layer LRG, Weighted LRG (WLRG), or the proposed
//! Class-based LRG ([`ClrgState`], §III-B4).
//!
//! All fabrics implement the [`Fabric`] trait, which is what the
//! cycle-accurate simulator in `hirise-sim` drives: offer a set of
//! input→output [`Request`]s, receive the set of granted connections, then
//! hold each connection until [`Fabric::release`] is called (at the tail
//! flit of a packet).
//!
//! # Example
//!
//! ```
//! use hirise_core::{HiRiseConfig, HiRiseSwitch, Fabric, Request, InputId, OutputId};
//!
//! # fn main() -> Result<(), hirise_core::ConfigError> {
//! // The paper's optimal configuration: 64-radix, 4 layers, 4 channels, CLRG.
//! let cfg = HiRiseConfig::builder(64, 4).channel_multiplicity(4).build()?;
//! let mut sw = HiRiseSwitch::new(&cfg);
//!
//! // Input 0 (layer 1) asks for output 63 (layer 4), as in Fig. 2.
//! let grants = sw.arbitrate(&[Request::new(InputId::new(0), OutputId::new(63))]);
//! assert_eq!(grants.len(), 1);
//! assert!(sw.connection(InputId::new(0)) == Some(OutputId::new(63)));
//! sw.release(InputId::new(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
mod bits;
pub mod config;
mod error;
mod fabric;
pub mod fault;
mod folded;
pub mod hirise;
mod ids;
mod kernel;
mod matching;
pub mod rng;
mod switch2d;
pub mod xpoint;

pub use arbiter::clrg::ClrgState;
pub use arbiter::matrix::MatrixArbiter;
pub use arbiter::wlrg::WlrgState;
pub use arbiter::ArbitrationScheme;
pub use bits::BitSet;
pub use config::{ChannelAllocation, HiRiseConfig, HiRiseConfigBuilder, LocalArbiterKind};
pub use error::ConfigError;
pub use fabric::{Fabric, Grant, Request};
pub use fault::{Fault, FaultEvent, FaultKind, FaultLog, FaultSite};
pub use folded::FoldedSwitch;
pub use hirise::HiRiseSwitch;
pub use ids::{ChannelId, InputId, LayerId, OutputId, PacketHandle};
pub use kernel::ArbiterKernel;
pub use matching::{MatchPolicy, MatchingSwitch};
pub use switch2d::Switch2d;
pub use xpoint::{arbitrate_clrg_column, arbitrate_wired_or, ClassedContender};
