//! Iterative-matching crossbar schedulers: iSLIP, ESLIP, and wavefront.
//!
//! These are the canonical multi-iteration baselines the paper's
//! single-cycle claim is measured against (§VII contrasts CLRG with
//! "round-robin based allocators such as iSLIP"). *The Tiny Tera*
//! (PAPERS.md) defines the family:
//!
//! * **iSLIP** (McKeown): per-output *grant* pointers and per-input
//!   *accept* pointers, both rotating round-robin. Each iteration runs a
//!   grant phase (every unmatched output offers its rotating-priority
//!   requester) then an accept phase (every input accepts one offer).
//!   Pointers advance past the winner **only on an accepted grant, and
//!   only in the first iteration** — the update discipline that makes
//!   the pointers desynchronise and reach 100% throughput under
//!   saturated uniform traffic.
//! * **ESLIP**: the Tiny Tera's combined unicast/multicast scheduler.
//!   [`Request`] is unicast, so this models the unicast specialisation:
//!   the same grant/accept engine, but pointers advance on accepted
//!   grants in *every* iteration, trading some desynchronisation for
//!   faster pointer movement under mixed traffic.
//! * **Wavefront**: the wrapped wavefront allocator (Tamir & Chi). The
//!   request matrix is swept one wrapped diagonal at a time starting
//!   from a rotating priority diagonal; every cell on a diagonal is
//!   conflict-free by construction, so a diagonal commits in parallel
//!   and the full sweep yields a maximal matching.
//!
//! # Iteration accounting
//!
//! All `k` iterations complete within one [`Fabric::arbitrate`] call —
//! the *single-cycle-idealised* accounting EXPERIMENTS.md describes. In
//! hardware a k-iteration scheduler needs k sub-cycles (or a k-times
//! slower clock); the face-off experiment charges that cost analytically
//! rather than in the cycle loop, so latency numbers here are a lower
//! bound for the iterative schedulers.
//!
//! # VOQ extension to the fabric contract
//!
//! [`Fabric::arbitrate`] documents at most one request per input. A
//! matching scheduler only becomes interesting when an input can offer
//! several virtual output queues at once, so [`MatchingSwitch`] extends
//! the contract: multiple requests per input are accepted (at most one
//! is granted per cycle), and duplicate `(input, output)` pairs
//! collapse. Callers that follow the stricter one-request contract (the
//! differential harness, the network simulator) remain fully valid.

use crate::arbiter::round_robin::RoundRobinArbiter;
use crate::error::ConfigError;
use crate::fabric::{Fabric, Grant, Request};
use crate::fault::{Fault, FaultLog, FaultState, TsvMap};
use crate::ids::{InputId, OutputId};
use crate::kernel::{ArbiterKernel, KernelSel};

/// Which matching policy a [`MatchingSwitch`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchPolicy {
    /// iSLIP with the given iteration count: pointers advance only on
    /// first-iteration accepted grants.
    Islip {
        /// Grant/accept iterations per arbitration cycle (≥ 1).
        iterations: usize,
    },
    /// ESLIP (unicast specialisation) with the given iteration count:
    /// pointers advance on accepted grants in every iteration.
    Eslip {
        /// Grant/accept iterations per arbitration cycle (≥ 1).
        iterations: usize,
    },
    /// Wrapped wavefront allocation with a rotating priority diagonal.
    Wavefront,
}

impl MatchPolicy {
    /// Grant/accept iterations per cycle (1 for wavefront, whose single
    /// sweep is already maximal).
    pub fn iterations(&self) -> usize {
        match *self {
            Self::Islip { iterations } | Self::Eslip { iterations } => iterations,
            Self::Wavefront => 1,
        }
    }
}

/// An `N × N` input-queued crossbar scheduler running an iterative
/// matching policy ([`MatchPolicy`]), with held connections and fault
/// injection matching the Swizzle fabrics.
///
/// Unlike [`Switch2d`](crate::Switch2d), inputs may present several
/// requests per cycle (one per virtual output queue); see the module
/// docs for the contract extension.
#[derive(Clone, Debug)]
pub struct MatchingSwitch {
    policy: MatchPolicy,
    radix: usize,
    /// Resolved arbitration kernel, fixed at construction.
    kernel: KernelSel,
    /// Per-output grant pointers (iSLIP/ESLIP).
    grant_ptrs: Vec<RoundRobinArbiter>,
    /// Per-input accept pointers (iSLIP/ESLIP).
    accept_ptrs: Vec<RoundRobinArbiter>,
    /// Rotating priority diagonal (wavefront); advances one position per
    /// arbitration cycle that admits at least one request.
    wave_diag: usize,
    /// Per-input connected output.
    connections: Vec<Option<OutputId>>,
    /// Per-output owning input.
    owners: Vec<Option<InputId>>,
    // Scalar scratch, reused across cycles.
    out_lists: Vec<Vec<usize>>,
    grant_to: Vec<Vec<usize>>,
    cand: Vec<usize>,
    matched_in: Vec<bool>,
    matched_out: Vec<bool>,
    /// Wavefront-scalar request matrix, row-major `radix × radix`.
    req_matrix: Vec<bool>,
    row_any: Vec<bool>,
    // Word-kernel scratch: per-port masks, `W` words each.
    out_reqs: Vec<u64>,
    in_grants: Vec<u64>,
    in_reqs: Vec<u64>,
    matched_in_w: Vec<u64>,
    matched_out_w: Vec<u64>,
    touched_out: Vec<u64>,
    touched_in: Vec<u64>,
    /// Fault-injection state; `None` until faults are enabled.
    faults: Option<FaultState>,
}

impl MatchingSwitch {
    /// Creates a matching switch with the default (word-parallel)
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero or the policy's iteration count is.
    pub fn new(radix: usize, policy: MatchPolicy) -> Self {
        Self::with_kernel(radix, policy, ArbiterKernel::default())
    }

    /// Creates a matching switch with an explicit arbitration kernel.
    /// Both kernels grant identically; `Scalar` keeps the per-request
    /// list pipeline as a differential baseline.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero or the policy's iteration count is.
    pub fn with_kernel(radix: usize, policy: MatchPolicy, kernel: ArbiterKernel) -> Self {
        assert!(radix > 0, "radix must be at least 1");
        assert!(
            policy.iterations() > 0,
            "iteration count must be at least 1"
        );
        let kernel = KernelSel::resolve(kernel, radix);
        let words = kernel.words().unwrap_or(0);
        let wavefront = matches!(policy, MatchPolicy::Wavefront);
        Self {
            policy,
            radix,
            kernel,
            grant_ptrs: (0..radix).map(|_| RoundRobinArbiter::new(radix)).collect(),
            accept_ptrs: (0..radix).map(|_| RoundRobinArbiter::new(radix)).collect(),
            wave_diag: 0,
            connections: vec![None; radix],
            owners: vec![None; radix],
            out_lists: vec![Vec::new(); radix],
            grant_to: vec![Vec::new(); radix],
            cand: Vec::new(),
            matched_in: vec![false; radix],
            matched_out: vec![false; radix],
            req_matrix: vec![
                false;
                if wavefront && words == 0 {
                    radix * radix
                } else {
                    0
                }
            ],
            row_any: vec![false; radix],
            out_reqs: vec![0; radix * words],
            in_grants: vec![0; radix * words],
            in_reqs: vec![0; radix * words],
            matched_in_w: vec![0; words],
            matched_out_w: vec![0; words],
            touched_out: vec![0; words],
            touched_in: vec![0; words],
            faults: None,
        }
    }

    /// iSLIP with `iterations` grant/accept rounds per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `radix` or `iterations` is zero.
    pub fn islip(radix: usize, iterations: usize) -> Self {
        Self::new(radix, MatchPolicy::Islip { iterations })
    }

    /// ESLIP (unicast specialisation) with `iterations` rounds per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `radix` or `iterations` is zero.
    pub fn eslip(radix: usize, iterations: usize) -> Self {
        Self::new(radix, MatchPolicy::Eslip { iterations })
    }

    /// Wrapped wavefront allocator with a rotating priority diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero.
    pub fn wavefront(radix: usize) -> Self {
        Self::new(radix, MatchPolicy::Wavefront)
    }

    /// The matching policy in effect.
    pub fn policy(&self) -> MatchPolicy {
        self.policy
    }

    /// The arbitration kernel in effect (accounting for geometry
    /// fallbacks).
    pub fn kernel(&self) -> ArbiterKernel {
        self.kernel.effective()
    }

    /// The grant pointer of `output` (iSLIP/ESLIP state; wavefront
    /// instances hold the pointers but never consult them). Exposed so
    /// tests can audit the pointer-update-only-on-accept discipline.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn grant_pointer(&self, output: OutputId) -> usize {
        self.grant_ptrs[output.index()].pointer()
    }

    /// The accept pointer of `input`; see
    /// [`grant_pointer`](Self::grant_pointer).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn accept_pointer(&self, input: InputId) -> usize {
        self.accept_ptrs[input.index()].pointer()
    }

    /// The input currently owning `output`, if any.
    pub fn owner(&self, output: OutputId) -> Option<InputId> {
        self.owners[output.index()]
    }

    /// Shared admission filter: busy-input and faulted requests are
    /// dropped; requests to busy outputs lose silently. Duplicate
    /// `(input, output)` pairs collapse idempotently downstream, and —
    /// the VOQ extension — several distinct requests per input are all
    /// admitted.
    #[inline]
    fn admit(&self, input: usize, output: usize) -> bool {
        assert!(input < self.radix, "input {input} out of range");
        assert!(output < self.radix, "output {output} out of range");
        if self.connections[input].is_some() {
            return false; // already transferring: its VOQs wait
        }
        if let Some(faults) = &self.faults {
            if faults.input_down(input) || faults.xpoint_down(input, output) {
                return false; // masked out: the request loses silently
            }
        }
        // Output busy: request simply loses this cycle.
        self.owners[output].is_none()
    }

    /// Commits a matched pair: connection bookkeeping and the grant
    /// record. Pointer updates are policy-specific and stay with the
    /// caller. Identical for both kernels.
    #[inline]
    fn commit(&mut self, input: usize, output: usize, grants: &mut Vec<Grant>) {
        self.connections[input] = Some(OutputId::new(output));
        self.owners[output] = Some(InputId::new(input));
        grants.push(Grant {
            input: InputId::new(input),
            output: OutputId::new(output),
        });
    }

    /// iSLIP/ESLIP scalar pipeline: per-output requester lists, grant
    /// and accept phases over index vectors.
    fn islip_scalar(
        &mut self,
        requests: &[Request],
        iterations: usize,
        update_every_iteration: bool,
        grants: &mut Vec<Grant>,
    ) {
        for list in &mut self.out_lists {
            list.clear();
        }
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.out_lists[output].push(input);
            }
        }
        self.matched_in.fill(false);
        self.matched_out.fill(false);

        for iteration in 0..iterations {
            // Grant phase: every unmatched output offers its
            // rotating-priority unmatched requester.
            for list in &mut self.grant_to {
                list.clear();
            }
            let mut any_grant = false;
            for output in 0..self.radix {
                if self.matched_out[output] || self.out_lists[output].is_empty() {
                    continue;
                }
                self.cand.clear();
                for &input in &self.out_lists[output] {
                    if !self.matched_in[input] {
                        self.cand.push(input);
                    }
                }
                if let Some(winner) = self.grant_ptrs[output].grant(&self.cand) {
                    self.grant_to[winner].push(output);
                    any_grant = true;
                }
            }
            if !any_grant {
                break; // the matching can only stay fixed from here
            }
            // Accept phase: each offered input accepts one grant.
            for input in 0..self.radix {
                if self.grant_to[input].is_empty() {
                    continue;
                }
                let output = self.accept_ptrs[input]
                    .grant(&self.grant_to[input])
                    .expect("non-empty grant set always has an accept winner");
                self.matched_in[input] = true;
                self.matched_out[output] = true;
                if iteration == 0 || update_every_iteration {
                    self.grant_ptrs[output].update(input);
                    self.accept_ptrs[input].update(output);
                }
                self.commit(input, output, grants);
            }
        }
    }

    /// iSLIP/ESLIP word pipeline: requests bin into per-output mask
    /// words; grant and accept phases visit ports in the same ascending
    /// order as the scalar loops, so pointer evolution is identical.
    fn islip_words<const W: usize>(
        &mut self,
        requests: &[Request],
        iterations: usize,
        update_every_iteration: bool,
        grants: &mut Vec<Grant>,
    ) {
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.out_reqs[output * W + input / 64] |= 1u64 << (input % 64);
                self.touched_out[output / 64] |= 1u64 << (output % 64);
            }
        }
        self.matched_in_w.fill(0);
        self.matched_out_w.fill(0);

        for iteration in 0..iterations {
            let mut any_grant = false;
            self.touched_in.fill(0);
            for touched_word in 0..self.touched_out.len() {
                let mut bits = self.touched_out[touched_word];
                while bits != 0 {
                    let output = touched_word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.matched_out_w[output / 64] >> (output % 64) & 1 != 0 {
                        continue;
                    }
                    let base = output * W;
                    let mut mask = [0u64; W];
                    for (w, word) in mask.iter_mut().enumerate() {
                        *word = self.out_reqs[base + w] & !self.matched_in_w[w];
                    }
                    if let Some(winner) = self.grant_ptrs[output].grant_words::<W>(&mask) {
                        self.in_grants[winner * W + output / 64] |= 1u64 << (output % 64);
                        self.touched_in[winner / 64] |= 1u64 << (winner % 64);
                        any_grant = true;
                    }
                }
            }
            if !any_grant {
                break;
            }
            for touched_word in 0..self.touched_in.len() {
                let mut bits = self.touched_in[touched_word];
                while bits != 0 {
                    let input = touched_word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let base = input * W;
                    let grant_words = &mut self.in_grants[base..base + W];
                    let gmask: [u64; W] = (&*grant_words).try_into().expect("exact W-word slice");
                    grant_words.fill(0);
                    let output = self.accept_ptrs[input]
                        .grant_words::<W>(&gmask)
                        .expect("non-empty grant set always has an accept winner");
                    self.matched_in_w[input / 64] |= 1u64 << (input % 64);
                    self.matched_out_w[output / 64] |= 1u64 << (output % 64);
                    if iteration == 0 || update_every_iteration {
                        self.grant_ptrs[output].update(input);
                        self.accept_ptrs[input].update(output);
                    }
                    self.commit(input, output, grants);
                }
            }
        }
        // Clear the per-cycle request bins.
        for touched_word in 0..self.touched_out.len() {
            let mut bits = self.touched_out[touched_word];
            self.touched_out[touched_word] = 0;
            while bits != 0 {
                let output = touched_word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.out_reqs[output * W..(output + 1) * W].fill(0);
            }
        }
    }

    /// Wavefront scalar pipeline over the boolean request matrix.
    fn wavefront_scalar(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        let n = self.radix;
        let mut any = false;
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.req_matrix[input * n + output] = true;
                self.row_any[input] = true;
                any = true;
            }
        }
        if any {
            self.matched_in.fill(false);
            self.matched_out.fill(false);
            for offset in 0..n {
                let diag = (self.wave_diag + offset) % n;
                for input in 0..n {
                    if !self.row_any[input] || self.matched_in[input] {
                        continue;
                    }
                    let output = (diag + n - input) % n;
                    if self.matched_out[output] || !self.req_matrix[input * n + output] {
                        continue;
                    }
                    self.matched_in[input] = true;
                    self.matched_out[output] = true;
                    self.commit(input, output, grants);
                }
            }
            // The diagonal only rotates on cycles that admitted work, so
            // an idle cycle is a true no-op (`ticks_when_idle` contract).
            self.wave_diag = (self.wave_diag + 1) % n;
            for input in 0..n {
                if self.row_any[input] {
                    self.req_matrix[input * n..(input + 1) * n].fill(false);
                    self.row_any[input] = false;
                }
            }
        }
    }

    /// Wavefront word pipeline: per-input request mask words swept in
    /// the same diagonal-major, input-ascending order as the scalar
    /// matrix walk.
    fn wavefront_words<const W: usize>(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        let n = self.radix;
        let mut any = false;
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.in_reqs[input * W + output / 64] |= 1u64 << (output % 64);
                self.touched_in[input / 64] |= 1u64 << (input % 64);
                any = true;
            }
        }
        if any {
            self.matched_in_w.fill(0);
            self.matched_out_w.fill(0);
            for offset in 0..n {
                let diag = (self.wave_diag + offset) % n;
                for touched_word in 0..self.touched_in.len() {
                    let mut bits = self.touched_in[touched_word];
                    while bits != 0 {
                        let input = touched_word * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if self.matched_in_w[input / 64] >> (input % 64) & 1 != 0 {
                            continue;
                        }
                        let output = (diag + n - input) % n;
                        if self.matched_out_w[output / 64] >> (output % 64) & 1 != 0 {
                            continue;
                        }
                        if self.in_reqs[input * W + output / 64] >> (output % 64) & 1 == 0 {
                            continue;
                        }
                        self.matched_in_w[input / 64] |= 1u64 << (input % 64);
                        self.matched_out_w[output / 64] |= 1u64 << (output % 64);
                        self.commit(input, output, grants);
                    }
                }
            }
            self.wave_diag = (self.wave_diag + 1) % n;
            for touched_word in 0..self.touched_in.len() {
                let mut bits = self.touched_in[touched_word];
                self.touched_in[touched_word] = 0;
                while bits != 0 {
                    let input = touched_word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.in_reqs[input * W..(input + 1) * W].fill(0);
                }
            }
        }
    }
}

impl Fabric for MatchingSwitch {
    fn radix(&self) -> usize {
        self.radix
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.arbitrate_into(requests, &mut grants);
        grants
    }

    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        grants.clear();
        if let Some(faults) = &mut self.faults {
            faults.advance();
        }
        let (iterations, update_every_iteration) = match self.policy {
            MatchPolicy::Islip { iterations } => (iterations, false),
            MatchPolicy::Eslip { iterations } => (iterations, true),
            MatchPolicy::Wavefront => (1, false),
        };
        if matches!(self.policy, MatchPolicy::Wavefront) {
            match self.kernel {
                KernelSel::Scalar => self.wavefront_scalar(requests, grants),
                KernelSel::Word1 => self.wavefront_words::<1>(requests, grants),
                KernelSel::Word2 => self.wavefront_words::<2>(requests, grants),
                KernelSel::Word4 => self.wavefront_words::<4>(requests, grants),
            }
        } else {
            match self.kernel {
                KernelSel::Scalar => {
                    self.islip_scalar(requests, iterations, update_every_iteration, grants)
                }
                KernelSel::Word1 => {
                    self.islip_words::<1>(requests, iterations, update_every_iteration, grants)
                }
                KernelSel::Word2 => {
                    self.islip_words::<2>(requests, iterations, update_every_iteration, grants)
                }
                KernelSel::Word4 => {
                    self.islip_words::<4>(requests, iterations, update_every_iteration, grants)
                }
            }
        }
    }

    fn release(&mut self, input: InputId) {
        assert!(input.index() < self.radix, "input {input} out of range");
        if let Some(output) = self.connections[input.index()].take() {
            self.owners[output.index()] = None;
        }
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        self.connections[input.index()]
    }

    fn output_busy(&self, output: OutputId) -> bool {
        self.owners[output.index()].is_some()
    }

    fn enable_faults(&mut self, seed: u64) -> Result<(), ConfigError> {
        self.faults = Some(FaultState::new(self.radix, 0, TsvMap::Direct, seed));
        Ok(())
    }

    fn inject_fault(&mut self, fault: Fault) -> Result<(), ConfigError> {
        if self.faults.is_none() {
            Fabric::enable_faults(self, 0)?;
        }
        self.faults
            .as_mut()
            .expect("fault state enabled before injection")
            .inject(fault)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        self.faults.as_ref().map(|f| f.log())
    }

    fn ticks_when_idle(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultState::has_flaky)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use crate::rng::{Rng, SeedableRng, StdRng};

    fn req(i: usize, o: usize) -> Request {
        Request::new(InputId::new(i), OutputId::new(o))
    }

    fn policies() -> Vec<(&'static str, MatchPolicy)> {
        vec![
            ("islip1", MatchPolicy::Islip { iterations: 1 }),
            ("islip2", MatchPolicy::Islip { iterations: 2 }),
            ("islip4", MatchPolicy::Islip { iterations: 4 }),
            ("eslip", MatchPolicy::Eslip { iterations: 2 }),
            ("wavefront", MatchPolicy::Wavefront),
        ]
    }

    #[test]
    fn grants_distinct_outputs_in_parallel() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(8, policy);
            let grants = sw.arbitrate(&[req(0, 3), req(1, 5), req(2, 7)]);
            assert_eq!(grants.len(), 3, "{name}");
            assert_eq!(sw.active_connections(), 3, "{name}");
            assert!(sw.output_busy(OutputId::new(3)), "{name}");
        }
    }

    #[test]
    fn voq_input_gets_at_most_one_grant() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            // Input 0 offers three VOQs at once; exactly one may win.
            let grants = sw.arbitrate(&[req(0, 1), req(0, 2), req(0, 3)]);
            assert_eq!(grants.len(), 1, "{name}");
            assert_eq!(grants[0].input, InputId::new(0), "{name}");
        }
    }

    #[test]
    fn busy_output_rejects_requests() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1, "{name}");
            assert!(sw.arbitrate(&[req(2, 1)]).is_empty(), "{name}");
            sw.release(InputId::new(0));
            assert_eq!(sw.arbitrate(&[req(2, 1)]).len(), 1, "{name}");
        }
    }

    #[test]
    fn busy_input_requests_are_ignored() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1, "{name}");
            assert!(sw.arbitrate(&[req(0, 2)]).is_empty(), "{name}");
            assert_eq!(sw.connection(InputId::new(0)), Some(OutputId::new(1)));
        }
    }

    #[test]
    fn release_is_idempotent() {
        for (_, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            sw.arbitrate(&[req(0, 1)]);
            sw.release(InputId::new(0));
            sw.release(InputId::new(0));
            assert_eq!(sw.active_connections(), 0);
        }
    }

    #[test]
    fn dead_port_is_masked_out_of_arbitration() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            sw.inject_fault(Fault::dead(FaultSite::Port { input: 1 }))
                .unwrap();
            let grants = sw.arbitrate(&[req(1, 3), req(2, 3)]);
            assert_eq!(grants.len(), 1, "{name}");
            assert_eq!(grants[0].input, InputId::new(2), "{name}");
            assert_eq!(sw.fault_log().unwrap().total(), 1, "{name}");
        }
    }

    #[test]
    fn dead_crosspoint_blocks_only_its_path() {
        for (name, policy) in policies() {
            let mut sw = MatchingSwitch::new(4, policy);
            sw.inject_fault(Fault::dead(FaultSite::Crosspoint {
                input: 0,
                output: 2,
            }))
            .unwrap();
            assert!(sw.arbitrate(&[req(0, 2)]).is_empty(), "{name}");
            assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1, "{name}");
        }
    }

    #[test]
    fn matching_switch_has_no_tsv_bundles() {
        let mut sw = MatchingSwitch::islip(4, 1);
        assert_eq!(sw.tsv_bundle_count(), 0);
        let site = FaultSite::TsvBundle { index: 0 };
        assert_eq!(
            sw.inject_fault(Fault::dead(site)),
            Err(ConfigError::FaultSiteOutOfRange { site })
        );
    }

    #[test]
    #[should_panic(expected = "iteration count")]
    fn zero_iterations_are_rejected() {
        let _ = MatchingSwitch::islip(4, 0);
    }

    /// Grant legality under dense random VOQ request sets: no output
    /// granted twice per cycle, no input granted twice per cycle, every
    /// grant backed by a presented request, no grant to a busy port.
    #[test]
    fn grants_are_legal_under_random_voq_load() {
        for (name, policy) in policies() {
            for radix in [16usize, 32, 64] {
                let mut sw = MatchingSwitch::new(radix, policy);
                let mut rng = StdRng::seed_from_u64(0x1517_0000 + radix as u64);
                let mut requests = Vec::new();
                for cycle in 0..500 {
                    for input in 0..radix {
                        if sw.input_busy(InputId::new(input)) && rng.gen_bool(0.4) {
                            sw.release(InputId::new(input));
                        }
                    }
                    requests.clear();
                    for input in 0..radix {
                        for _ in 0..rng.gen_range(0usize..4) {
                            requests.push(req(input, rng.gen_range(0..radix)));
                        }
                    }
                    let busy_in: Vec<bool> =
                        (0..radix).map(|i| sw.input_busy(InputId::new(i))).collect();
                    let busy_out: Vec<bool> = (0..radix)
                        .map(|o| sw.output_busy(OutputId::new(o)))
                        .collect();
                    let grants = sw.arbitrate(&requests);
                    let mut in_granted = vec![false; radix];
                    let mut out_granted = vec![false; radix];
                    for grant in &grants {
                        let (i, o) = (grant.input.index(), grant.output.index());
                        assert!(
                            requests
                                .iter()
                                .any(|r| r.input.index() == i && r.output.index() == o),
                            "{name} radix {radix} cycle {cycle}: grant without request"
                        );
                        assert!(!in_granted[i], "{name}: input granted twice");
                        assert!(!out_granted[o], "{name}: output granted twice");
                        assert!(!busy_in[i], "{name}: busy input granted");
                        assert!(!busy_out[o], "{name}: busy output granted");
                        in_granted[i] = true;
                        out_granted[o] = true;
                    }
                }
            }
        }
    }

    /// iSLIP pointer discipline: an unaccepted grant must not move the
    /// output's grant pointer.
    #[test]
    fn islip_pointer_updates_only_on_accepted_grants() {
        let mut sw = MatchingSwitch::islip(4, 1);
        // Input 0 offers VOQs to outputs 0 and 1; both outputs grant it
        // (pointers at 0), the accept pointer picks output 0.
        let grants = sw.arbitrate(&[req(0, 0), req(0, 1)]);
        assert_eq!(
            grants,
            vec![Grant {
                input: InputId::new(0),
                output: OutputId::new(0),
            }]
        );
        // Accepted: output 0's grant pointer moved past input 0, input
        // 0's accept pointer moved past output 0.
        assert_eq!(sw.grant_pointer(OutputId::new(0)), 1);
        assert_eq!(sw.accept_pointer(InputId::new(0)), 1);
        // Not accepted: output 1's pointer must not have moved.
        assert_eq!(sw.grant_pointer(OutputId::new(1)), 0);
    }

    /// iSLIP only moves pointers on first-iteration accepts; a match
    /// completed in iteration 2 leaves its pointers alone. ESLIP, by
    /// contrast, moves them in every iteration.
    #[test]
    fn later_iteration_accepts_move_eslip_but_not_islip_pointers() {
        // Input 0 requests outputs 0 and 1; input 1 requests output 1
        // only. Iteration 1 matches (0, 0) — output 1's grant went to
        // input 0 and was declined. Iteration 2 matches (1, 1).
        let schedule = [req(0, 0), req(0, 1), req(1, 1)];

        let mut islip = MatchingSwitch::islip(4, 2);
        assert_eq!(islip.arbitrate(&schedule).len(), 2);
        assert_eq!(islip.grant_pointer(OutputId::new(1)), 0, "islip");
        assert_eq!(islip.accept_pointer(InputId::new(1)), 0, "islip");

        let mut eslip = MatchingSwitch::eslip(4, 2);
        assert_eq!(eslip.arbitrate(&schedule).len(), 2);
        assert_eq!(eslip.grant_pointer(OutputId::new(1)), 2, "eslip");
        assert_eq!(eslip.accept_pointer(InputId::new(1)), 2, "eslip");
    }

    /// A second iteration picks up matches the first left behind.
    #[test]
    fn extra_iterations_grow_the_matching() {
        // Pointers all at 0: outputs 0 and 1 both grant input 0 in
        // iteration 1, so input 1's request at output 1 only matches in
        // iteration 2.
        let schedule = [req(0, 0), req(0, 1), req(1, 1)];
        let mut one = MatchingSwitch::islip(4, 1);
        let mut two = MatchingSwitch::islip(4, 2);
        assert_eq!(one.arbitrate(&schedule).len(), 1);
        assert_eq!(two.arbitrate(&schedule).len(), 2);
    }

    /// The classic iSLIP result: under saturated uniform VOQ load the
    /// output pointers desynchronise and a *single*-iteration scheduler
    /// reaches 100% throughput — `radix` grants every cycle, with the
    /// grant pointers forming a permutation of the inputs.
    #[test]
    fn islip_pointers_desynchronize_under_saturation() {
        let radix = 8;
        let mut sw = MatchingSwitch::islip(radix, 1);
        let full: Vec<Request> = (0..radix)
            .flat_map(|i| (0..radix).map(move |o| req(i, o)))
            .collect();
        let mut steady = 0usize;
        for _ in 0..200 {
            let grants = sw.arbitrate(&full);
            for grant in &grants {
                sw.release(grant.input);
            }
            if grants.len() == radix {
                steady += 1;
            } else {
                steady = 0;
            }
        }
        assert!(
            steady >= 100,
            "desynchronised steady state not reached (tail run {steady})"
        );
        let mut pointers: Vec<usize> = (0..radix)
            .map(|o| sw.grant_pointer(OutputId::new(o)))
            .collect();
        pointers.sort_unstable();
        assert_eq!(pointers, (0..radix).collect::<Vec<_>>());
    }

    /// Wavefront with a full request matrix matches everyone at once,
    /// and the rotating diagonal serves every contender of a single
    /// output in turn.
    #[test]
    fn wavefront_is_maximal_and_rotates_priority() {
        let radix = 8;
        let mut sw = MatchingSwitch::wavefront(radix);
        let full: Vec<Request> = (0..radix)
            .flat_map(|i| (0..radix).map(move |o| req(i, o)))
            .collect();
        for cycle in 0..20 {
            let grants = sw.arbitrate(&full);
            assert_eq!(grants.len(), radix, "cycle {cycle}");
            for grant in &grants {
                sw.release(grant.input);
            }
        }
        // Single-output contention: the diagonal rotation must hand the
        // output to every requester within `radix` cycles.
        let mut sw = MatchingSwitch::wavefront(radix);
        let mut wins = vec![0usize; radix];
        let contenders: Vec<Request> = (0..radix).map(|i| req(i, 0)).collect();
        for _ in 0..radix * 4 {
            let grants = sw.arbitrate(&contenders);
            assert_eq!(grants.len(), 1);
            wins[grants[0].input.index()] += 1;
            sw.release(grants[0].input);
        }
        assert_eq!(wins, vec![4; radix]);
    }

    /// Scalar and word kernels must evolve identically: randomized VOQ
    /// request/release streams at several radices, grant vectors
    /// compared every cycle — for every policy.
    #[test]
    fn word_kernel_twins_scalar_kernel() {
        for (name, policy) in policies() {
            for radix in [16usize, 32, 64] {
                let mut word = MatchingSwitch::with_kernel(radix, policy, ArbiterKernel::Word);
                let mut scalar = MatchingSwitch::with_kernel(radix, policy, ArbiterKernel::Scalar);
                assert_eq!(word.kernel(), ArbiterKernel::Word);
                assert_eq!(scalar.kernel(), ArbiterKernel::Scalar);
                let mut rng = StdRng::seed_from_u64(0x3A7C_0000 + radix as u64);
                let mut requests = Vec::new();
                let mut held = vec![false; radix];
                for cycle in 0..2_000 {
                    for (input, holding) in held.iter_mut().enumerate() {
                        if *holding && rng.gen_bool(0.3) {
                            word.release(InputId::new(input));
                            scalar.release(InputId::new(input));
                            *holding = false;
                        }
                    }
                    requests.clear();
                    for input in 0..radix {
                        for _ in 0..rng.gen_range(0usize..3) {
                            requests.push(req(input, rng.gen_range(0..radix)));
                        }
                    }
                    let a = word.arbitrate(&requests);
                    let b = scalar.arbitrate(&requests);
                    assert_eq!(a, b, "{name} radix {radix} cycle {cycle}");
                    for grant in &a {
                        held[grant.input.index()] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn in_flight_connection_survives_a_late_fault() {
        let mut sw = MatchingSwitch::islip(4, 2);
        assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1);
        sw.inject_fault(Fault::dead(FaultSite::Port { input: 0 }))
            .unwrap();
        assert_eq!(sw.connection(InputId::new(0)), Some(OutputId::new(1)));
        sw.release(InputId::new(0));
        assert!(sw.arbitrate(&[req(0, 1)]).is_empty());
    }
}
