//! Dependency-free deterministic PRNG (SplitMix64 seeding into
//! xoshiro256\*\*), with a `rand`-compatible surface for the call sites
//! this workspace actually uses.
//!
//! The simulator previously depended on the external `rand` crate for
//! [`StdRng`]-style seeded generators. That made offline builds
//! impossible and tied `tests/determinism.rs` to the stream stability of
//! a third-party crate across versions. This module replaces it with the
//! well-known xoshiro256\*\* generator (Blackman & Vigna), seeded via
//! SplitMix64 exactly as the xoshiro authors recommend, so the stream for
//! a given seed is fixed forever by this crate alone.
//!
//! The API mirrors the subset of `rand` the workspace used:
//!
//! * [`StdRng::seed_from_u64`] (via the [`SeedableRng`] trait),
//! * [`Rng::gen_bool`] / [`Rng::gen_range`] over integer and float ranges,
//! * [`SliceRandom::shuffle`] (Fisher–Yates).
//!
//! ```
//! use hirise_core::rng::{Rng, SeedableRng, SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let i = rng.gen_range(0..64usize);
//! assert!(i < 64);
//! let mut v: Vec<u32> = (0..8).collect();
//! v.shuffle(&mut rng);
//! assert!(rng.gen_bool(1.0));
//! ```

use std::ops::Range;

/// SplitMix64: expands a 64-bit seed into an arbitrary-length key stream.
/// Used only to seed [`StdRng`]; it is the seeding procedure the xoshiro
/// reference implementation prescribes.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent stream seed from a master seed and a stream
/// index. Pure and order-free: the result depends only on
/// `(master, index)`, never on which thread asks or when — the
/// position-derived-seed trick that keeps parallel telemetry
/// byte-identical at any thread or shard count. `hirise-lab` uses it
/// for per-job seeds; the sharded simulator for per-endpoint injection
/// streams.
pub fn derive_stream_seed(master: u64, index: u64) -> u64 {
    SplitMix64::new(master.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64-bit output, advancing the state.
    fn next_u64(&mut self) -> u64;
}

/// Constructs a generator deterministically from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256\*\* — the workspace's standard generator. The name `StdRng`
/// is kept from the old `rand` surface so call sites read unchanged.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // emit four consecutive zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the result exactly uniform.
    let zone = bound.wrapping_neg() % bound; // = 2^64 mod bound
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(span, rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample an empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Precomputed Bernoulli trial with the exact decision procedure of
/// [`Rng::gen_bool`], the per-call clamp and multiply hoisted into
/// construction.
///
/// `gen_bool(p)` compares a 53-bit draw, converted to `f64`, against the
/// rounded product `p * 2^53`. Every integer in `[0, 2^53)` is exactly
/// representable as `f64`, so that float comparison equals the integer
/// comparison `draw < ceil(p * 2^53)` — with the ceiling taken of the
/// *same* rounded product, the two procedures agree on every draw.
/// `gen_bool` returns `true` for `p >= 1.0` **without** consuming a
/// draw; `always` replicates that, so cached and uncached call sites
/// stay stream-identical.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    threshold: u64,
    always: bool,
}

impl Bernoulli {
    /// Prepares a trial with success probability `p` (clamped to [0, 1]).
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return Self {
                threshold: 0,
                always: true,
            };
        }
        Self {
            threshold: (p * (1u64 << 53) as f64).ceil() as u64,
            always: false,
        }
    }

    /// Runs the trial, consuming exactly as many draws as
    /// [`Rng::gen_bool`] would: one, except none when `p >= 1.0`.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.always {
            return true;
        }
        (rng.next_u64() >> 11) < self.threshold
    }
}

/// In-place uniform shuffling, as `rand::seq::SliceRandom::shuffle`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(i as u64 + 1, rng) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public SplitMix64
        // test vectors.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..8usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5..7usize);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        // Out-of-range probabilities clamp rather than panic.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn bernoulli_is_stream_identical_to_gen_bool() {
        // Same decisions AND same draw consumption for every probability
        // class: interior values, exact dyadics, clamped extremes, and
        // the draw-free p >= 1.0 early return.
        let probs = [
            0.0,
            f64::MIN_POSITIVE,
            1.0 / (1u64 << 53) as f64,
            0.1,
            0.25,
            0.3,
            0.5,
            0.9999999999999999,
            1.0 - f64::EPSILON / 2.0,
            1.0,
            2.0,
            -1.0,
        ];
        for (i, &p) in probs.iter().enumerate() {
            let mut plain = StdRng::seed_from_u64(1000 + i as u64);
            let mut cached = plain.clone();
            let trial = Bernoulli::new(p);
            for step in 0..2_000 {
                assert_eq!(
                    plain.gen_bool(p),
                    trial.sample(&mut cached),
                    "p = {p}, step {step}"
                );
            }
            // Streams stayed in lockstep, so draw counts matched too.
            assert_eq!(plain.next_u64(), cached.next_u64(), "p = {p}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn uniform_sampling_is_unbiased_enough() {
        // Chi-square-ish sanity check over 16 buckets.
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0usize; 16];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0..16usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((850..1_150).contains(&b), "bucket {i} = {b}");
        }
    }
}
