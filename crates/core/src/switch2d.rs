//! The flat 2D Swizzle-Switch baseline (§II-A).
//!
//! An `N x N` matrix crossbar with arbitration embedded in the
//! cross-points. Every output column holds an `N`-bit LRG priority vector
//! and resolves its requests in a single cycle; winners hold the
//! connection until released. This is the design the paper compares
//! Hi-Rise against throughout §VI.
//!
//! As an extension (following the Swizzle-Switch line the paper builds
//! on — Satpathy et al., DAC 2012, which adds "multiple arbitration
//! schemes and quality of service" to the same fabric), the switch
//! optionally supports **static QoS classes**: each input carries a
//! fixed priority class, higher classes win outright, and LRG breaks
//! ties within a class — the same priority-select-mux structure CLRG
//! uses with counters (Fig. 7), with static class inputs instead.

use crate::arbiter::matrix::MatrixArbiter;
use crate::bits::BitSet;
use crate::error::ConfigError;
use crate::fabric::{Fabric, Grant, Request};
use crate::fault::{Fault, FaultLog, FaultState, TsvMap};
use crate::ids::{InputId, OutputId};
use crate::kernel::{ArbiterKernel, KernelSel};

/// A flat 2D Swizzle-Switch with per-output LRG arbitration and
/// optional static QoS classes.
#[derive(Clone, Debug)]
pub struct Switch2d {
    arbiters: Vec<MatrixArbiter>,
    /// Per-input connected output.
    connections: Vec<Option<OutputId>>,
    /// Per-output owning input.
    owners: Vec<Option<InputId>>,
    /// Static QoS class per input (0 = highest); `None` disables QoS.
    qos: Option<Vec<u8>>,
    radix: usize,
    /// Resolved arbitration kernel, fixed at construction.
    kernel: KernelSel,
    // Scratch reused across arbitration cycles to avoid reallocations.
    requestors: Vec<Vec<usize>>,
    seen: Vec<bool>,
    mask: BitSet,
    /// Word-kernel scratch: per-output request masks, `W` words each.
    out_reqs: Vec<u64>,
    /// Word-kernel scratch: bitmap over outputs with admitted requests.
    touched: Vec<u64>,
    /// Fault-injection state; `None` until faults are enabled.
    faults: Option<FaultState>,
}

impl Switch2d {
    /// Creates a 2D switch of the given radix with the default
    /// (word-parallel) arbitration kernel.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero.
    pub fn new(radix: usize) -> Self {
        Self::with_kernel(radix, ArbiterKernel::default())
    }

    /// Creates a 2D switch with an explicit arbitration kernel. Both
    /// kernels grant identically; `Scalar` keeps the original
    /// per-request pipeline as a differential baseline.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero.
    pub fn with_kernel(radix: usize, kernel: ArbiterKernel) -> Self {
        assert!(radix > 0, "radix must be at least 1");
        let kernel = KernelSel::resolve(kernel, radix);
        let words = kernel.words().unwrap_or(0);
        Self {
            arbiters: (0..radix).map(|_| MatrixArbiter::new(radix)).collect(),
            connections: vec![None; radix],
            owners: vec![None; radix],
            qos: None,
            radix,
            kernel,
            requestors: vec![Vec::new(); radix],
            seen: vec![false; radix],
            mask: BitSet::new(radix),
            out_reqs: vec![0; radix * words],
            touched: vec![0; if words > 0 { radix.div_ceil(64) } else { 0 }],
            faults: None,
        }
    }

    /// The arbitration kernel in effect (accounting for geometry
    /// fallbacks and the QoS scalar requirement).
    pub fn kernel(&self) -> ArbiterKernel {
        self.kernel.effective()
    }

    /// Installs fault state with a fabric-specific TSV geometry; the
    /// folded baseline uses this to route its bundle faults through the
    /// shared 2D datapath.
    pub(crate) fn enable_faults_mapped(&mut self, tsv_count: usize, map: TsvMap, seed: u64) {
        self.faults = Some(FaultState::new(self.radix, tsv_count, map, seed));
    }

    pub(crate) fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    pub(crate) fn inject_fault_inner(&mut self, fault: Fault) -> Result<(), ConfigError> {
        self.faults
            .as_mut()
            .expect("fault state enabled before injection")
            .inject(fault)
    }

    /// Enables static QoS: `classes[i]` is input `i`'s priority class
    /// (0 = highest). Higher-class requests win outright; LRG breaks
    /// ties within a class. Extension beyond the paper, following
    /// Satpathy et al. (DAC 2012).
    ///
    /// QoS filtering runs on the scalar pipeline, so enabling it pins
    /// the instance to the scalar kernel.
    ///
    /// # Panics
    ///
    /// Panics if `classes` does not have one entry per input.
    pub fn with_qos_classes(mut self, classes: &[u8]) -> Self {
        assert_eq!(classes.len(), self.radix, "one class per input required");
        self.qos = Some(classes.to_vec());
        self.kernel = KernelSel::Scalar;
        self
    }

    /// Seeds the LRG priority order of one output column, highest
    /// priority first. Intended for reproducing the paper's worked
    /// examples, which start from specific LRG states.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `order` is not a permutation
    /// of `0..radix`.
    pub fn seed_output_priority(&mut self, output: OutputId, order: &[usize]) {
        self.arbiters[output.index()] = MatrixArbiter::with_order(order);
    }

    /// The input currently owning `output`, if any.
    pub fn owner(&self, output: OutputId) -> Option<InputId> {
        self.owners[output.index()]
    }

    /// Shared admission filter: duplicate, busy-input, and faulted
    /// requests are dropped; requests to busy outputs lose silently.
    /// Returns `true` when the request should compete for its output.
    #[inline]
    fn admit(&mut self, input: usize, output: usize) -> bool {
        assert!(input < self.radix, "input {input} out of range");
        assert!(output < self.radix, "output {output} out of range");
        if self.seen[input] || self.connections[input].is_some() {
            return false; // duplicate or already transferring
        }
        if let Some(faults) = &self.faults {
            if faults.input_down(input) || faults.xpoint_down(input, output) {
                return false; // masked out: the request loses silently
            }
        }
        self.seen[input] = true;
        // Output busy: request simply loses this cycle.
        self.owners[output].is_none()
    }

    /// Commits `winner` on `output`: LRG update, connection bookkeeping,
    /// and the grant record. Identical for both kernels.
    #[inline]
    fn commit(&mut self, winner: usize, output: usize, grants: &mut Vec<Grant>) {
        self.arbiters[output].update(winner);
        self.connections[winner] = Some(OutputId::new(output));
        self.owners[output] = Some(InputId::new(winner));
        grants.push(Grant {
            input: InputId::new(winner),
            output: OutputId::new(output),
        });
    }

    /// The original per-request scalar pipeline (also the QoS path).
    fn arbitrate_scalar(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        for list in &mut self.requestors {
            list.clear();
        }
        self.seen.fill(false);
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.requestors[output].push(input);
            }
        }

        for output in 0..self.radix {
            let list = &self.requestors[output];
            if list.is_empty() {
                continue;
            }
            // With QoS enabled, only the best (lowest) class competes;
            // LRG decides within it.
            self.mask.clear();
            match &self.qos {
                None => {
                    for &input in list {
                        self.mask.insert(input);
                    }
                }
                Some(classes) => {
                    let best = list
                        .iter()
                        .map(|&i| classes[i])
                        .min()
                        .expect("non-empty request set");
                    for &input in list {
                        if classes[input] == best {
                            self.mask.insert(input);
                        }
                    }
                }
            }
            let winner = self.arbiters[output]
                .grant_mask(&self.mask)
                .expect("non-empty request set always has an LRG winner");
            self.commit(winner, output, grants);
        }
    }

    /// The word-parallel pipeline: requests bin into per-output `u64`
    /// masks, a bitmap tracks the touched outputs, and each touched
    /// output grants straight from its mask words. Outputs are visited
    /// in ascending order, exactly like the scalar loop, so the grant
    /// sequence (and therefore all LRG state evolution) is identical.
    fn arbitrate_words<const W: usize>(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        self.seen.fill(false);
        for request in requests {
            let input = request.input.index();
            let output = request.output.index();
            if self.admit(input, output) {
                self.out_reqs[output * W + input / 64] |= 1u64 << (input % 64);
                self.touched[output / 64] |= 1u64 << (output % 64);
            }
        }

        for touched_word in 0..self.touched.len() {
            let mut bits = self.touched[touched_word];
            self.touched[touched_word] = 0;
            while bits != 0 {
                let output = touched_word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = output * W;
                let mask_words = &mut self.out_reqs[base..base + W];
                let mask: [u64; W] = (&*mask_words).try_into().expect("exact W-word slice");
                mask_words.fill(0);
                let winner = self.arbiters[output]
                    .grant_words::<W>(&mask)
                    .expect("non-empty request set always has an LRG winner");
                self.commit(winner, output, grants);
            }
        }
    }
}

impl Fabric for Switch2d {
    fn radix(&self) -> usize {
        self.radix
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.arbitrate_into(requests, &mut grants);
        grants
    }

    fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
        grants.clear();
        if let Some(faults) = &mut self.faults {
            faults.advance();
        }
        match self.kernel {
            KernelSel::Scalar => self.arbitrate_scalar(requests, grants),
            KernelSel::Word1 => self.arbitrate_words::<1>(requests, grants),
            KernelSel::Word2 => self.arbitrate_words::<2>(requests, grants),
            KernelSel::Word4 => self.arbitrate_words::<4>(requests, grants),
        }
    }

    fn release(&mut self, input: InputId) {
        assert!(input.index() < self.radix, "input {input} out of range");
        if let Some(output) = self.connections[input.index()].take() {
            self.owners[output.index()] = None;
        }
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        self.connections[input.index()]
    }

    fn output_busy(&self, output: OutputId) -> bool {
        self.owners[output.index()].is_some()
    }

    fn enable_faults(&mut self, seed: u64) -> Result<(), ConfigError> {
        self.enable_faults_mapped(0, TsvMap::Direct, seed);
        Ok(())
    }

    fn inject_fault(&mut self, fault: Fault) -> Result<(), ConfigError> {
        if self.faults.is_none() {
            Fabric::enable_faults(self, 0)?;
        }
        self.inject_fault_inner(fault)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        self.faults.as_ref().map(|f| f.log())
    }

    fn ticks_when_idle(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultState::has_flaky)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;

    fn req(i: usize, o: usize) -> Request {
        Request::new(InputId::new(i), OutputId::new(o))
    }

    #[test]
    fn grants_distinct_outputs_in_parallel() {
        let mut sw = Switch2d::new(8);
        let grants = sw.arbitrate(&[req(0, 3), req(1, 5), req(2, 7)]);
        assert_eq!(grants.len(), 3);
        assert_eq!(sw.active_connections(), 3);
        assert!(sw.output_busy(OutputId::new(3)));
    }

    #[test]
    fn contention_resolved_by_lrg() {
        let mut sw = Switch2d::new(4);
        let grants = sw.arbitrate(&[req(0, 2), req(1, 2), req(3, 2)]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].input, InputId::new(0)); // default order favours 0
        sw.release(InputId::new(0));
        // After the win, input 0 has dropped to the back of the LRG order.
        let grants = sw.arbitrate(&[req(0, 2), req(1, 2), req(3, 2)]);
        assert_eq!(grants[0].input, InputId::new(1));
    }

    #[test]
    fn busy_output_rejects_requests() {
        let mut sw = Switch2d::new(4);
        assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1);
        assert!(sw.arbitrate(&[req(2, 1)]).is_empty());
        sw.release(InputId::new(0));
        assert_eq!(sw.arbitrate(&[req(2, 1)]).len(), 1);
    }

    #[test]
    fn busy_input_requests_are_ignored() {
        let mut sw = Switch2d::new(4);
        assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1);
        // Input 0 is mid-transfer; its stray request must be ignored.
        assert!(sw.arbitrate(&[req(0, 2)]).is_empty());
        assert_eq!(sw.connection(InputId::new(0)), Some(OutputId::new(1)));
    }

    #[test]
    fn lrg_serves_all_contenders_round_robin_fairly() {
        let mut sw = Switch2d::new(4);
        let mut wins = [0usize; 4];
        for _ in 0..40 {
            let grants = sw.arbitrate(&[req(0, 0), req(1, 0), req(2, 0), req(3, 0)]);
            let winner = grants[0].input;
            wins[winner.index()] += 1;
            sw.release(winner);
        }
        assert_eq!(wins, [10, 10, 10, 10]);
    }

    #[test]
    fn seeded_priority_orders_first_round() {
        let mut sw = Switch2d::new(4);
        sw.seed_output_priority(OutputId::new(0), &[2, 3, 1, 0]);
        let grants = sw.arbitrate(&[req(0, 0), req(1, 0), req(2, 0), req(3, 0)]);
        assert_eq!(grants[0].input, InputId::new(2));
    }

    #[test]
    fn release_is_idempotent() {
        let mut sw = Switch2d::new(4);
        sw.arbitrate(&[req(0, 1)]);
        sw.release(InputId::new(0));
        sw.release(InputId::new(0));
        assert_eq!(sw.active_connections(), 0);
    }

    #[test]
    fn qos_classes_override_lrg() {
        let mut classes = vec![1u8; 4];
        classes[2] = 0; // input 2 is high priority
        let mut sw = Switch2d::new(4).with_qos_classes(&classes);
        // Despite LRG favouring input 0, input 2 wins on class.
        for _ in 0..5 {
            let grants = sw.arbitrate(&[req(0, 1), req(2, 1), req(3, 1)]);
            assert_eq!(grants[0].input, InputId::new(2));
            sw.release(InputId::new(2));
        }
    }

    #[test]
    fn qos_ties_fall_back_to_lrg() {
        let mut sw = Switch2d::new(4).with_qos_classes(&[0, 0, 1, 1]);
        let mut sequence = Vec::new();
        for _ in 0..4 {
            let grants = sw.arbitrate(&[req(0, 2), req(1, 2)]);
            sequence.push(grants[0].input.index());
            sw.release(grants[0].input);
        }
        assert_eq!(sequence, vec![0, 1, 0, 1]);
    }

    #[test]
    fn qos_low_class_served_when_alone() {
        let mut sw = Switch2d::new(4).with_qos_classes(&[0, 0, 0, 3]);
        let grants = sw.arbitrate(&[req(3, 0)]);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one class per input")]
    fn qos_class_length_is_validated() {
        let _ = Switch2d::new(4).with_qos_classes(&[0, 1]);
    }

    #[test]
    fn paper_2d_reference_sequence() {
        // §III-B2: "In a 2D flat switch with LRG the output pattern would
        // be {20, 15, 11, 7, 3, 20, 15 ...}" for inputs {3,7,11,15,20} all
        // requesting output 63 — given an initial LRG order that ranks 20
        // above 15 above 11 above 7 above 3.
        let mut sw = Switch2d::new(64);
        let mut order: Vec<usize> = vec![20, 15, 11, 7, 3];
        order.extend((0..64).filter(|i| ![20, 15, 11, 7, 3].contains(i)));
        sw.seed_output_priority(OutputId::new(63), &order);

        let contenders = [3, 7, 11, 15, 20];
        let mut sequence = Vec::new();
        for _ in 0..10 {
            let requests: Vec<Request> = contenders.iter().map(|&i| req(i, 63)).collect();
            let grants = sw.arbitrate(&requests);
            let winner = grants[0].input;
            sequence.push(winner.index());
            sw.release(winner);
        }
        assert_eq!(sequence, vec![20, 15, 11, 7, 3, 20, 15, 11, 7, 3]);
    }

    #[test]
    fn dead_port_is_masked_out_of_arbitration() {
        let mut sw = Switch2d::new(4);
        sw.inject_fault(Fault::dead(FaultSite::Port { input: 1 }))
            .unwrap();
        // Input 1 can never win; input 2 takes the output unopposed.
        let grants = sw.arbitrate(&[req(1, 3), req(2, 3)]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].input, InputId::new(2));
        assert_eq!(sw.fault_log().unwrap().total(), 1);
    }

    #[test]
    fn dead_crosspoint_blocks_only_its_path() {
        let mut sw = Switch2d::new(4);
        sw.inject_fault(Fault::dead(FaultSite::Crosspoint {
            input: 0,
            output: 2,
        }))
        .unwrap();
        assert!(sw.arbitrate(&[req(0, 2)]).is_empty());
        // The same input reaches every other output.
        assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1);
    }

    #[test]
    fn flat_switch_has_no_tsv_bundles() {
        let mut sw = Switch2d::new(4);
        assert_eq!(sw.tsv_bundle_count(), 0);
        let site = FaultSite::TsvBundle { index: 0 };
        assert_eq!(
            sw.inject_fault(Fault::dead(site)),
            Err(ConfigError::FaultSiteOutOfRange { site })
        );
    }

    /// Scalar and word kernels must evolve identically: randomized
    /// request/release streams at several radices, grant vectors
    /// compared every cycle.
    #[test]
    fn word_kernel_twins_scalar_kernel() {
        use crate::rng::{Rng, SeedableRng, StdRng};

        for radix in [16usize, 32, 64] {
            let mut word = Switch2d::with_kernel(radix, ArbiterKernel::Word);
            let mut scalar = Switch2d::with_kernel(radix, ArbiterKernel::Scalar);
            assert_eq!(word.kernel(), ArbiterKernel::Word);
            assert_eq!(scalar.kernel(), ArbiterKernel::Scalar);
            let mut rng = StdRng::seed_from_u64(0x2D2D_0000 + radix as u64);
            let mut requests = Vec::new();
            let mut held = vec![false; radix];
            for cycle in 0..2_000 {
                for (input, holding) in held.iter_mut().enumerate() {
                    if *holding && rng.gen_bool(0.3) {
                        word.release(InputId::new(input));
                        scalar.release(InputId::new(input));
                        *holding = false;
                    }
                }
                requests.clear();
                for input in 0..radix {
                    if rng.gen_bool(0.3) {
                        requests.push(req(input, rng.gen_range(0..radix)));
                    }
                }
                let a = word.arbitrate(&requests);
                let b = scalar.arbitrate(&requests);
                assert_eq!(a, b, "radix {radix} cycle {cycle}");
                for grant in &a {
                    held[grant.input.index()] = true;
                }
            }
        }
    }

    #[test]
    fn in_flight_connection_survives_a_late_fault() {
        let mut sw = Switch2d::new(4);
        assert_eq!(sw.arbitrate(&[req(0, 1)]).len(), 1);
        sw.inject_fault(Fault::dead(FaultSite::Port { input: 0 }))
            .unwrap();
        // The held connection is untouched; only new arbitration fails.
        assert_eq!(sw.connection(InputId::new(0)), Some(OutputId::new(1)));
        sw.release(InputId::new(0));
        assert!(sw.arbitrate(&[req(0, 1)]).is_empty());
    }
}
