//! Signal-level model of the cross-point arbitration circuits (§IV).
//!
//! The Swizzle-Switch family embeds arbitration in the crossbar by
//! reusing the output data lines as a *priority bus* during the
//! arbitration phase: every requesting cross-point pulls down the lines
//! of the contenders it outranks, polls its own line, and wins exactly
//! when its line stays high (precharged). Because the priority matrix
//! is a total order, exactly one requestor's line survives — the
//! single-cycle arbitration the paper's title refers to.
//!
//! Two circuits are modelled:
//!
//! * [`arbitrate_wired_or`] — the plain LRG column of the 2D switch and
//!   the Hi-Rise local switch (Fig. 6): `n` priority lines, one per
//!   contender.
//! * [`arbitrate_clrg_column`] — the CLRG inter-layer cross-point
//!   (Fig. 7): the lines are grouped per priority class (e.g. 3 groups
//!   of 13 for the 4-channel 64-radix switch, lines 0–38). Each
//!   cross-point's Priority Select Muxes pull down *every* line of
//!   lower-priority class groups, drive its LRG vector onto its own
//!   class's group, and leave higher-priority groups untouched; it
//!   polls its own line within its own class group (Mux2).
//!
//! These functions exist to validate the behavioural arbiters: property
//! tests assert they produce identical winners to
//! [`MatrixArbiter::grant`] and to the class-then-LRG rule of the CLRG
//! sub-block, for arbitrary priority states.

use crate::arbiter::matrix::MatrixArbiter;

/// Simulates the wired-OR priority-line arbitration of one output
/// column (Fig. 6): returns the winning requestor, or `None` when
/// `requests` is empty.
///
/// `priority` supplies the cross-points' priority vectors (bit `j` of
/// row `i` = "i outranks j", exactly what the hardware stores).
///
/// # Panics
///
/// Panics if a request index is out of range, or if the priority state
/// is not a total order (no line, or more than one line, survives) —
/// which a correct LRG update sequence can never produce.
pub fn arbitrate_wired_or(requests: &[usize], priority: &MatrixArbiter) -> Option<usize> {
    let n = priority.len();
    if requests.is_empty() {
        return None;
    }
    // Precharge all lines high.
    let mut lines = vec![true; n];
    // Evaluate: each requestor pulls down the lines of contenders it
    // outranks.
    for &requestor in requests {
        assert!(requestor < n, "requestor {requestor} out of range");
        for (other, line) in lines.iter_mut().enumerate() {
            if other != requestor && priority.outranks(requestor, other) {
                *line = false;
            }
        }
    }
    // Sense: a requestor wins iff its own line stayed high.
    let mut winner = None;
    for &requestor in requests {
        if lines[requestor] {
            assert!(
                winner.is_none() || winner == Some(requestor),
                "priority state is not a total order: two lines survived"
            );
            winner = Some(requestor);
        }
    }
    assert!(
        winner.is_some(),
        "priority state is not a total order: no line survived"
    );
    winner
}

/// One contender at a CLRG inter-layer cross-point column: its slot
/// (L2LC or local intermediate) and the priority class of the primary
/// input it carries (the class counter selected by Mux1 in Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassedContender {
    /// Sub-block slot, `0..slots`.
    pub slot: usize,
    /// Priority class (0 = highest), `0..classes`.
    pub class: u8,
}

/// Simulates the class-grouped priority-line arbitration of a CLRG
/// sub-block column (Fig. 7): returns the index into `contenders` of
/// the winner, or `None` when empty.
///
/// `slot_lrg` is the slot-level LRG matrix (the "13-bit LRG" of the
/// figure); `classes` is the number of class groups on the bus.
///
/// # Panics
///
/// Panics if a slot or class is out of range, two contenders share a
/// slot, or the line state resolves to anything but a unique winner.
pub fn arbitrate_clrg_column(
    contenders: &[ClassedContender],
    slot_lrg: &MatrixArbiter,
    classes: u8,
) -> Option<usize> {
    let slots = slot_lrg.len();
    if contenders.is_empty() {
        return None;
    }
    {
        let mut seen = vec![false; slots];
        for contender in contenders {
            assert!(
                contender.slot < slots,
                "slot {} out of range",
                contender.slot
            );
            assert!(!seen[contender.slot], "duplicate contender slot");
            seen[contender.slot] = true;
        }
    }
    // The priority bus: `classes` groups of `slots` lines, all
    // precharged high. Line index = class * slots + slot.
    let mut lines = vec![true; classes as usize * slots];
    for contender in contenders {
        assert!(
            contender.slot < slots,
            "slot {} out of range",
            contender.slot
        );
        assert!(
            contender.class < classes,
            "class {} out of range",
            contender.class
        );
        // PSMs: pull down every line of all lower-priority (higher
        // numbered) class groups...
        for group in (contender.class + 1)..classes {
            for line in 0..slots {
                lines[group as usize * slots + line] = false;
            }
        }
        // ...and drive the LRG vector onto this contender's own group.
        let base = contender.class as usize * slots;
        for other in 0..slots {
            if other != contender.slot && slot_lrg.outranks(contender.slot, other) {
                lines[base + other] = false;
            }
        }
        // Higher-priority groups: apply '0' (leave precharged).
    }
    // Sense: each contender polls its own line within its own class
    // group (Mux2 selects the group from the class counter).
    let mut winner = None;
    for (index, contender) in contenders.iter().enumerate() {
        if lines[contender.class as usize * slots + contender.slot] {
            assert!(
                winner.is_none(),
                "CLRG column resolved to more than one winner"
            );
            winner = Some(index);
        }
    }
    assert!(winner.is_some(), "CLRG column resolved to no winner");
    winner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wired_or_matches_matrix_grant() {
        let mut arbiter = MatrixArbiter::new(8);
        // Exercise several LRG states.
        for state in 0..10 {
            let requests: Vec<usize> = (0..8).filter(|i| (i + state) % 3 != 0).collect();
            assert_eq!(
                arbitrate_wired_or(&requests, &arbiter),
                arbiter.grant(&requests),
                "state {state}"
            );
            if let Some(w) = arbiter.grant(&requests) {
                arbiter.update(w);
            }
        }
    }

    #[test]
    fn wired_or_empty_is_none() {
        let arbiter = MatrixArbiter::new(4);
        assert_eq!(arbitrate_wired_or(&[], &arbiter), None);
    }

    #[test]
    fn clrg_column_class_beats_lrg() {
        let lrg = MatrixArbiter::new(13);
        // Slot 0 outranks slot 5 in LRG, but slot 5 is in a better class.
        let contenders = [
            ClassedContender { slot: 0, class: 1 },
            ClassedContender { slot: 5, class: 0 },
        ];
        assert_eq!(arbitrate_clrg_column(&contenders, &lrg, 3), Some(1));
    }

    #[test]
    fn clrg_column_lrg_breaks_class_ties() {
        let lrg = MatrixArbiter::new(13);
        let contenders = [
            ClassedContender { slot: 7, class: 1 },
            ClassedContender { slot: 2, class: 1 },
        ];
        // Default order: lower slot outranks.
        assert_eq!(arbitrate_clrg_column(&contenders, &lrg, 3), Some(1));
    }

    #[test]
    fn clrg_column_single_contender_wins() {
        let lrg = MatrixArbiter::new(4);
        let contenders = [ClassedContender { slot: 3, class: 2 }];
        assert_eq!(arbitrate_clrg_column(&contenders, &lrg, 3), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate contender slot")]
    fn clrg_column_rejects_duplicate_slots() {
        let lrg = MatrixArbiter::new(4);
        let contenders = [
            ClassedContender { slot: 1, class: 0 },
            ClassedContender { slot: 1, class: 1 },
        ];
        let _ = arbitrate_clrg_column(&contenders, &lrg, 3);
    }
}
