//! Model-based property tests for the arbitration primitives: the
//! matrix arbiter is checked against an explicit least-recently-granted
//! list model, the bit set against `HashSet`, and the CLRG counters
//! against their ordering invariants. Cases are generated from the
//! workspace's internal seeded PRNG so every failure is reproducible.

use hirise_core::rng::{Rng, SeedableRng, SliceRandom, StdRng};
use hirise_core::{BitSet, ClrgState, MatrixArbiter};
use std::collections::HashSet;

/// Reference model of LRG: an explicit priority list, front = highest.
#[derive(Clone, Debug)]
struct LrgModel {
    order: Vec<usize>,
}

impl LrgModel {
    fn new(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
        }
    }

    fn grant(&self, requests: &[usize]) -> Option<usize> {
        self.order
            .iter()
            .copied()
            .find(|candidate| requests.contains(candidate))
    }

    fn update(&mut self, winner: usize) {
        self.order.retain(|&x| x != winner);
        self.order.push(winner);
    }
}

const CASES: u64 = 128;

/// The matrix arbiter agrees with the list model on every grant across
/// an arbitrary interleaving of grants and updates.
#[test]
fn matrix_arbiter_matches_list_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x11A7 + seed);
        let n = rng.gen_range(2..24usize);
        let mut arbiter = MatrixArbiter::new(n);
        let mut model = LrgModel::new(n);
        let steps = rng.gen_range(1..40usize);
        for _ in 0..steps {
            let n_req = rng.gen_range(1..12usize);
            let requests: Vec<usize> = (0..n_req).map(|_| rng.gen_range(0..n)).collect();
            let got = arbiter.grant(&requests);
            let expected = model.grant(&requests);
            assert_eq!(got, expected, "seed {seed}");
            if rng.gen_bool(0.5) {
                if let Some(winner) = got {
                    arbiter.update(winner);
                    model.update(winner);
                }
            }
        }
    }
}

/// Grants are always members of the request set, and total order means a
/// unique winner always exists for non-empty requests.
#[test]
fn matrix_grant_is_a_requestor() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6EA7 + seed);
        let n = rng.gen_range(1..32usize);
        let mut arbiter = MatrixArbiter::new(n);
        for _ in 0..rng.gen_range(0..16usize) {
            arbiter.update(rng.gen_range(0..n));
        }
        let n_req = rng.gen_range(0..16usize);
        let requests: Vec<usize> = (0..n_req).map(|_| rng.gen_range(0..n)).collect();
        match arbiter.grant(&requests) {
            Some(winner) => assert!(requests.contains(&winner), "seed {seed}"),
            None => assert!(requests.is_empty(), "seed {seed}"),
        }
    }
}

/// BitSet behaves like a HashSet under inserts and removes.
#[test]
fn bitset_matches_hashset() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB175 + seed);
        let capacity = rng.gen_range(1..200usize);
        let mut bits = BitSet::new(capacity);
        let mut model: HashSet<usize> = HashSet::new();
        for _ in 0..rng.gen_range(0..60usize) {
            let index = rng.gen_range(0..capacity);
            if rng.gen_bool(0.5) {
                bits.insert(index);
                model.insert(index);
            } else {
                bits.remove(index);
                model.remove(&index);
            }
        }
        assert_eq!(bits.len(), model.len(), "seed {seed}");
        assert_eq!(bits.is_empty(), model.is_empty(), "seed {seed}");
        let mut from_bits: Vec<usize> = bits.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_bits.sort_unstable();
        from_model.sort_unstable();
        assert_eq!(from_bits, from_model, "seed {seed}");
    }
}

/// CLRG counters stay within the class range, and halving preserves the
/// relative order of any two counters.
#[test]
fn clrg_counters_stay_ordered() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC126 + seed);
        let n = rng.gen_range(2..32usize);
        let classes = rng.gen_range(2..6u8);
        let mut clrg = ClrgState::new(n, classes);
        for _ in 0..rng.gen_range(1..200usize) {
            let input = rng.gen_range(0..n);
            // Snapshot relative order of all pairs before the win.
            let before: Vec<u8> = (0..n).map(|i| clrg.class_of(i)).collect();
            clrg.record_win(input);
            for i in 0..n {
                let class = clrg.class_of(i);
                assert!(class < classes, "seed {seed}: class {class} out of range");
                // Only the winner's class may have increased relative to
                // others; non-winners never gain class from halving more
                // than any other non-winner (order preserved).
                if i != input {
                    for j in 0..n {
                        if j != input && before[i] < before[j] {
                            assert!(
                                clrg.class_of(i) <= clrg.class_of(j),
                                "seed {seed}: halving broke the order of {i} vs {j}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// CLRG saturation semantics, checked step by step: a win increments
/// the winner's counter; a win at the saturated class first halves
/// every counter in the sub-block (the `Div2` block of Fig. 7), so the
/// winner lands exactly at `max/2 + 1`; non-winners never gain class
/// from someone else's win.
#[test]
fn clrg_saturation_halves_then_increments() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A70 + seed);
        let n = rng.gen_range(2..24usize);
        let classes = rng.gen_range(2..6u8);
        let max = classes - 1;
        let mut clrg = ClrgState::new(n, classes);
        for _ in 0..rng.gen_range(1..300usize) {
            let winner = rng.gen_range(0..n);
            let before: Vec<u8> = (0..n).map(|i| clrg.class_of(i)).collect();
            clrg.record_win(winner);
            if before[winner] == max {
                // Saturated: everyone halves, then the winner increments.
                assert_eq!(
                    clrg.class_of(winner),
                    max / 2 + 1,
                    "seed {seed}: winner class after saturation"
                );
                for (i, &class_before) in before.iter().enumerate() {
                    if i != winner {
                        assert_eq!(
                            clrg.class_of(i),
                            class_before / 2,
                            "seed {seed}: non-winner {i} not halved"
                        );
                    }
                }
            } else {
                assert_eq!(clrg.class_of(winner), before[winner] + 1, "seed {seed}");
                for (i, &class_before) in before.iter().enumerate() {
                    if i != winner {
                        assert_eq!(
                            clrg.class_of(i),
                            class_before,
                            "seed {seed}: bystander moved"
                        );
                    }
                }
            }
        }
    }
}

/// Decay forgives hogs: once a saturated input stops winning, other
/// inputs' wins eventually halve it back below the worst class, so a
/// past burst cannot penalise it forever.
#[test]
fn clrg_decay_forgives_past_bursts() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDECA + seed);
        let n = rng.gen_range(2..16usize);
        let classes = rng.gen_range(2..6u8);
        let max = classes - 1;
        let mut clrg = ClrgState::new(n, classes);
        let hog = rng.gen_range(0..n);
        for _ in 0..max {
            clrg.record_win(hog);
        }
        assert_eq!(clrg.class_of(hog), max, "seed {seed}: hog saturated");
        // Another input now wins repeatedly; each of its saturations
        // halves the hog. The hog must leave the worst class within a
        // bounded number of foreign wins.
        let rival = (hog + 1) % n;
        let mut foreign_wins = 0;
        while clrg.class_of(hog) == max {
            clrg.record_win(rival);
            foreign_wins += 1;
            assert!(
                foreign_wins <= 2 * classes as usize,
                "seed {seed}: hog stuck at class {max} after {foreign_wins} rival wins"
            );
        }
        // And without halving it would have been stuck forever.
        let mut sticky = ClrgState::new(n, classes).without_halving();
        for _ in 0..2 * max {
            sticky.record_win(hog);
        }
        for _ in 0..4 * classes as usize {
            sticky.record_win(rival);
        }
        assert_eq!(
            sticky.class_of(hog),
            max,
            "seed {seed}: sticky mode must not decay"
        );
    }
}

/// `MatrixArbiter::grant` is pure: Hi-Rise calls it speculatively in
/// phase 1 and only commits `update` when the speculative winner also
/// wins the inter-layer stage (§III-B1). Uncommitted grants must leak
/// no state — the same requests yield the same winner until a commit.
#[test]
fn uncommitted_grants_leak_no_state() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDEFE + seed);
        let n = rng.gen_range(2..24usize);
        let mut arbiter = MatrixArbiter::new(n);
        for _ in 0..rng.gen_range(1..30usize) {
            let n_req = rng.gen_range(1..12usize);
            let requests: Vec<usize> = (0..n_req).map(|_| rng.gen_range(0..n)).collect();
            let order_before = arbiter.priority_order();
            let first = arbiter.grant(&requests);
            // Phase-1 losers retry: arbitrary re-grants change nothing.
            for _ in 0..rng.gen_range(1..4usize) {
                assert_eq!(arbiter.grant(&requests), first, "seed {seed}");
            }
            assert_eq!(arbiter.priority_order(), order_before, "seed {seed}");
            // The final winner commits only sometimes (deferred commit).
            if rng.gen_bool(0.5) {
                if let Some(winner) = first {
                    arbiter.update(winner);
                    // Committed winner drops to the lowest priority.
                    assert_eq!(
                        arbiter.priority_order().last().copied(),
                        Some(winner),
                        "seed {seed}"
                    );
                }
            }
        }
    }
}

/// Under persistent contention with every final winner committing, LRG
/// serves the contenders in strict round-robin: each window of `k`
/// consecutive commits contains all `k` contenders exactly once.
#[test]
fn committed_lrg_is_round_robin_under_persistent_contention() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x206D + seed);
        let n = rng.gen_range(2..20usize);
        let mut arbiter = MatrixArbiter::new(n);
        // Random warmup commits to reach an arbitrary LRG state.
        for _ in 0..rng.gen_range(0..24usize) {
            arbiter.update(rng.gen_range(0..n));
        }
        let k = rng.gen_range(2..n + 1);
        let mut contenders: Vec<usize> = (0..n).collect();
        contenders.shuffle(&mut rng);
        contenders.truncate(k);
        let mut wins = Vec::new();
        for _ in 0..3 * k {
            let winner = arbiter.grant(&contenders).expect("non-empty contention");
            arbiter.update(winner);
            wins.push(winner);
        }
        for window in wins.windows(k) {
            let mut sorted: Vec<usize> = window.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                k,
                "seed {seed}: window {window:?} repeats a winner before \
                 serving all {k} contenders"
            );
        }
    }
}

/// Seeded matrix arbiters honour their initial order exactly.
#[test]
fn seeded_order_is_respected() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0266 + seed);
        let n = rng.gen_range(2..16usize);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let arbiter = MatrixArbiter::with_order(&order);
        assert_eq!(arbiter.priority_order(), order, "seed {seed}");
        // The top of the order wins against everyone.
        let all: Vec<usize> = (0..n).collect();
        assert_eq!(arbiter.grant(&all), Some(order[0]), "seed {seed}");
    }
}
