//! Model-based property tests for the arbitration primitives: the
//! matrix arbiter is checked against an explicit least-recently-granted
//! list model, the bit set against `HashSet`, and the CLRG counters
//! against their ordering invariants.

use hirise_core::{BitSet, ClrgState, MatrixArbiter};
use proptest::prelude::*;
use std::collections::HashSet;

/// Reference model of LRG: an explicit priority list, front = highest.
#[derive(Clone, Debug)]
struct LrgModel {
    order: Vec<usize>,
}

impl LrgModel {
    fn new(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
        }
    }

    fn grant(&self, requests: &[usize]) -> Option<usize> {
        self.order
            .iter()
            .copied()
            .find(|candidate| requests.contains(candidate))
    }

    fn update(&mut self, winner: usize) {
        self.order.retain(|&x| x != winner);
        self.order.push(winner);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The matrix arbiter agrees with the list model on every grant
    /// across an arbitrary interleaving of grants and updates.
    #[test]
    fn matrix_arbiter_matches_list_model(
        n in 2usize..24,
        script in proptest::collection::vec(
            (proptest::collection::vec(0usize..24, 1..12), any::<bool>()),
            1..40,
        ),
    ) {
        let mut arbiter = MatrixArbiter::new(n);
        let mut model = LrgModel::new(n);
        for (raw_requests, do_update) in script {
            let requests: Vec<usize> =
                raw_requests.into_iter().map(|r| r % n).collect();
            let got = arbiter.grant(&requests);
            let expected = model.grant(&requests);
            prop_assert_eq!(got, expected);
            if do_update {
                if let Some(winner) = got {
                    arbiter.update(winner);
                    model.update(winner);
                }
            }
        }
    }

    /// Grants are always members of the request set, and total order
    /// means a unique winner always exists for non-empty requests.
    #[test]
    fn matrix_grant_is_a_requestor(
        n in 1usize..32,
        raw in proptest::collection::vec(0usize..32, 0..16),
        updates in proptest::collection::vec(0usize..32, 0..16),
    ) {
        let mut arbiter = MatrixArbiter::new(n);
        for u in updates {
            arbiter.update(u % n);
        }
        let requests: Vec<usize> = raw.into_iter().map(|r| r % n).collect();
        match arbiter.grant(&requests) {
            Some(winner) => prop_assert!(requests.contains(&winner)),
            None => prop_assert!(requests.is_empty()),
        }
    }

    /// BitSet behaves like a HashSet under inserts and removes.
    #[test]
    fn bitset_matches_hashset(
        capacity in 1usize..200,
        ops in proptest::collection::vec((any::<bool>(), 0usize..200), 0..60),
    ) {
        let mut bits = BitSet::new(capacity);
        let mut model: HashSet<usize> = HashSet::new();
        for (insert, raw) in ops {
            let index = raw % capacity;
            if insert {
                bits.insert(index);
                model.insert(index);
            } else {
                bits.remove(index);
                model.remove(&index);
            }
        }
        prop_assert_eq!(bits.len(), model.len());
        prop_assert_eq!(bits.is_empty(), model.is_empty());
        let mut from_bits: Vec<usize> = bits.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_bits.sort_unstable();
        from_model.sort_unstable();
        prop_assert_eq!(from_bits, from_model);
    }

    /// CLRG counters stay within the class range, and halving preserves
    /// the relative order of any two counters.
    #[test]
    fn clrg_counters_stay_ordered(
        n in 2usize..32,
        classes in 2u8..6,
        wins in proptest::collection::vec(0usize..32, 1..200),
    ) {
        let mut clrg = ClrgState::new(n, classes);
        let mut model_wins = vec![0u64; n];
        for raw in wins {
            let input = raw % n;
            // Snapshot relative order of all pairs before the win.
            let before: Vec<u8> = (0..n).map(|i| clrg.class_of(i)).collect();
            clrg.record_win(input);
            model_wins[input] += 1;
            for i in 0..n {
                let class = clrg.class_of(i);
                prop_assert!(class < classes, "class {class} out of range");
                // Only the winner's class may have increased relative to
                // others; non-winners never gain class from halving more
                // than any other non-winner (order preserved).
                if i != input {
                    for j in 0..n {
                        if j != input && before[i] < before[j] {
                            prop_assert!(
                                clrg.class_of(i) <= clrg.class_of(j),
                                "halving broke the order of {i} vs {j}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Seeded matrix arbiters honour their initial order exactly.
    #[test]
    fn seeded_order_is_respected(order in Just(()).prop_flat_map(|()| {
        (2usize..16).prop_flat_map(|n| Just((0..n).collect::<Vec<_>>()).prop_shuffle())
    })) {
        let arbiter = MatrixArbiter::with_order(&order);
        prop_assert_eq!(arbiter.priority_order(), order.clone());
        // The top of the order wins against everyone.
        let all: Vec<usize> = (0..order.len()).collect();
        prop_assert_eq!(arbiter.grant(&all), Some(order[0]));
    }
}
