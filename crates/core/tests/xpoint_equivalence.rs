//! Property tests proving the signal-level cross-point circuits (§IV,
//! Figs. 6 and 7) implement exactly the behavioural arbitration rules:
//! wired-OR priority lines ≡ matrix-arbiter grant, and the class-grouped
//! CLRG bus ≡ best-class-then-LRG.

use hirise_core::{arbitrate_clrg_column, arbitrate_wired_or, ClassedContender, MatrixArbiter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fig. 6 circuit == `MatrixArbiter::grant`, for every reachable
    /// LRG state and request set.
    #[test]
    fn wired_or_equals_behavioural_grant(
        n in 1usize..24,
        updates in proptest::collection::vec(0usize..24, 0..32),
        raw_requests in proptest::collection::vec(0usize..24, 0..16),
    ) {
        let mut arbiter = MatrixArbiter::new(n);
        for u in updates {
            arbiter.update(u % n);
        }
        let requests: Vec<usize> = raw_requests.into_iter().map(|r| r % n).collect();
        prop_assert_eq!(
            arbitrate_wired_or(&requests, &arbiter),
            arbiter.grant(&requests)
        );
    }

    /// Fig. 7 circuit == "lowest class wins, slot-LRG breaks ties", for
    /// every reachable slot-LRG state and class assignment.
    #[test]
    fn clrg_column_equals_behavioural_rule(
        slots in 2usize..16,
        classes in 2u8..5,
        updates in proptest::collection::vec(0usize..16, 0..24),
        picks in proptest::collection::vec((0usize..16, 0u8..5), 1..12),
    ) {
        let mut lrg = MatrixArbiter::new(slots);
        for u in updates {
            lrg.update(u % slots);
        }
        // Build a duplicate-free contender set.
        let mut used = vec![false; slots];
        let mut contenders = Vec::new();
        for (raw_slot, raw_class) in picks {
            let slot = raw_slot % slots;
            if !used[slot] {
                used[slot] = true;
                contenders.push(ClassedContender {
                    slot,
                    class: raw_class % classes,
                });
            }
        }

        // Behavioural rule: best class, then LRG among that class.
        let best = contenders.iter().map(|c| c.class).min().unwrap();
        let candidate_slots: Vec<usize> = contenders
            .iter()
            .filter(|c| c.class == best)
            .map(|c| c.slot)
            .collect();
        let winning_slot = lrg.grant(&candidate_slots).unwrap();
        let expected = contenders.iter().position(|c| c.slot == winning_slot);

        prop_assert_eq!(
            arbitrate_clrg_column(&contenders, &lrg, classes),
            expected
        );
    }
}
