//! Property tests proving the signal-level cross-point circuits (§IV,
//! Figs. 6 and 7) implement exactly the behavioural arbitration rules:
//! wired-OR priority lines ≡ matrix-arbiter grant, and the class-grouped
//! CLRG bus ≡ best-class-then-LRG. Cases come from the workspace's
//! internal seeded PRNG so every failure is reproducible.

use hirise_core::rng::{Rng, SeedableRng, StdRng};
use hirise_core::{arbitrate_clrg_column, arbitrate_wired_or, ClassedContender, MatrixArbiter};

const CASES: u64 = 256;

/// Fig. 6 circuit == `MatrixArbiter::grant`, for every reachable LRG
/// state and request set.
#[test]
fn wired_or_equals_behavioural_grant() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0166 + seed);
        let n = rng.gen_range(1..24usize);
        let mut arbiter = MatrixArbiter::new(n);
        for _ in 0..rng.gen_range(0..32usize) {
            arbiter.update(rng.gen_range(0..n));
        }
        let n_req = rng.gen_range(0..16usize);
        let requests: Vec<usize> = (0..n_req).map(|_| rng.gen_range(0..n)).collect();
        assert_eq!(
            arbitrate_wired_or(&requests, &arbiter),
            arbiter.grant(&requests),
            "seed {seed}"
        );
    }
}

/// Fig. 7 circuit == "lowest class wins, slot-LRG breaks ties", for
/// every reachable slot-LRG state and class assignment.
#[test]
fn clrg_column_equals_behavioural_rule() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC01B + seed);
        let slots = rng.gen_range(2..16usize);
        let classes = rng.gen_range(2..5u8);
        let mut lrg = MatrixArbiter::new(slots);
        for _ in 0..rng.gen_range(0..24usize) {
            lrg.update(rng.gen_range(0..slots));
        }
        // Build a duplicate-free, non-empty contender set.
        let mut used = vec![false; slots];
        let mut contenders = Vec::new();
        for _ in 0..rng.gen_range(1..12usize) {
            let slot = rng.gen_range(0..slots);
            if !used[slot] {
                used[slot] = true;
                contenders.push(ClassedContender {
                    slot,
                    class: rng.gen_range(0..classes),
                });
            }
        }
        if contenders.is_empty() {
            continue;
        }

        // Behavioural rule: best class, then LRG among that class.
        let best = contenders.iter().map(|c| c.class).min().unwrap();
        let candidate_slots: Vec<usize> = contenders
            .iter()
            .filter(|c| c.class == best)
            .map(|c| c.slot)
            .collect();
        let winning_slot = lrg.grant(&candidate_slots).unwrap();
        let expected = contenders.iter().position(|c| c.slot == winning_slot);

        assert_eq!(
            arbitrate_clrg_column(&contenders, &lrg, classes),
            expected,
            "seed {seed}"
        );
    }
}
