//! Shared command-line error reporting for the workspace binaries.
//!
//! A bad flag or value is an operator mistake, not a program bug, so
//! the binaries report it as a normal CLI would: a one-line `error:`
//! message plus the usage synopsis on stderr, then exit status 2
//! (the conventional "usage error" code). Panicking would bury the
//! message under a backtrace pointer and report exit status 101.
//!
//! Lives in `hirise-lab` (the lowest crate with binaries) and is
//! re-exported as `hirise_bench::args` for the experiment harness.

/// Prints `error: {message}` and the usage synopsis to stderr, then
/// exits with status 2.
pub fn arg_error(message: impl std::fmt::Display, usage: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Parses a flag's value, exiting via [`arg_error`] with the flag name
/// and offending text when it does not parse.
pub fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: &str, usage: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| arg_error(format!("invalid value {value:?} for {flag}"), usage))
}

/// Returns the flag's value from the argument iterator, exiting via
/// [`arg_error`] when it is missing.
pub fn flag_value(flag: &str, args: &mut impl Iterator<Item = String>, usage: &str) -> String {
    args.next()
        .unwrap_or_else(|| arg_error(format!("{flag} needs a value"), usage))
}
