//! CI smoke check and speedup probe for the campaign runner.
//!
//! Default mode runs a small two-fabric × two-load campaign on two
//! threads, writes its JSONL telemetry, then re-reads and validates
//! every line — exercising the whole spec → runner → sink → parser
//! path in a few seconds.
//!
//! `--speedup` runs a Fig. 10-scale campaign (five 64-radix fabrics ×
//! seven loads at full methodology cycles) once on one thread and once
//! on N threads, asserts the two JSONL files are byte-identical, and
//! reports the wall-clock speedup.
//!
//! `--faults` runs a tiny campaign over all four fabric families with
//! a fault axis (fault-free plus one dead TSV bundle) under uniform and
//! RPC traffic at 1, 2 and 8 threads, asserts the three JSONL files are
//! byte-identical, and checks every faulty record stayed
//! invariant-clean while still delivering traffic.
//!
//! `--shards` runs small mesh and dragonfly campaigns (each with a
//! fault axis) once per shard count and asserts the JSONL files —
//! headers included, since the digest excludes the shard knob — are
//! byte-for-byte identical: the CI gate on the sharded engine's
//! determinism contract.
//!
//! Usage: `lab_smoke [--threads N] [--out PATH] [--speedup | --faults | --shards]`

use hirise_core::{ArbitrationScheme, HiRiseConfig, MatchPolicy};
use hirise_lab::args::{arg_error, flag_value, parse_flag_value};
use hirise_lab::{
    default_threads, json, CampaignSpec, FabricSpec, FaultSpec, PatternSpec, Silent, SimParams,
    Stderr, Topology,
};
use std::path::PathBuf;
use std::time::Instant;

/// Runtime failures (unwritable output path, torn telemetry, a record
/// that does not validate) are operator-visible errors, not program
/// bugs: report them plainly and exit 1 instead of panicking.
fn fail(what: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}");
    std::process::exit(1);
}

const USAGE: &str = "lab_smoke [--threads N] [--out PATH] [--speedup | --faults | --shards]";

enum Mode {
    Smoke,
    Speedup,
    Faults,
    Shards,
}

fn parse_args() -> (usize, PathBuf, Mode) {
    let mut threads = 2;
    let mut out =
        std::env::temp_dir().join(format!("hirise-lab-smoke-{}.jsonl", std::process::id()));
    let mut mode = Mode::Smoke;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = parse_flag_value(
                    "--threads",
                    &flag_value("--threads", &mut args, USAGE),
                    USAGE,
                );
                if threads == 0 {
                    arg_error("--threads needs a positive integer", USAGE);
                }
            }
            "--out" => {
                out = PathBuf::from(flag_value("--out", &mut args, USAGE));
            }
            "--speedup" => mode = Mode::Speedup,
            "--faults" => mode = Mode::Faults,
            "--shards" => mode = Mode::Shards,
            other => arg_error(format!("unknown argument {other:?}"), USAGE),
        }
    }
    (threads, out, mode)
}

/// Validates a finalized campaign file: the header and every record
/// must parse, record count must match, and job indices must be 0..n.
fn validate_jsonl(path: &std::path::Path, expected_jobs: usize) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read telemetry {}: {e}", path.display())));
    let mut lines = content.lines();
    let header = lines
        .next()
        .unwrap_or_else(|| fail("telemetry file is empty"));
    let header = json::parse(header).unwrap_or_else(|e| fail(format!("bad header line: {e}")));
    assert_eq!(
        header.get("jobs").and_then(json::Json::as_u64),
        Some(expected_jobs as u64),
        "header job count"
    );
    let mut count = 0usize;
    for line in lines {
        let record =
            json::parse(line).unwrap_or_else(|e| fail(format!("record {count} is torn: {e}")));
        assert_eq!(
            record.get("job").and_then(json::Json::as_u64),
            Some(count as u64),
            "records are sorted by job index"
        );
        for field in ["accepted_rate", "avg_latency_cycles", "violations", "hist"] {
            assert!(record.get(field).is_some(), "record has {field}");
        }
        count += 1;
    }
    assert_eq!(count, expected_jobs, "one record per job");
}

fn smoke(threads: usize, out: PathBuf) {
    let spec = CampaignSpec::new("ci-smoke")
        .fabric(FabricSpec::Flat2d { radix: 16 })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(16, 2)
                .channel_multiplicity(2)
                .build()
                .unwrap_or_else(|e| fail(format!("invalid built-in configuration: {e}"))),
        ))
        .fabric(FabricSpec::Matching {
            radix: 16,
            policy: MatchPolicy::Islip { iterations: 2 },
        })
        .pattern(PatternSpec::Uniform)
        .pattern(PatternSpec::Incast { fanin: 4 })
        .loads([0.05, 0.15])
        .sim(SimParams::quick());
    let jobs = spec.jobs().len();
    let _ = std::fs::remove_file(&out);

    let start = Instant::now();
    let outcome = spec
        .run_to_file(&out, threads, &Stderr)
        .unwrap_or_else(|e| fail(format!("campaign failed: {e}")));
    assert_eq!(outcome.ran, jobs);
    validate_jsonl(&out, jobs);
    println!(
        "smoke ok: {jobs} jobs on {threads} threads in {:.2}s, telemetry at {}",
        start.elapsed().as_secs_f64(),
        out.display()
    );
}

/// The Fig. 10 grid: 2D, folded, and the three Hi-Rise channel
/// multiplicities at 64 radix, uniform random, seven loads.
fn fig10_scale_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name)
        .fabric(FabricSpec::Flat2d { radix: 64 })
        .fabric(FabricSpec::Folded {
            radix: 64,
            layers: 4,
        });
    for c in [4usize, 2, 1] {
        spec = spec.fabric(FabricSpec::hirise(
            HiRiseConfig::builder(64, 4)
                .channel_multiplicity(c)
                .scheme(ArbitrationScheme::LayerToLayerLrg)
                .build()
                .unwrap_or_else(|e| fail(format!("invalid built-in configuration: {e}"))),
        ));
    }
    spec.pattern(PatternSpec::Uniform)
        .loads((1..=7).map(|i| 0.02 * i as f64))
        .sim(SimParams::full())
}

fn speedup(threads: usize, out: PathBuf) {
    let threads = threads.max(default_threads().min(8));
    let spec = fig10_scale_spec("fig10-speedup");
    let jobs = spec.jobs().len();
    let serial_out = out.with_extension("t1.jsonl");
    let parallel_out = out.with_extension(format!("t{threads}.jsonl"));
    let _ = std::fs::remove_file(&serial_out);
    let _ = std::fs::remove_file(&parallel_out);

    eprintln!("running {jobs} jobs on 1 thread...");
    let start = Instant::now();
    spec.run_to_file(&serial_out, 1, &Silent)
        .unwrap_or_else(|e| fail(format!("serial run failed: {e}")));
    let serial_secs = start.elapsed().as_secs_f64();

    eprintln!("running {jobs} jobs on {threads} threads...");
    let start = Instant::now();
    spec.run_to_file(&parallel_out, threads, &Silent)
        .unwrap_or_else(|e| fail(format!("parallel run failed: {e}")));
    let parallel_secs = start.elapsed().as_secs_f64();

    let a = std::fs::read(&serial_out)
        .unwrap_or_else(|e| fail(format!("cannot read serial telemetry: {e}")));
    let b = std::fs::read(&parallel_out)
        .unwrap_or_else(|e| fail(format!("cannot read parallel telemetry: {e}")));
    assert_eq!(
        a, b,
        "1-thread and {threads}-thread JSONL must be byte-identical"
    );
    validate_jsonl(&serial_out, jobs);

    println!(
        "speedup ok: {jobs} jobs, 1 thread {serial_secs:.1}s vs {threads} threads \
         {parallel_secs:.1}s -> {:.2}x, outputs byte-identical ({} bytes)",
        serial_secs / parallel_secs,
        a.len()
    );
}

/// A tiny fault campaign across all four fabric families — fault-free
/// plus one dead TSV bundle — run at 1, 2 and 8 threads, under uniform
/// and RPC request/response traffic. Asserts the three JSONL files are
/// byte-identical (fault sampling and the RPC schedule are pure
/// functions of the job seed), every record is invariant-clean with
/// nonzero deliveries, and the fabrics that model TSVs actually logged
/// fault events.
fn faults(out: PathBuf) {
    let spec = CampaignSpec::new("fault-smoke")
        .fabric(FabricSpec::Flat2d { radix: 16 })
        .fabric(FabricSpec::Folded {
            radix: 16,
            layers: 4,
        })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(16, 4)
                .channel_multiplicity(2)
                .build()
                .unwrap_or_else(|e| fail(format!("invalid built-in configuration: {e}"))),
        ))
        .fabric(FabricSpec::Matching {
            radix: 16,
            policy: MatchPolicy::Islip { iterations: 2 },
        })
        .pattern(PatternSpec::Uniform)
        .pattern(PatternSpec::Rpc { delay: 8 })
        .loads([0.1])
        .fault(FaultSpec::none())
        .fault(FaultSpec::dead_tsv_bundles(1))
        .sim(SimParams::quick());
    let jobs = spec.jobs().len();

    let start = Instant::now();
    let mut reference: Option<Vec<u8>> = None;
    for threads in [1usize, 2, 8] {
        let path = out.with_extension(format!("faults-t{threads}.jsonl"));
        let _ = std::fs::remove_file(&path);
        spec.run_to_file(&path, threads, &Silent)
            .unwrap_or_else(|e| fail(format!("fault campaign failed: {e}")));
        validate_jsonl(&path, jobs);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| fail(format!("cannot read fault telemetry: {e}")));
        if let Some(reference) = &reference {
            assert_eq!(
                reference, &bytes,
                "fault-campaign JSONL must be byte-identical at any thread count"
            );
        } else {
            reference = Some(bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    let reference = reference.unwrap_or_else(|| fail("no fault campaign ran"));
    let content = String::from_utf8(reference)
        .unwrap_or_else(|e| fail(format!("telemetry is not UTF-8: {e}")));
    let mut faulty_events = 0u64;
    for line in content.lines().skip(1) {
        let record = json::parse(line).unwrap_or_else(|e| fail(format!("record is torn: {e}")));
        let field_str = |key: &str| {
            record
                .get(key)
                .and_then(json::Json::as_str)
                .unwrap_or_else(|| fail(format!("record is missing {key}: {line}")))
                .to_string()
        };
        let field_u64 = |key: &str| {
            record
                .get(key)
                .and_then(json::Json::as_u64)
                .unwrap_or_else(|| fail(format!("record is missing {key}: {line}")))
        };
        let fabric = field_str("fabric");
        let fault = field_str("fault");
        let violations = field_u64("violations");
        let completed = field_u64("completed");
        assert_eq!(violations, 0, "{fabric}/{fault}: invariant violations");
        assert!(completed > 0, "{fabric}/{fault}: no packets delivered");
        if fault != "none" {
            faulty_events += field_u64("fault_events");
        }
    }
    assert!(
        faulty_events > 0,
        "no fabric logged a fault event under the dead-TSV scenario"
    );
    println!(
        "faults ok: {jobs} jobs x 3 thread counts in {:.2}s, byte-identical, \
         all records clean, {faulty_events} fault events logged",
        start.elapsed().as_secs_f64()
    );
}

/// Sharded campaigns at 1 vs several shard counts: headers and every
/// record must be byte-identical, because the shard knob is excluded
/// from the campaign digest and results are invariant to it. Covers a
/// mesh and a dragonfly, both with a fault axis (per-router faults on
/// the mesh, dead wafer links on the dragonfly).
fn shards(out: PathBuf) {
    let hirise16 = || {
        FabricSpec::hirise(
            HiRiseConfig::builder(16, 2)
                .channel_multiplicity(2)
                .build()
                .unwrap_or_else(|e| fail(format!("invalid built-in configuration: {e}"))),
        )
    };
    let mesh = CampaignSpec::new("shard-smoke-mesh")
        .topology(Topology::Mesh {
            cols: 4,
            rows: 2,
            ports_per_direction: 2,
            layer_aware: None,
        })
        .fabric(hirise16())
        .pattern(PatternSpec::Uniform)
        .pattern(PatternSpec::Incast { fanin: 4 })
        .pattern(PatternSpec::Rpc { delay: 8 })
        .pattern(PatternSpec::Diurnal { period: 64 })
        .loads([0.02])
        .fault(FaultSpec::none())
        .fault(FaultSpec::dead_tsv_bundles(1))
        .sim(SimParams::quick());
    let dragonfly = CampaignSpec::new("shard-smoke-dragonfly")
        .topology(Topology::Dragonfly {
            routers_per_group: 4,
            endpoints_per_router: 4,
            global_per_router: 2,
            groups: 9,
            palmtree: false,
        })
        .fabric(hirise16())
        .pattern(PatternSpec::Uniform)
        .loads([0.02])
        .fault(FaultSpec::dead_tsv_bundles(2))
        .sim(SimParams::quick());

    let start = Instant::now();
    for (name, spec) in [("mesh", mesh), ("dragonfly", dragonfly)] {
        let jobs = spec.jobs().len();
        let mut reference: Option<Vec<u8>> = None;
        for shard_count in [1usize, 2, 8] {
            let path = out.with_extension(format!("{name}-s{shard_count}.jsonl"));
            let _ = std::fs::remove_file(&path);
            spec.clone()
                .shards(shard_count)
                .run_to_file(&path, 2, &Silent)
                .unwrap_or_else(|e| fail(format!("{name} shard campaign failed: {e}")));
            validate_jsonl(&path, jobs);
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| fail(format!("cannot read shard telemetry: {e}")));
            if let Some(reference) = &reference {
                assert_eq!(
                    reference, &bytes,
                    "{name} JSONL must be byte-identical at any shard count"
                );
            } else {
                reference = Some(bytes);
            }
            let _ = std::fs::remove_file(&path);
        }
        println!("  {name}: {jobs} jobs x 3 shard counts byte-identical");
    }
    println!(
        "shards ok: mesh and dragonfly campaigns shard-count-invariant in {:.2}s",
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let (threads, out, mode) = parse_args();
    match mode {
        Mode::Speedup => speedup(threads, out),
        Mode::Faults => faults(out),
        Mode::Shards => shards(out),
        Mode::Smoke => smoke(threads, out),
    }
}
