//! Campaign execution: expanding a spec, fanning jobs out over worker
//! threads, and streaming telemetry to the JSONL checkpoint.

use crate::progress::{Progress, Silent};
use crate::result::JobResult;
use crate::runner;
use crate::sink::JsonlSink;
use crate::spec::{CampaignSpec, Job};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// What a [`CampaignSpec::run_to_file`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Jobs in the campaign's expansion.
    pub total: usize,
    /// Jobs executed by this call.
    pub ran: usize,
    /// Jobs skipped because a resumed checkpoint already had them.
    pub skipped: usize,
}

impl CampaignSpec {
    /// Runs the whole campaign on `threads` workers, silently, and
    /// returns the results in job order. Results are bit-identical for
    /// any thread count.
    pub fn run(&self, threads: usize) -> Vec<JobResult> {
        self.run_with_progress(threads, &Silent)
    }

    /// [`run`](Self::run) with a progress observer.
    pub fn run_with_progress(&self, threads: usize, progress: &dyn Progress) -> Vec<JobResult> {
        let jobs = self.jobs();
        runner::execute(self, &jobs, threads, progress, &|_, _| {})
    }

    /// Runs the campaign with JSONL telemetry and checkpoint/resume at
    /// `path`.
    ///
    /// If `path` already holds a checkpoint of this exact campaign
    /// (matching spec digest), its completed jobs are skipped and only
    /// the remainder runs. Completed records are appended and flushed
    /// as they finish; on completion the file is atomically rewritten
    /// in job order, so the final bytes are identical regardless of
    /// thread count or where an earlier run was interrupted.
    pub fn run_to_file(
        &self,
        path: &Path,
        threads: usize,
        progress: &dyn Progress,
    ) -> io::Result<CampaignOutcome> {
        let jobs = self.jobs();
        let sink = JsonlSink::create_or_resume(path, &self.name, self.digest(), jobs.len())?;
        let done: BTreeSet<usize> = sink.completed().collect();
        let pending: Vec<Job> = jobs
            .iter()
            .filter(|j| !done.contains(&j.index))
            .cloned()
            .collect();

        let sink = Mutex::new(sink);
        let sink_errors = Mutex::new(Vec::<io::Error>::new());
        runner::execute(self, &pending, threads, progress, &|_, result| {
            let mut guard = sink.lock().expect("sink poisoned");
            if let Err(e) = guard.record(result) {
                sink_errors.lock().expect("error list poisoned").push(e);
            }
        });
        if let Some(e) = sink_errors
            .into_inner()
            .expect("error list poisoned")
            .into_iter()
            .next()
        {
            return Err(e);
        }

        let mut sink = sink.into_inner().expect("sink poisoned");
        sink.finalize()?;
        Ok(CampaignOutcome {
            total: jobs.len(),
            ran: pending.len(),
            skipped: done.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FabricSpec, PatternSpec, SimParams};

    fn spec() -> CampaignSpec {
        CampaignSpec::new("campaign-test")
            .fabric(FabricSpec::Flat2d { radix: 8 })
            .pattern(PatternSpec::Uniform)
            .loads([0.05, 0.15])
            .sim(SimParams::new().cycles(100, 500, 500))
    }

    #[test]
    fn run_returns_results_in_job_order() {
        let results = spec().run(2);
        assert_eq!(results.len(), 2);
        assert!(results.iter().enumerate().all(|(i, r)| r.index == i));
        assert!(results.iter().all(|r| r.metrics.stable));
    }

    #[test]
    fn run_to_file_reports_outcome_and_resumes() {
        let path =
            std::env::temp_dir().join(format!("hirise-lab-campaign-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let spec = spec();

        let first = spec.run_to_file(&path, 2, &Silent).unwrap();
        assert_eq!(
            first,
            CampaignOutcome {
                total: 2,
                ran: 2,
                skipped: 0
            }
        );
        let second = spec.run_to_file(&path, 2, &Silent).unwrap();
        assert_eq!(
            second,
            CampaignOutcome {
                total: 2,
                ran: 0,
                skipped: 2
            }
        );
        std::fs::remove_file(&path).unwrap();
    }
}
