//! Minimal dependency-free JSON support for the campaign telemetry
//! sinks: enough of a writer to emit JSONL records with stable
//! formatting, and a small recursive-descent parser used by
//! checkpoint/resume and by consumers validating campaign output.
//!
//! The workspace builds offline (no serde); results are flat records,
//! so a ~200-line subset of JSON is all the lab needs. The parser
//! accepts any standard JSON document; the writer only ever emits the
//! subset the lab produces (finite numbers, no exponent notation
//! beyond what Rust's shortest-round-trip float `Display` yields).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer token (no sign, fraction or exponent) that
    /// fits `u64`. Kept separate from [`Json::Num`] so 64-bit values —
    /// campaign master seeds, per-job seeds — survive a parse
    /// round-trip losslessly instead of being squeezed through `f64`.
    Int(u64),
    /// Any other JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (irrelevant for lookup).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric. Integer tokens above 2^53
    /// lose precision here; use [`as_u64`](Self::as_u64) for exact
    /// 64-bit values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    /// Exact for integer tokens of any magnitude up to `u64::MAX`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not emitted by the lab's
                            // writer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A '-' inside an exponent ("1e-3") is consumed above only if it
        // follows 'e'/'E'; handle it here.
        if matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && self.peek() == Some(b'-')
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        // Plain unsigned-integer tokens keep exact 64-bit precision.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes `s` as a JSON string literal (including the quotes) onto
/// `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for JSON output: Rust's shortest round-trip
/// representation, with non-finite values mapped to `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `Display` prints integral floats without a decimal point; that
        // is still a valid JSON number.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_record() {
        let j = parse(r#"{"job":3,"load":0.15,"stable":true,"pattern":"uniform","x":null}"#)
            .expect("valid");
        assert_eq!(j.get("job").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("load").and_then(Json::as_f64), Some(0.15));
        assert_eq!(j.get("stable").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("pattern").and_then(Json::as_str), Some("uniform"));
        assert_eq!(j.get("x"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parses_nested_arrays() {
        let j = parse(r#"{"hist":[[4,10],[77,1]],"empty":[]}"#).expect("valid");
        let hist = j.get("hist").and_then(Json::as_arr).expect("array");
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].as_arr().unwrap()[1].as_u64(), Some(10));
        assert_eq!(j.get("empty").and_then(Json::as_arr), Some(&[][..]));
    }

    #[test]
    fn parses_escapes_and_negative_numbers() {
        let j = parse(r#"{"s":"a\"b\\c\nd","n":-2.5e-3}"#).expect("valid");
        assert_eq!(j.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        let n = j.get("n").and_then(Json::as_f64).unwrap();
        assert!((n - -0.0025).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\ back";
        let mut buf = String::new();
        write_escaped(&mut buf, original);
        let parsed = parse(&buf).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn u64_integers_round_trip_exactly() {
        // 0xFFFF_FFFF_FFFF_FFC5 is not representable as f64; a lossy
        // parser would round it to 2^64 and overflow.
        let seed = u64::MAX - 58;
        let j = parse(&format!(r#"{{"seed":{seed},"small":7,"f":7.0}}"#)).expect("valid");
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(seed));
        assert_eq!(j.get("seed"), Some(&Json::Int(seed)));
        assert_eq!(j.get("small").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("small").and_then(Json::as_f64), Some(7.0));
        // A decimal point keeps the float representation.
        assert_eq!(j.get("f"), Some(&Json::Num(7.0)));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        let mut buf = String::new();
        write_f64(&mut buf, 0.15);
        buf.push(' ');
        write_f64(&mut buf, 4.0);
        buf.push(' ');
        write_f64(&mut buf, f64::NAN);
        assert_eq!(buf, "0.15 4 null");
    }
}
