//! Deterministic parallel experiment campaigns for the Hi-Rise
//! reproduction.
//!
//! The paper's evaluation is a grid: switch fabrics × arbitration
//! schemes × channel allocations × traffic patterns × offered loads,
//! replicated over seeds. This crate turns that grid into a first-class
//! object — a [`CampaignSpec`] — and runs it:
//!
//! * **Declarative specs** ([`spec`]): a campaign expands into
//!   independent [`Job`]s, each with a seed derived purely from the
//!   master seed and the job's grid position.
//! * **Deterministic parallelism** ([`runner`]): plain `std::thread`
//!   workers pull jobs off a shared cursor; because seeds are
//!   position-derived and results are reassembled in job order, output
//!   is bit-identical at any thread count.
//! * **Streaming observability**: every job keeps the full
//!   `hirise_sim::LatencyHistogram` (log-bucketed, mergeable, no sample
//!   cap), per-port counters, and any invariant violations recorded by
//!   the simulator instead of panicking.
//! * **Telemetry and checkpointing** ([`sink`]): results stream to a
//!   JSONL file that doubles as a checkpoint — an interrupted campaign
//!   resumes by skipping completed jobs, and the finalized file is
//!   byte-identical to an uninterrupted run. CSV export rides along.
//! * **Shared methodology** ([`saturation`], [`sweep`]): the single
//!   definitions of saturation measurement, the stability criterion,
//!   and latency-vs-load curves that the experiment binaries build on.
//!
//! # Example
//!
//! ```
//! use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};
//!
//! let spec = CampaignSpec::new("doc-example")
//!     .fabric(FabricSpec::Flat2d { radix: 8 })
//!     .pattern(PatternSpec::Uniform)
//!     .loads([0.05, 0.15])
//!     .sim(SimParams::new().cycles(100, 500, 500));
//! let results = spec.run(2);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.metrics.stable));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod campaign;
pub mod json;
pub mod parse;
pub mod progress;
pub mod result;
pub mod runner;
pub mod saturation;
pub mod sink;
pub mod spec;
pub mod sweep;

pub use campaign::CampaignOutcome;
pub use parse::{campaign_from_json, campaign_from_value, SpecError};
pub use progress::{Progress, Silent, Stderr};
pub use result::{JobResult, Metrics};
pub use runner::default_threads;
pub use saturation::{overload_report, saturation_packets_per_ns, saturation_throughput};
pub use sink::{write_csv, JsonlSink};
pub use spec::{
    derive_seed, CampaignSpec, FabricSpec, FaultSpec, Job, PatternSpec, SimParams, Topology,
    DEFAULT_SEED,
};
pub use sweep::{latency_curve, LoadPoint};
