//! Parsing [`CampaignSpec`]s back out of JSON — the inverse of
//! [`CampaignSpec::canonical_json`].
//!
//! The campaign service (`hirise-serve`) accepts specs over the wire,
//! so the declarative grid needs a deserializer to match its
//! serializer. The parser accepts any JSON with the canonical schema —
//! key order and whitespace are irrelevant, and absent optional fields
//! take the same defaults as [`CampaignSpec::new`] — which is what
//! makes the content hash sound: two texts that parse to the same spec
//! re-canonicalize to the same bytes and therefore the same digest
//! (pinned by the `spec_json` round-trip property tests).
//!
//! Numbers that must stay exact (seeds) ride on [`Json::Int`], which
//! preserves full `u64` precision instead of routing through `f64`.

use crate::json::{self, Json, JsonError};
use crate::spec::{CampaignSpec, FabricSpec, FaultSpec, PatternSpec, SimParams, Topology};
use hirise_core::{
    ArbitrationScheme, ChannelAllocation, HiRiseConfig, LocalArbiterKind, MatchPolicy,
};
use std::fmt;

/// Why a campaign spec could not be built from a JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The text is not valid JSON at all.
    Json(JsonError),
    /// The JSON is well-formed but does not describe a valid campaign.
    Invalid {
        /// Which part of the spec was wrong (a field path like
        /// `fabrics[1].radix`).
        context: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Invalid { context, message } => {
                write!(f, "invalid campaign spec at {context}: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

fn invalid(context: impl Into<String>, message: impl fmt::Display) -> SpecError {
    SpecError::Invalid {
        context: context.into(),
        message: message.to_string(),
    }
}

/// Parses a campaign spec from JSON text.
pub fn campaign_from_json(text: &str) -> Result<CampaignSpec, SpecError> {
    campaign_from_value(&json::parse(text)?)
}

/// Builds a campaign spec from an already-parsed JSON value.
///
/// `name` is required; every other field defaults as in
/// [`CampaignSpec::new`] when absent. Present fields must have the
/// canonical schema's types, and fabric configurations are validated
/// (an impossible Hi-Rise geometry is a [`SpecError::Invalid`], never a
/// panic).
pub fn campaign_from_value(value: &Json) -> Result<CampaignSpec, SpecError> {
    let obj = expect_obj(value, "spec")?;
    let name = require_str(obj, "name", "spec")?.to_string();
    let mut spec = CampaignSpec::new(name);
    if let Some(v) = obj.get("master_seed") {
        spec.master_seed = as_u64(v, "master_seed")?;
    }
    if let Some(v) = obj.get("topology") {
        spec.topology = topology_from_value(v)?;
    }
    if let Some(v) = obj.get("fabrics") {
        for (i, f) in as_arr(v, "fabrics")?.iter().enumerate() {
            spec.fabrics
                .push(fabric_from_value(f, &format!("fabrics[{i}]"))?);
        }
    }
    if let Some(v) = obj.get("schemes") {
        for (i, s) in as_arr(v, "schemes")?.iter().enumerate() {
            let ctx = format!("schemes[{i}]");
            spec.schemes
                .push(scheme_from_label(as_str(s, &ctx)?, &ctx)?);
        }
    }
    if let Some(v) = obj.get("allocations") {
        for (i, a) in as_arr(v, "allocations")?.iter().enumerate() {
            let ctx = format!("allocations[{i}]");
            spec.allocations
                .push(allocation_from_label(as_str(a, &ctx)?, &ctx)?);
        }
    }
    if let Some(v) = obj.get("patterns") {
        for (i, p) in as_arr(v, "patterns")?.iter().enumerate() {
            let ctx = format!("patterns[{i}]");
            spec.patterns
                .push(pattern_from_label(as_str(p, &ctx)?, &ctx)?);
        }
    }
    if let Some(v) = obj.get("loads") {
        for (i, l) in as_arr(v, "loads")?.iter().enumerate() {
            let ctx = format!("loads[{i}]");
            let load = as_f64(l, &ctx)?;
            if !load.is_finite() || load < 0.0 {
                return Err(invalid(ctx, "offered load must be finite and non-negative"));
            }
            spec.loads.push(load);
        }
    }
    if let Some(v) = obj.get("faults") {
        for (i, f) in as_arr(v, "faults")?.iter().enumerate() {
            spec.faults
                .push(fault_from_value(f, &format!("faults[{i}]"))?);
        }
    }
    if let Some(v) = obj.get("replicates") {
        spec.replicates = as_usize(v, "replicates")?.max(1);
    }
    if let Some(v) = obj.get("sim") {
        spec.sim = sim_from_value(v)?;
    }
    // Execution knob, not part of the canonical schema: accepted here
    // so campaign files can request sharding, but never emitted by
    // `canonical_json` (results are invariant to it).
    if let Some(v) = obj.get("shards") {
        spec.shards = as_usize(v, "shards")?.max(1);
    }
    Ok(spec)
}

fn topology_from_value(value: &Json) -> Result<Topology, SpecError> {
    match value {
        Json::Str(s) if s == "single-switch" => Ok(Topology::SingleSwitch),
        Json::Str(s) => Err(invalid("topology", format!("unknown topology {s:?}"))),
        Json::Obj(_) => match value.get("kind").and_then(Json::as_str) {
            Some("mesh") => Ok(Topology::Mesh {
                cols: require_usize(value, "cols", "topology")?,
                rows: require_usize(value, "rows", "topology")?,
                ports_per_direction: require_usize(value, "ports_per_direction", "topology")?,
                layer_aware: match value.get("layer_aware") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(as_usize(v, "topology.layer_aware")?),
                },
            }),
            Some("dragonfly") => Ok(Topology::Dragonfly {
                routers_per_group: require_usize(value, "routers_per_group", "topology")?,
                endpoints_per_router: require_usize(value, "endpoints_per_router", "topology")?,
                global_per_router: require_usize(value, "global_per_router", "topology")?,
                groups: require_usize(value, "groups", "topology")?,
                palmtree: match value.get("palmtree") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => {
                        return Err(invalid("topology.palmtree", "expected a boolean"));
                    }
                },
            }),
            other => Err(invalid(
                "topology.kind",
                format!("expected \"mesh\" or \"dragonfly\", got {other:?}"),
            )),
        },
        _ => Err(invalid(
            "topology",
            "expected \"single-switch\", a mesh object or a dragonfly object",
        )),
    }
}

fn fabric_from_value(value: &Json, ctx: &str) -> Result<FabricSpec, SpecError> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(format!("{ctx}.kind"), "missing or non-string fabric kind"))?;
    match kind {
        "2d" => Ok(FabricSpec::Flat2d {
            radix: require_usize(value, "radix", ctx)?,
        }),
        "folded" => Ok(FabricSpec::Folded {
            radix: require_usize(value, "radix", ctx)?,
            layers: require_usize(value, "layers", ctx)?,
        }),
        "matching" => {
            let radix = require_usize(value, "radix", ctx)?;
            let policy_ctx = format!("{ctx}.policy");
            let name = value
                .get("policy")
                .map(|v| as_str(v, &policy_ctx))
                .transpose()?
                .ok_or_else(|| invalid(policy_ctx.clone(), "missing required field"))?;
            let iterations = match value.get("iterations") {
                None | Some(Json::Null) => None,
                Some(v) => Some(as_usize(v, &format!("{ctx}.iterations"))?),
            };
            let policy = match (name, iterations) {
                ("islip", Some(k)) if k > 0 => MatchPolicy::Islip { iterations: k },
                ("eslip", Some(k)) if k > 0 => MatchPolicy::Eslip { iterations: k },
                ("islip" | "eslip", _) => {
                    return Err(invalid(
                        format!("{ctx}.iterations"),
                        "islip/eslip need a positive iteration count",
                    ));
                }
                ("wavefront", None) => MatchPolicy::Wavefront,
                ("wavefront", Some(_)) => {
                    return Err(invalid(
                        format!("{ctx}.iterations"),
                        "wavefront takes no iteration count",
                    ));
                }
                (other, _) => {
                    return Err(invalid(
                        policy_ctx,
                        format!("unknown matching policy {other:?}"),
                    ));
                }
            };
            Ok(FabricSpec::Matching { radix, policy })
        }
        "hirise" => {
            let radix = require_usize(value, "radix", ctx)?;
            let layers = require_usize(value, "layers", ctx)?;
            let mut builder = HiRiseConfig::builder(radix, layers);
            if let Some(v) = value.get("c") {
                builder = builder.channel_multiplicity(as_usize(v, &format!("{ctx}.c"))?);
            }
            if let Some(v) = value.get("flit_bits") {
                builder = builder.flit_bits(as_usize(v, &format!("{ctx}.flit_bits"))?);
            }
            if let Some(v) = value.get("scheme") {
                let field = format!("{ctx}.scheme");
                builder = builder.scheme(scheme_from_label(as_str(v, &field)?, &field)?);
            }
            if let Some(v) = value.get("alloc") {
                let field = format!("{ctx}.alloc");
                builder = builder.allocation(allocation_from_label(as_str(v, &field)?, &field)?);
            }
            if let Some(v) = value.get("local") {
                let field = format!("{ctx}.local");
                builder = builder.local_arbiter(match as_str(v, &field)? {
                    "lrg" => LocalArbiterKind::Lrg,
                    "rr" => LocalArbiterKind::RoundRobin,
                    other => {
                        return Err(invalid(field, format!("unknown local arbiter {other:?}")))
                    }
                });
            }
            builder
                .build()
                .map(FabricSpec::HiRise)
                .map_err(|e| invalid(ctx.to_string(), e))
        }
        other => Err(invalid(
            format!("{ctx}.kind"),
            format!("unknown fabric kind {other:?}"),
        )),
    }
}

fn scheme_from_label(label: &str, ctx: &str) -> Result<ArbitrationScheme, SpecError> {
    match label {
        "lrg" => Ok(ArbitrationScheme::LayerToLayerLrg),
        "wlrg" => Ok(ArbitrationScheme::WeightedLrg),
        _ => match label.strip_prefix("clrg").and_then(|n| n.parse().ok()) {
            Some(classes) => Ok(ArbitrationScheme::ClassBased { classes }),
            None => Err(invalid(
                ctx.to_string(),
                format!("unknown arbitration scheme {label:?}"),
            )),
        },
    }
}

fn allocation_from_label(label: &str, ctx: &str) -> Result<ChannelAllocation, SpecError> {
    match label {
        "in" => Ok(ChannelAllocation::InputBinned),
        "out" => Ok(ChannelAllocation::OutputBinned),
        "pri" => Ok(ChannelAllocation::PriorityBased),
        other => Err(invalid(
            ctx.to_string(),
            format!("unknown channel allocation {other:?}"),
        )),
    }
}

fn pattern_from_label(label: &str, ctx: &str) -> Result<PatternSpec, SpecError> {
    let numbered =
        |prefix: &str| -> Option<usize> { label.strip_prefix(prefix).and_then(|n| n.parse().ok()) };
    match label {
        "uniform" => return Ok(PatternSpec::Uniform),
        "bursty" => return Ok(PatternSpec::Bursty),
        "transpose" => return Ok(PatternSpec::Transpose),
        "bitcomp" => return Ok(PatternSpec::BitComplement),
        "tornado" => return Ok(PatternSpec::Tornado),
        "neighbor" => return Ok(PatternSpec::NeighborShift),
        _ => {}
    }
    if let Some(output) = numbered("hotspot") {
        return Ok(PatternSpec::Hotspot { output });
    }
    if let Some(salt) = label.strip_prefix("randperm").and_then(|n| n.parse().ok()) {
        return Ok(PatternSpec::RandomPermutation { salt });
    }
    if let Some(layers) = numbered("interlayer") {
        return Ok(PatternSpec::InterLayerOnly { layers });
    }
    if let Some(layers) = numbered("worstl2lc") {
        return Ok(PatternSpec::WorstCaseL2lc { layers });
    }
    if let Some(fanin) = numbered("incast") {
        if fanin == 0 {
            return Err(invalid(ctx.to_string(), "incast fan-in must be positive"));
        }
        return Ok(PatternSpec::Incast { fanin });
    }
    if let Some(delay) = label.strip_prefix("rpc").and_then(|n| n.parse().ok()) {
        if delay == 0 {
            return Err(invalid(ctx.to_string(), "rpc delay must be positive"));
        }
        return Ok(PatternSpec::Rpc { delay });
    }
    if let Some(period) = label.strip_prefix("diurnal").and_then(|n| n.parse().ok()) {
        if period < 2 {
            return Err(invalid(
                ctx.to_string(),
                "diurnal period must be at least 2",
            ));
        }
        return Ok(PatternSpec::Diurnal { period });
    }
    Err(invalid(
        ctx.to_string(),
        format!("unknown traffic pattern {label:?}"),
    ))
}

fn fault_from_value(value: &Json, ctx: &str) -> Result<FaultSpec, SpecError> {
    expect_obj(value, ctx)?;
    let mut fault = FaultSpec::none();
    if let Some(v) = value.get("dead_tsvs") {
        fault.dead_tsvs = as_usize(v, &format!("{ctx}.dead_tsvs"))?;
    }
    if let Some(v) = value.get("dead_ports") {
        fault.dead_ports = as_usize(v, &format!("{ctx}.dead_ports"))?;
    }
    if let Some(v) = value.get("dead_crosspoints") {
        fault.dead_crosspoints = as_usize(v, &format!("{ctx}.dead_crosspoints"))?;
    }
    if let Some(v) = value.get("flaky_tsvs") {
        fault.flaky_tsvs = as_usize(v, &format!("{ctx}.flaky_tsvs"))?;
    }
    match value.get("flake_probability") {
        // The canonical writer maps non-finite probabilities to null;
        // they clamp to 0 at application time anyway.
        None | Some(Json::Null) => {}
        Some(v) => fault.flake_probability = as_f64(v, &format!("{ctx}.flake_probability"))?,
    }
    if let Some(v) = value.get("salt") {
        fault.salt = as_u64(v, &format!("{ctx}.salt"))?;
    }
    Ok(fault)
}

fn sim_from_value(value: &Json) -> Result<SimParams, SpecError> {
    expect_obj(value, "sim")?;
    let mut sim = SimParams::new();
    if let Some(v) = value.get("vcs") {
        sim.vcs = as_usize(v, "sim.vcs")?;
    }
    if let Some(v) = value.get("vc_depth") {
        sim.vc_depth_flits = as_usize(v, "sim.vc_depth")?;
    }
    if let Some(v) = value.get("packet_len") {
        sim.packet_len_flits = as_usize(v, "sim.packet_len")?;
    }
    if let Some(v) = value.get("warmup") {
        sim.warmup = as_u64(v, "sim.warmup")?;
    }
    if let Some(v) = value.get("measure") {
        sim.measure = as_u64(v, "sim.measure")?;
    }
    if let Some(v) = value.get("drain") {
        sim.drain = as_u64(v, "sim.drain")?;
    }
    match value.get("window") {
        None => {}
        Some(Json::Null) => sim.window = None,
        Some(v) => sim.window = Some(as_usize(v, "sim.window")?),
    }
    if let Some(v) = value.get("record_invariants") {
        sim.record_invariants = v
            .as_bool()
            .ok_or_else(|| invalid("sim.record_invariants", "expected a boolean"))?;
    }
    Ok(sim)
}

fn expect_obj<'a>(
    value: &'a Json,
    ctx: &str,
) -> Result<&'a std::collections::BTreeMap<String, Json>, SpecError> {
    match value {
        Json::Obj(map) => Ok(map),
        _ => Err(invalid(ctx.to_string(), "expected a JSON object")),
    }
}

fn as_str<'a>(value: &'a Json, ctx: &str) -> Result<&'a str, SpecError> {
    value
        .as_str()
        .ok_or_else(|| invalid(ctx.to_string(), "expected a string"))
}

fn as_arr<'a>(value: &'a Json, ctx: &str) -> Result<&'a [Json], SpecError> {
    value
        .as_arr()
        .ok_or_else(|| invalid(ctx.to_string(), "expected an array"))
}

fn as_u64(value: &Json, ctx: &str) -> Result<u64, SpecError> {
    value
        .as_u64()
        .ok_or_else(|| invalid(ctx.to_string(), "expected a non-negative integer"))
}

fn as_f64(value: &Json, ctx: &str) -> Result<f64, SpecError> {
    value
        .as_f64()
        .ok_or_else(|| invalid(ctx.to_string(), "expected a number"))
}

fn as_usize(value: &Json, ctx: &str) -> Result<usize, SpecError> {
    usize::try_from(as_u64(value, ctx)?)
        .map_err(|_| invalid(ctx.to_string(), "integer out of range"))
}

fn require_str<'a>(
    obj: &'a std::collections::BTreeMap<String, Json>,
    key: &str,
    ctx: &str,
) -> Result<&'a str, SpecError> {
    obj.get(key)
        .ok_or_else(|| invalid(format!("{ctx}.{key}"), "missing required field"))?
        .as_str()
        .ok_or_else(|| invalid(format!("{ctx}.{key}"), "expected a string"))
}

fn require_usize(value: &Json, key: &str, ctx: &str) -> Result<usize, SpecError> {
    let field = value
        .get(key)
        .ok_or_else(|| invalid(format!("{ctx}.{key}"), "missing required field"))?;
    as_usize(field, &format!("{ctx}.{key}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DEFAULT_SEED;

    #[test]
    fn minimal_spec_takes_defaults() {
        let spec = campaign_from_json(r#"{"name":"tiny"}"#).unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.master_seed, DEFAULT_SEED);
        assert_eq!(spec.topology, Topology::SingleSwitch);
        assert_eq!(spec.replicates, 1);
        assert_eq!(spec.sim, SimParams::new());
        assert!(spec.fabrics.is_empty() && spec.loads.is_empty());
    }

    #[test]
    fn canonical_json_round_trips() {
        let spec = CampaignSpec::new("rt")
            .master_seed(u64::MAX - 3)
            .fabric(FabricSpec::Flat2d { radix: 16 })
            .fabric(FabricSpec::hirise(
                HiRiseConfig::builder(16, 2)
                    .channel_multiplicity(2)
                    .build()
                    .unwrap(),
            ))
            .scheme(ArbitrationScheme::WeightedLrg)
            .allocation(ChannelAllocation::OutputBinned)
            .fabric(FabricSpec::Matching {
                radix: 16,
                policy: MatchPolicy::Islip { iterations: 2 },
            })
            .fabric(FabricSpec::Matching {
                radix: 16,
                policy: MatchPolicy::Wavefront,
            })
            .pattern(PatternSpec::Uniform)
            .pattern(PatternSpec::Hotspot { output: 3 })
            .pattern(PatternSpec::Incast { fanin: 4 })
            .pattern(PatternSpec::Rpc { delay: 8 })
            .pattern(PatternSpec::Diurnal { period: 256 })
            .loads([0.05, 0.15, 1.0])
            .fault(FaultSpec::dead_tsv_bundles(1).with_flaky_tsvs(2, 0.25))
            .replicates(3)
            .sim(SimParams::quick().window(Some(4)));
        let parsed = campaign_from_json(&spec.canonical_json()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.digest(), spec.digest());
    }

    #[test]
    fn mesh_topology_round_trips() {
        let spec = CampaignSpec::new("mesh").topology(Topology::Mesh {
            cols: 5,
            rows: 5,
            ports_per_direction: 2,
            layer_aware: Some(4),
        });
        assert_eq!(campaign_from_json(&spec.canonical_json()).unwrap(), spec);
    }

    #[test]
    fn dragonfly_topology_round_trips() {
        let spec = CampaignSpec::new("wafer").topology(Topology::Dragonfly {
            routers_per_group: 4,
            endpoints_per_router: 4,
            global_per_router: 2,
            groups: 9,
            palmtree: true,
        });
        assert_eq!(campaign_from_json(&spec.canonical_json()).unwrap(), spec);
    }

    #[test]
    fn shards_knob_parses_but_never_reaches_the_canonical_schema() {
        let spec = campaign_from_json(r#"{"name":"x","shards":8}"#).expect("shards field accepted");
        assert_eq!(spec.shards, 8);
        assert!(
            !spec.canonical_json().contains("shards"),
            "shards is an execution knob, not campaign identity"
        );
        assert_eq!(spec.digest(), CampaignSpec::new("x").digest());
    }

    #[test]
    fn bad_specs_are_typed_errors_not_panics() {
        for (text, fragment) in [
            (r#"{"master_seed":1}"#, "spec.name"),
            (r#"{"name":"x","fabrics":[{"kind":"warp"}]}"#, "kind"),
            (r#"{"name":"x","fabrics":[{"kind":"2d"}]}"#, "radix"),
            (
                // radix not divisible by layers: rejected by the builder.
                r#"{"name":"x","fabrics":[{"kind":"hirise","radix":10,"layers":4}]}"#,
                "fabrics[0]",
            ),
            (r#"{"name":"x","patterns":["warp9"]}"#, "patterns[0]"),
            (r#"{"name":"x","patterns":["rpc0"]}"#, "patterns[0]"),
            (r#"{"name":"x","patterns":["diurnal1"]}"#, "patterns[0]"),
            (r#"{"name":"x","patterns":["incast0"]}"#, "patterns[0]"),
            (
                r#"{"name":"x","fabrics":[{"kind":"matching","radix":16,"policy":"islip"}]}"#,
                "iterations",
            ),
            (
                r#"{"name":"x","fabrics":[{"kind":"matching","radix":16,"policy":"islip","iterations":0}]}"#,
                "iterations",
            ),
            (
                r#"{"name":"x","fabrics":[{"kind":"matching","radix":16,"policy":"maxmatch","iterations":1}]}"#,
                "policy",
            ),
            (
                r#"{"name":"x","fabrics":[{"kind":"matching","radix":16,"policy":"wavefront","iterations":2}]}"#,
                "iterations",
            ),
            (r#"{"name":"x","loads":[-0.5]}"#, "loads[0]"),
            (r#"{"name":"x","schemes":["clrg"]}"#, "schemes[0]"),
            (r#"{"name":"x","topology":"ring"}"#, "topology"),
            ("[]", "spec"),
        ] {
            let err = campaign_from_json(text).unwrap_err();
            assert!(
                err.to_string().contains(fragment),
                "{text}: {err} should mention {fragment}"
            );
        }
        assert!(matches!(
            campaign_from_json("{not json").unwrap_err(),
            SpecError::Json(_)
        ));
    }

    #[test]
    fn all_pattern_labels_round_trip() {
        let patterns = [
            PatternSpec::Uniform,
            PatternSpec::Hotspot { output: 7 },
            PatternSpec::Bursty,
            PatternSpec::Transpose,
            PatternSpec::BitComplement,
            PatternSpec::Tornado,
            PatternSpec::NeighborShift,
            PatternSpec::RandomPermutation { salt: 99 },
            PatternSpec::InterLayerOnly { layers: 4 },
            PatternSpec::WorstCaseL2lc { layers: 2 },
            PatternSpec::Incast { fanin: 8 },
            PatternSpec::Rpc { delay: 16 },
            PatternSpec::Diurnal { period: 512 },
        ];
        for p in patterns {
            let parsed = pattern_from_label(&p.label(), "test").unwrap();
            assert_eq!(parsed, p, "{}", p.label());
        }
    }
}
