//! Campaign progress reporting.
//!
//! The runner calls [`Progress::job_done`] from worker threads as each
//! job completes; implementations must be `Sync`. Progress is pure
//! observability — it never influences results, so campaigns report
//! identically whether run silently or verbosely.

use crate::result::JobResult;
use crate::spec::Job;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Observer of campaign progress.
pub trait Progress: Sync {
    /// Called once per completed job, from the worker thread that ran
    /// it. `finished` counts completions so far (including this one)
    /// out of `total` jobs scheduled this run.
    fn job_done(&self, finished: usize, total: usize, job: &Job, result: &JobResult);
}

/// Reports nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl Progress for Silent {
    fn job_done(&self, _finished: usize, _total: usize, _job: &Job, _result: &JobResult) {}
}

/// One status line per completed job on stderr, e.g.
/// `[ 12/40] hirise64x4c4-clrg3-in uniform load 0.15: stable, 41.2 cyc`.
#[derive(Debug, Default)]
pub struct Stderr;

impl Progress for Stderr {
    fn job_done(&self, finished: usize, total: usize, job: &Job, result: &JobResult) {
        let width = total.to_string().len();
        let stability = if result.metrics.stable {
            "stable"
        } else {
            "saturated"
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[{finished:>width$}/{total}] {} {} load {:.4}: {stability}, {:.1} cyc avg",
            job.fabric.label(),
            job.pattern.label(),
            job.load,
            result.metrics.avg_latency_cycles,
        );
    }
}

/// Shared completion counter used by the runner to hand monotonically
/// increasing `finished` counts to a [`Progress`] implementation.
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicUsize);

impl Counter {
    /// Increments and returns the post-increment count.
    pub(crate) fn bump(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        assert_eq!(c.bump(), 1);
        assert_eq!(c.bump(), 2);
    }
}
