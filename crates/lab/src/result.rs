//! Per-job result records and their serialised forms.
//!
//! A [`JobResult`] is everything a campaign keeps from one simulation:
//! the identifying grid coordinates, scalar metrics, any recorded
//! invariant violations, and the full streaming latency histogram
//! (sparse-encoded). Records serialise to one JSON line each with a
//! fixed field order, so a campaign's output file is byte-identical
//! across runs and thread counts, and to a flat CSV row for
//! spreadsheet-style consumers.

use crate::json::{self, Json};
use hirise_sim::LatencyHistogram;
use std::fmt::Write as _;

/// Scalar metrics of one run, in switch cycles and packets/cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Aggregate accepted throughput in packets/cycle.
    pub accepted_rate: f64,
    /// Mean latency over the measured population.
    pub avg_latency_cycles: f64,
    /// Median latency, `None` when nothing completed.
    pub p50: Option<f64>,
    /// 95th-percentile latency.
    pub p95: Option<f64>,
    /// 99th-percentile latency.
    pub p99: Option<f64>,
    /// Worst-case measured latency.
    pub max_latency_cycles: u64,
    /// Packets injected during the measurement window.
    pub injected: u64,
    /// Measured packets that completed before the run ended.
    pub completed: u64,
    /// Whether the run kept up with the offered load (the workspace's
    /// single stability criterion, `SimReport::is_stable`).
    pub stable: bool,
    /// Mean hop count (mesh topologies only).
    pub avg_hops: Option<f64>,
}

/// The complete result record of one campaign job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The job's index in the campaign expansion.
    pub index: usize,
    /// Fabric label (see `FabricSpec::label`).
    pub fabric: String,
    /// Pattern label (see `PatternSpec::label`).
    pub pattern: String,
    /// Offered load in packets/input/cycle.
    pub load: f64,
    /// Fault-scenario label (see `FaultSpec::label`; `none` for
    /// fault-free runs).
    pub fault: String,
    /// Replicate number.
    pub replicate: usize,
    /// The derived seed the job ran with.
    pub seed: u64,
    /// Scalar metrics.
    pub metrics: Metrics,
    /// Total invariant violations observed (0 when the checker was off
    /// or the run was clean).
    pub violations: u64,
    /// Up to the first three violation messages, for diagnosis.
    pub violation_messages: Vec<String>,
    /// Total fault transitions logged by the fabric (0 when fault
    /// injection was off; equals the dead-fault count plus every flaky
    /// up/down flip for faulty runs).
    pub fault_events: u64,
    /// Packets accepted per input port during the measurement window
    /// (single-switch topologies; `None` for meshes).
    pub per_input_accepted: Option<Vec<u64>>,
    /// The full streaming latency histogram.
    pub histogram: LatencyHistogram,
}

impl JobResult {
    /// The record as one JSON line (no trailing newline). Field order
    /// is fixed; every value is deterministic given the job's seed, so
    /// identical campaigns produce identical lines.
    pub fn to_jsonl_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(s, "{{\"job\":{}", self.index);
        s.push_str(",\"fabric\":");
        json::write_escaped(&mut s, &self.fabric);
        s.push_str(",\"pattern\":");
        json::write_escaped(&mut s, &self.pattern);
        s.push_str(",\"load\":");
        json::write_f64(&mut s, self.load);
        s.push_str(",\"fault\":");
        json::write_escaped(&mut s, &self.fault);
        let _ = write!(
            s,
            ",\"replicate\":{},\"seed\":{}",
            self.replicate, self.seed
        );
        s.push_str(",\"accepted_rate\":");
        json::write_f64(&mut s, self.metrics.accepted_rate);
        s.push_str(",\"avg_latency_cycles\":");
        json::write_f64(&mut s, self.metrics.avg_latency_cycles);
        for (name, v) in [
            ("p50", self.metrics.p50),
            ("p95", self.metrics.p95),
            ("p99", self.metrics.p99),
        ] {
            let _ = write!(s, ",\"{name}\":");
            match v {
                Some(v) => json::write_f64(&mut s, v),
                None => s.push_str("null"),
            }
        }
        let _ = write!(
            s,
            ",\"max_latency_cycles\":{},\"injected\":{},\"completed\":{},\"stable\":{}",
            self.metrics.max_latency_cycles,
            self.metrics.injected,
            self.metrics.completed,
            self.metrics.stable
        );
        if let Some(hops) = self.metrics.avg_hops {
            s.push_str(",\"avg_hops\":");
            json::write_f64(&mut s, hops);
        }
        let _ = write!(
            s,
            ",\"violations\":{},\"fault_events\":{}",
            self.violations, self.fault_events
        );
        if !self.violation_messages.is_empty() {
            s.push_str(",\"violation_messages\":[");
            for (i, m) in self.violation_messages.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                json::write_escaped(&mut s, m);
            }
            s.push(']');
        }
        if let Some(per_input) = &self.per_input_accepted {
            s.push_str(",\"per_input_accepted\":[");
            for (i, &n) in per_input.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{n}");
            }
            s.push(']');
        }
        s.push_str(",\"hist\":[");
        for (i, (bucket, count)) in self.histogram.sparse().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{bucket},{count}]");
        }
        s.push_str("]}");
        s
    }

    /// Header row matching [`to_csv_row`](Self::to_csv_row).
    pub fn csv_header() -> &'static str {
        "job,fabric,pattern,load,fault,replicate,seed,accepted_rate,avg_latency_cycles,\
         p50,p95,p99,max_latency_cycles,injected,completed,stable,avg_hops,violations,\
         fault_events"
    }

    /// The scalar portion of the record as one CSV row (the histogram
    /// and per-port counters only appear in the JSONL form). Optional
    /// fields serialise as empty cells.
    pub fn to_csv_row(&self) -> String {
        let opt = |v: Option<f64>| v.map(|x| format!("{x}")).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.index,
            self.fabric,
            self.pattern,
            self.load,
            self.fault,
            self.replicate,
            self.seed,
            self.metrics.accepted_rate,
            self.metrics.avg_latency_cycles,
            opt(self.metrics.p50),
            opt(self.metrics.p95),
            opt(self.metrics.p99),
            self.metrics.max_latency_cycles,
            self.metrics.injected,
            self.metrics.completed,
            self.metrics.stable,
            opt(self.metrics.avg_hops),
            self.violations,
            self.fault_events,
        )
    }
}

/// Extracts the job index from a serialised result line; `None` when
/// the line does not parse (e.g. a partial write from an interrupted
/// run) or has no `"job"` member. This is what checkpoint/resume keys
/// completed work on.
pub fn job_index_of_line(line: &str) -> Option<usize> {
    let parsed = json::parse(line).ok()?;
    let idx = parsed.get("job").and_then(Json::as_u64)?;
    usize::try_from(idx).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobResult {
        let mut histogram = LatencyHistogram::new();
        for v in [4, 4, 5, 9, 70] {
            histogram.record(v);
        }
        JobResult {
            index: 7,
            fabric: "2d8".into(),
            pattern: "uniform".into(),
            load: 0.15,
            fault: "none".into(),
            replicate: 1,
            seed: 42,
            metrics: Metrics {
                accepted_rate: 1.17,
                avg_latency_cycles: 18.4,
                p50: Some(5.0),
                p95: Some(70.0),
                p99: Some(70.0),
                max_latency_cycles: 70,
                injected: 1000,
                completed: 998,
                stable: true,
                avg_hops: None,
            },
            violations: 0,
            violation_messages: Vec::new(),
            fault_events: 0,
            per_input_accepted: Some(vec![3, 1, 0, 1]),
            histogram,
        }
    }

    #[test]
    fn jsonl_line_is_valid_json_with_expected_members() {
        let line = sample().to_jsonl_line();
        assert!(!line.contains('\n'));
        let parsed = json::parse(&line).expect("line parses");
        assert_eq!(parsed.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("fabric").and_then(Json::as_str), Some("2d8"));
        assert_eq!(parsed.get("load").and_then(Json::as_f64), Some(0.15));
        assert_eq!(parsed.get("stable").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("violations").and_then(Json::as_u64), Some(0));
        assert_eq!(parsed.get("fault").and_then(Json::as_str), Some("none"));
        assert_eq!(parsed.get("fault_events").and_then(Json::as_u64), Some(0));
        // Optional members follow their presence rules.
        assert!(parsed.get("avg_hops").is_none());
        assert!(parsed.get("violation_messages").is_none());
        let per_input = parsed
            .get("per_input_accepted")
            .and_then(Json::as_arr)
            .expect("per-input counters present");
        assert_eq!(per_input.len(), 4);
        // The sparse histogram round-trips count mass.
        let hist = parsed.get("hist").and_then(Json::as_arr).unwrap();
        let total: u64 = hist
            .iter()
            .map(|pair| pair.as_arr().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn line_index_extraction_tolerates_garbage() {
        assert_eq!(job_index_of_line(&sample().to_jsonl_line()), Some(7));
        assert_eq!(job_index_of_line("{\"job\":3}"), Some(3));
        assert_eq!(job_index_of_line("{\"job\":3,\"trunc"), None);
        assert_eq!(job_index_of_line("not json"), None);
        assert_eq!(job_index_of_line("{\"other\":1}"), None);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = JobResult::csv_header().split(',').count();
        let row = sample().to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("7,2d8,uniform,0.15,none,1,42,"));
    }
}
