//! The deterministic work-stealing job runner.
//!
//! Workers are plain `std::thread`s pulling job indices off a shared
//! atomic cursor — the cheapest possible work-stealing queue for jobs
//! that are each seconds of pure computation. Determinism needs no
//! coordination: every job's RNG seed is a pure function of the
//! campaign spec (see `spec::derive_seed`), and results land in a slot
//! vector indexed by job position, so the returned order — and every
//! byte derived from it — is independent of thread count and
//! scheduling.

use crate::progress::{Counter, Progress};
use crate::result::JobResult;
use crate::spec::{CampaignSpec, Job};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker-thread default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `jobs` into half-open spans of consecutive replicate
/// siblings — runs where both the job index and the replicate number
/// increment by exactly one. Replicate is the innermost expansion
/// axis, so such a run can only be one grid point's replicates; a
/// checkpoint-resumed list with holes simply yields shorter spans.
/// Each span becomes one [`CampaignSpec::run_job_batch`] lane batch.
fn replicate_spans(jobs: &[Job]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for i in 1..=jobs.len() {
        let extends = i < jobs.len()
            && jobs[i].index == jobs[i - 1].index + 1
            && jobs[i].replicate == jobs[i - 1].replicate + 1;
        if !extends {
            spans.push((start, i));
            start = i;
        }
    }
    spans
}

/// Runs `jobs` on `threads` workers, returning results in job order
/// (`results[i]` belongs to `jobs[i]`). Replicate siblings run as
/// lanes of one batched simulation (see [`CampaignSpec::run_job_batch`])
/// and are stolen as a unit. `on_done` fires on the worker thread as
/// each job finishes — campaigns use it to stream checkpoint lines and
/// progress.
pub(crate) fn execute(
    spec: &CampaignSpec,
    jobs: &[Job],
    threads: usize,
    progress: &dyn Progress,
    on_done: &(dyn Fn(&Job, &JobResult) + Sync),
) -> Vec<JobResult> {
    let total = jobs.len();
    let spans = replicate_spans(jobs);
    let threads = threads.max(1).min(spans.len().max(1));
    let counter = Counter::default();

    if threads == 1 {
        // The parallel path degenerates to this loop; keeping it
        // explicit avoids thread spawn overhead for serial runs and
        // makes the equivalence easy to see.
        let mut results = Vec::with_capacity(total);
        for &(start, end) in &spans {
            let span = &jobs[start..end];
            for (job, result) in span.iter().zip(spec.run_job_batch(span)) {
                on_done(job, &result);
                progress.job_done(counter.bump(), total, job, &result);
                results.push(result);
            }
        }
        return results;
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let s = cursor.fetch_add(1, Ordering::Relaxed);
                if s >= spans.len() {
                    break;
                }
                let (start, end) = spans[s];
                let span = &jobs[start..end];
                for (offset, (job, result)) in span.iter().zip(spec.run_job_batch(span)).enumerate()
                {
                    on_done(job, &result);
                    progress.job_done(counter.bump(), total, job, &result);
                    *slots[start + offset].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index below total was executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Silent;
    use crate::spec::{FabricSpec, PatternSpec, SimParams};

    fn tiny_campaign() -> CampaignSpec {
        CampaignSpec::new("runner-test")
            .fabric(FabricSpec::Flat2d { radix: 8 })
            .pattern(PatternSpec::Uniform)
            .loads([0.05, 0.1, 0.15, 0.2])
            .sim(SimParams::new().cycles(100, 500, 500))
    }

    #[test]
    fn parallel_results_equal_serial_results_in_order() {
        let spec = tiny_campaign();
        let jobs = spec.jobs();
        let serial = execute(&spec, &jobs, 1, &Silent, &|_, _| {});
        let parallel = execute(&spec, &jobs, 4, &Silent, &|_, _| {});
        assert_eq!(serial, parallel);
        assert!(serial.iter().enumerate().all(|(i, r)| r.index == i));
    }

    #[test]
    fn on_done_fires_once_per_job() {
        let spec = tiny_campaign();
        let jobs = spec.jobs();
        let fired = AtomicUsize::new(0);
        execute(&spec, &jobs, 3, &Silent, &|_, _| {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), jobs.len());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let spec = tiny_campaign().loads([]);
        assert!(execute(&spec, &[], 4, &Silent, &|_, _| {}).is_empty());
    }

    #[test]
    fn replicate_spans_group_sibling_runs_only() {
        let spec = tiny_campaign().loads([0.05, 0.1]).replicates(3);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 6);
        assert_eq!(replicate_spans(&jobs), [(0, 3), (3, 6)]);
        // A checkpoint hole (missing job) splits its span.
        let resumed: Vec<Job> = jobs.iter().filter(|j| j.index != 1).cloned().collect();
        assert_eq!(replicate_spans(&resumed), [(0, 1), (1, 2), (2, 5)]);
    }

    #[test]
    fn batched_replicates_equal_solo_runs() {
        let spec = tiny_campaign().loads([0.05, 0.1]).replicates(3);
        let jobs = spec.jobs();
        let solo: Vec<_> = jobs.iter().map(|j| spec.run_job(j)).collect();
        let batched = execute(&spec, &jobs, 1, &Silent, &|_, _| {});
        assert_eq!(solo, batched);
        let parallel = execute(&spec, &jobs, 4, &Silent, &|_, _| {});
        assert_eq!(solo, parallel);
    }
}
