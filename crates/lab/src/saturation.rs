//! The workspace's single definition of saturation measurement.
//!
//! Several experiment binaries used to carry their own copy of "drive
//! every input at rate 1.0, no drain, read the accepted rate" with
//! subtly different knobs. This module is now the one home for that
//! methodology, and for the stability criterion that partners it:
//! a run is *stable* iff `SimReport::is_stable` holds (at least 99% of
//! measured injections completed before the run ended) — nothing else
//! in the workspace defines its own threshold.

use crate::spec::{SimParams, DEFAULT_SEED};
use hirise_core::Fabric;
use hirise_phys::{packets_per_ns, SwitchDesign};
use hirise_sim::traffic::TrafficPattern;
use hirise_sim::SimReport;
use hirise_sim::{NetworkSim, SimConfig};

/// Runs `fabric` under `pattern` at the standard overload point (every
/// input offered rate 1.0, drain capped at 0 so only the measurement
/// window counts) and returns the full report. The accepted rate of
/// this run is the open-loop saturation throughput: beyond saturation a
/// network accepts its capacity regardless of offered load.
pub fn overload_report<F, T>(fabric: F, pattern: T, base: &SimConfig) -> SimReport
where
    F: Fabric,
    T: TrafficPattern,
{
    let cfg = base.clone().injection_rate(1.0).drain(0);
    NetworkSim::new(fabric, pattern, cfg).run()
}

/// Saturation throughput in packets/cycle — the accepted rate of
/// [`overload_report`].
pub fn saturation_throughput<F, T>(fabric: F, pattern: T, base: &SimConfig) -> f64
where
    F: Fabric,
    T: TrafficPattern,
{
    overload_report(fabric, pattern, base).accepted_rate()
}

/// Saturation throughput of a physical design in packets/ns: the
/// simulated packets/cycle scaled by the design's clock. This is the
/// helper the pattern/pathological/ablation experiments share.
pub fn saturation_packets_per_ns(
    design: &SwitchDesign,
    pattern: Box<dyn TrafficPattern>,
    sim: &SimParams,
) -> f64 {
    let radix = design.point().radix();
    let fabric = crate::spec::FabricSpec::from_point(design.point()).build();
    let cfg = sim.to_sim_config(radix, 1.0, DEFAULT_SEED);
    let rate = saturation_throughput(fabric, pattern, &cfg);
    packets_per_ns(rate, design.frequency_ghz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::Switch2d;
    use hirise_sim::traffic::UniformRandom;

    #[test]
    fn saturation_is_a_plateau() {
        let base = SimConfig::new(16).warmup(1_000).measure(4_000).seed(7);
        let sat = saturation_throughput(Switch2d::new(16), UniformRandom::new(16), &base);
        // Within the physical ceiling of 0.2 packets/output/cycle
        // (5-cycle occupancy per 4-flit packet).
        assert!(sat / 16.0 <= 0.2 + 1e-9);
        assert!(sat / 16.0 > 0.10);
    }

    #[test]
    fn overload_report_is_unstable_by_definition() {
        let base = SimConfig::new(16).warmup(500).measure(2_000).seed(7);
        let report = overload_report(Switch2d::new(16), UniformRandom::new(16), &base);
        assert!(!report.is_stable());
        assert_eq!(report.offered_rate(), 1.0);
    }

    #[test]
    fn physical_scaling_multiplies_by_frequency() {
        let design = SwitchDesign::flat_2d(16);
        let sim = SimParams::quick();
        let per_ns = saturation_packets_per_ns(&design, Box::new(UniformRandom::new(16)), &sim);
        let cfg = sim.to_sim_config(16, 1.0, DEFAULT_SEED);
        let per_cycle = saturation_throughput(
            crate::spec::FabricSpec::Flat2d { radix: 16 }.build(),
            UniformRandom::new(16),
            &cfg,
        );
        assert!((per_ns - per_cycle * design.frequency_ghz()).abs() < 1e-9);
    }
}
