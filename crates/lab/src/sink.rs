//! Telemetry sinks: the JSONL checkpoint file and the CSV export.
//!
//! A campaign's JSONL file is both its result artifact and its
//! checkpoint. The first line is a header identifying the campaign
//! (name, spec digest, job count); each subsequent line is one job's
//! record. While a campaign runs, completed records are appended in
//! completion order and flushed, so an interrupted run loses at most
//! the in-flight jobs. On completion the file is atomically rewritten
//! (temp file + rename) with records sorted by job index — the final
//! bytes are therefore identical no matter how many threads ran the
//! campaign or where a previous run was interrupted.
//!
//! Resume: reopening a file whose header matches the spec's digest
//! yields the set of already-completed job indices; a header mismatch
//! means the file belongs to a different campaign and it is started
//! afresh. A trailing partial line (torn write) is ignored.
//!
//! Error contract: every fallible operation returns `io::Result` — a
//! full disk, a permissions failure or a vanished directory surfaces
//! to the caller as a typed error, never a panic or process abort.

use crate::result::{job_index_of_line, JobResult};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The JSONL checkpoint/result sink for one campaign.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    file: File,
    header: String,
    /// Raw serialised lines of completed jobs, keyed by job index.
    /// Resumed lines are kept verbatim so a resumed campaign's final
    /// file is byte-identical to an uninterrupted run's.
    lines: BTreeMap<usize, String>,
}

impl JsonlSink {
    /// Opens the sink at `path`, resuming from an existing compatible
    /// checkpoint if one is present.
    ///
    /// `name`, `digest` and `total_jobs` identify the campaign; they
    /// form the header line. An existing file with a matching header
    /// contributes its parseable records as already-completed jobs; a
    /// mismatched or absent file starts a fresh checkpoint.
    pub fn create_or_resume(
        path: &Path,
        name: &str,
        digest: u64,
        total_jobs: usize,
    ) -> io::Result<Self> {
        let mut header = String::from("{\"campaign\":");
        crate::json::write_escaped(&mut header, name);
        header.push_str(&format!(
            ",\"digest\":\"{digest:016x}\",\"jobs\":{total_jobs},\"format\":1}}"
        ));

        let mut lines = BTreeMap::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            let mut it = existing.lines();
            if it.next() == Some(header.as_str()) {
                for line in it {
                    if let Some(index) = job_index_of_line(line) {
                        if index < total_jobs {
                            lines.insert(index, line.to_string());
                        }
                    }
                }
            }
        }

        // Rewrite the file to exactly header + known-good lines (drops
        // torn trailing writes), then keep it open for appends.
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        writeln!(file, "{header}")?;
        for line in lines.values() {
            writeln!(file, "{line}")?;
        }
        file.flush()?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            header,
            lines,
        })
    }

    /// Indices of jobs already recorded (completed in a previous run or
    /// via [`record`](Self::record)).
    pub fn completed(&self) -> impl Iterator<Item = usize> + '_ {
        self.lines.keys().copied()
    }

    /// Number of recorded jobs.
    pub fn recorded(&self) -> usize {
        self.lines.len()
    }

    /// Appends one completed job's record and flushes, so the
    /// checkpoint survives an interruption immediately after.
    pub fn record(&mut self, result: &JobResult) -> io::Result<()> {
        let line = result.to_jsonl_line();
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.lines.insert(result.index, line);
        Ok(())
    }

    /// Rewrites the file with records sorted by job index, via a
    /// temporary file renamed over the original. After this, the bytes
    /// on disk are a pure function of the campaign spec.
    pub fn finalize(&mut self) -> io::Result<()> {
        let tmp_path = self.path.with_extension("jsonl.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            writeln!(tmp, "{}", self.header)?;
            for line in self.lines.values() {
                writeln!(tmp, "{line}")?;
            }
            tmp.flush()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the (renamed-over) file for any further appends.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// Writes `results` as a CSV file (header plus one row per job, in the
/// given order). The CSV carries the scalar metrics only; histograms
/// and per-port counters live in the JSONL form.
pub fn write_csv(path: &Path, results: &[JobResult]) -> io::Result<()> {
    let mut file = File::create(path)?;
    writeln!(file, "{}", JobResult::csv_header())?;
    for result in results {
        writeln!(file, "{}", result.to_csv_row())?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Metrics;
    use hirise_sim::LatencyHistogram;

    fn result(index: usize) -> JobResult {
        JobResult {
            index,
            fabric: "2d4".into(),
            pattern: "uniform".into(),
            load: 0.1,
            fault: "none".into(),
            replicate: 0,
            seed: index as u64 * 31,
            metrics: Metrics {
                accepted_rate: 0.3,
                avg_latency_cycles: 5.0,
                p50: Some(5.0),
                p95: Some(6.0),
                p99: Some(6.0),
                max_latency_cycles: 6,
                injected: 10,
                completed: 10,
                stable: true,
                avg_hops: None,
            },
            violations: 0,
            violation_messages: Vec::new(),
            fault_events: 0,
            per_input_accepted: None,
            histogram: LatencyHistogram::new(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hirise-lab-sink-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn records_resume_and_finalize_sorted() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);

        let mut sink = JsonlSink::create_or_resume(&path, "t", 0xABCD, 4).unwrap();
        sink.record(&result(2)).unwrap();
        sink.record(&result(0)).unwrap();
        drop(sink); // simulate interruption before jobs 1 and 3

        let sink = JsonlSink::create_or_resume(&path, "t", 0xABCD, 4).unwrap();
        let completed: Vec<usize> = sink.completed().collect();
        assert_eq!(completed, vec![0, 2]);
        let mut sink = sink;
        sink.record(&result(1)).unwrap();
        sink.record(&result(3)).unwrap();
        sink.finalize().unwrap();

        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"digest\":\"000000000000abcd\""));
        for (i, line) in lines[1..].iter().enumerate() {
            assert_eq!(job_index_of_line(line), Some(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn digest_mismatch_starts_fresh() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::create_or_resume(&path, "t", 1, 2).unwrap();
        sink.record(&result(0)).unwrap();
        drop(sink);

        let sink = JsonlSink::create_or_resume(&path, "t", 2, 2).unwrap();
        assert_eq!(sink.recorded(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_dropped_on_resume() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::create_or_resume(&path, "t", 9, 3).unwrap();
        sink.record(&result(0)).unwrap();
        drop(sink);
        // Simulate a torn write: append half a record with no newline.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"job\":1,\"fab");
        std::fs::write(&path, content).unwrap();

        let sink = JsonlSink::create_or_resume(&path, "t", 9, 3).unwrap();
        let completed: Vec<usize> = sink.completed().collect();
        assert_eq!(completed, vec![0]);
        // The rewrite dropped the torn bytes.
        let cleaned = std::fs::read_to_string(&path).unwrap();
        assert!(!cleaned.contains("fab\n") && cleaned.ends_with('\n'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let path = temp_path("csv");
        write_csv(&path, &[result(0), result(1)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], JobResult::csv_header());
        assert!(lines[1].starts_with("0,2d4,uniform,"));
        std::fs::remove_file(&path).unwrap();
    }
}
