//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] names a grid — fabrics × arbitration schemes ×
//! channel allocations × traffic patterns × offered loads × replicates
//! — and expands it into a flat list of independent [`Job`]s. Each job
//! carries a seed derived purely from the campaign's master seed and
//! the job's position in the expansion, so results are bit-identical
//! regardless of how many worker threads execute the list or in what
//! order they pick jobs up.

use crate::result::{JobResult, Metrics};
use hirise_core::rng::{Rng, SeedableRng, SliceRandom, StdRng};
use hirise_core::{
    ArbitrationScheme, ChannelAllocation, Fabric, Fault, FaultSite, FoldedSwitch, HiRiseConfig,
    HiRiseSwitch, LocalArbiterKind, MatchPolicy, MatchingSwitch, OutputId, Switch2d,
};
use hirise_phys::{DesignPoint, SwitchDesign};
use hirise_sim::dragonfly::{sample_dead_links, DragonflyConfig, DragonflyGeometry, GlobalLinkMap};
use hirise_sim::mesh_sim::{MeshPortMap, MeshReport, MeshSimConfig};
use hirise_sim::shard::{sharded_mesh, ShardedConfig, ShardedSim};
use hirise_sim::traffic::{
    BitComplement, Bursty, Diurnal, Hotspot, Incast, InterLayerOnly, NeighborShift,
    RandomPermutation, Rpc, Tornado, TrafficPattern, Transpose, UniformRandom, WorstCaseL2lc,
};
use hirise_sim::{LaneBatch, NetworkSim, SimConfig, SimReport};
use std::fmt::Write as _;

/// The default base seed, matching [`SimConfig::new`]'s default so
/// single-job campaigns reproduce the historical bench numbers.
pub const DEFAULT_SEED: u64 = 0x5EED_0001;

/// A switch fabric under test, in declarative form. Mirrors
/// `hirise_phys::DesignPoint` but is constructible without a
/// technology and knows how to build the behavioural model.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricSpec {
    /// Flat 2D Swizzle-Switch baseline.
    Flat2d {
        /// Switch radix.
        radix: usize,
    },
    /// The 2D switch folded over silicon layers.
    Folded {
        /// Switch radix.
        radix: usize,
        /// Stacked layer count.
        layers: usize,
    },
    /// The hierarchical Hi-Rise switch.
    HiRise(HiRiseConfig),
    /// A flat crossbar scheduled by an iterative-matching arbiter
    /// (iSLIP / ESLIP / wavefront) — the datacenter-router baseline the
    /// face-off experiments compare Hi-Rise against.
    Matching {
        /// Switch radix.
        radix: usize,
        /// The matching policy (and its iteration count).
        policy: MatchPolicy,
    },
}

impl FabricSpec {
    /// A Hi-Rise spec from an already-validated configuration.
    pub fn hirise(cfg: HiRiseConfig) -> Self {
        FabricSpec::HiRise(cfg)
    }

    /// The spec for a physical design point.
    pub fn from_point(point: &DesignPoint) -> Self {
        match point {
            DesignPoint::Flat2d { radix, .. } => FabricSpec::Flat2d { radix: *radix },
            DesignPoint::Folded { radix, layers, .. } => FabricSpec::Folded {
                radix: *radix,
                layers: *layers,
            },
            DesignPoint::HiRise(cfg) => FabricSpec::HiRise(cfg.clone()),
            _ => unreachable!("all design points are covered"),
        }
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        match self {
            FabricSpec::Flat2d { radix }
            | FabricSpec::Folded { radix, .. }
            | FabricSpec::Matching { radix, .. } => *radix,
            FabricSpec::HiRise(cfg) => cfg.radix(),
        }
    }

    /// Compact label used in telemetry records, e.g. `2d64`,
    /// `folded64x4`, `hirise64x4c4-clrg3-in`, `islip64k2`,
    /// `wavefront64`.
    pub fn label(&self) -> String {
        match self {
            FabricSpec::Flat2d { radix } => format!("2d{radix}"),
            FabricSpec::Folded { radix, layers } => format!("folded{radix}x{layers}"),
            FabricSpec::HiRise(cfg) => format!(
                "hirise{}x{}c{}-{}-{}",
                cfg.radix(),
                cfg.layers(),
                cfg.channel_multiplicity(),
                scheme_label(cfg.scheme()),
                allocation_label(cfg.allocation()),
            ),
            FabricSpec::Matching { radix, policy } => match policy {
                MatchPolicy::Islip { iterations } => format!("islip{radix}k{iterations}"),
                MatchPolicy::Eslip { iterations } => format!("eslip{radix}k{iterations}"),
                MatchPolicy::Wavefront => format!("wavefront{radix}"),
            },
        }
    }

    /// Builds the behavioural fabric.
    pub fn build(&self) -> Box<dyn Fabric> {
        match self {
            FabricSpec::Flat2d { radix } => Box::new(Switch2d::new(*radix)),
            FabricSpec::Folded { radix, layers } => Box::new(FoldedSwitch::new(*radix, *layers)),
            FabricSpec::HiRise(cfg) => Box::new(HiRiseSwitch::new(cfg)),
            FabricSpec::Matching { radix, policy } => {
                Box::new(MatchingSwitch::new(*radix, *policy))
            }
        }
    }

    /// The physical design point (128-bit bus for the 2D/folded
    /// baselines, matching `hirise_phys`'s constructors). An
    /// iterative-matching fabric schedules the same flat crossbar
    /// datapath as the 2D baseline, so it shares that design point —
    /// only the arbitration logic differs, which the physical model
    /// does not resolve.
    pub fn design(&self) -> SwitchDesign {
        match self {
            FabricSpec::Flat2d { radix } | FabricSpec::Matching { radix, .. } => {
                SwitchDesign::flat_2d(*radix)
            }
            FabricSpec::Folded { radix, layers } => SwitchDesign::folded(*radix, *layers),
            FabricSpec::HiRise(cfg) => SwitchDesign::hirise(cfg),
        }
    }

    /// This spec with the inter-layer scheme replaced (Hi-Rise only;
    /// `None` for non-Hi-Rise fabrics, where the axis does not apply).
    pub fn with_scheme(&self, scheme: ArbitrationScheme) -> Option<Self> {
        match self {
            FabricSpec::HiRise(cfg) => {
                rebuild(cfg, scheme, cfg.allocation()).map(FabricSpec::HiRise)
            }
            _ => None,
        }
    }

    /// This spec with the channel allocation replaced (Hi-Rise only;
    /// `None` when the axis does not apply or the geometry cannot bin
    /// evenly under the new policy).
    pub fn with_allocation(&self, allocation: ChannelAllocation) -> Option<Self> {
        match self {
            FabricSpec::HiRise(cfg) => {
                rebuild(cfg, cfg.scheme(), allocation).map(FabricSpec::HiRise)
            }
            _ => None,
        }
    }

    fn canonical_json(&self, out: &mut String) {
        match self {
            FabricSpec::Flat2d { radix } => {
                let _ = write!(out, r#"{{"kind":"2d","radix":{radix}}}"#);
            }
            FabricSpec::Folded { radix, layers } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"folded","radix":{radix},"layers":{layers}}}"#
                );
            }
            FabricSpec::Matching { radix, policy } => {
                let (name, iterations) = match policy {
                    MatchPolicy::Islip { iterations } => ("islip", *iterations),
                    MatchPolicy::Eslip { iterations } => ("eslip", *iterations),
                    MatchPolicy::Wavefront => ("wavefront", 0),
                };
                let _ = write!(
                    out,
                    r#"{{"kind":"matching","radix":{radix},"policy":"{name}""#
                );
                if iterations > 0 {
                    let _ = write!(out, r#","iterations":{iterations}"#);
                }
                out.push('}');
            }
            FabricSpec::HiRise(cfg) => {
                let _ = write!(
                    out,
                    r#"{{"kind":"hirise","radix":{},"layers":{},"c":{},"flit_bits":{},"scheme":"{}","alloc":"{}","local":"{}"}}"#,
                    cfg.radix(),
                    cfg.layers(),
                    cfg.channel_multiplicity(),
                    cfg.flit_bits(),
                    scheme_label(cfg.scheme()),
                    allocation_label(cfg.allocation()),
                    match cfg.local_arbiter() {
                        LocalArbiterKind::Lrg => "lrg",
                        LocalArbiterKind::RoundRobin => "rr",
                        _ => "other",
                    },
                );
            }
        }
    }
}

fn scheme_label(scheme: ArbitrationScheme) -> String {
    match scheme {
        ArbitrationScheme::LayerToLayerLrg => "lrg".to_string(),
        ArbitrationScheme::WeightedLrg => "wlrg".to_string(),
        ArbitrationScheme::ClassBased { classes } => format!("clrg{classes}"),
    }
}

fn allocation_label(allocation: ChannelAllocation) -> &'static str {
    match allocation {
        ChannelAllocation::InputBinned => "in",
        ChannelAllocation::OutputBinned => "out",
        ChannelAllocation::PriorityBased => "pri",
        _ => "other",
    }
}

fn rebuild(
    cfg: &HiRiseConfig,
    scheme: ArbitrationScheme,
    allocation: ChannelAllocation,
) -> Option<HiRiseConfig> {
    HiRiseConfig::builder(cfg.radix(), cfg.layers())
        .channel_multiplicity(cfg.channel_multiplicity())
        .flit_bits(cfg.flit_bits())
        .scheme(scheme)
        .allocation(allocation)
        .local_arbiter(cfg.local_arbiter())
        .build()
        .ok()
}

/// A synthetic traffic pattern, in declarative form.
#[derive(Clone, Debug, PartialEq)]
pub enum PatternSpec {
    /// Uniform random destinations.
    Uniform,
    /// All traffic to one output.
    Hotspot {
        /// Target output index.
        output: usize,
    },
    /// On/off bursts with the crate's default duty cycle and burst
    /// length.
    Bursty,
    /// Matrix-transpose permutation.
    Transpose,
    /// Bit-complement permutation.
    BitComplement,
    /// Tornado (half-way rotation) permutation.
    Tornado,
    /// Nearest-neighbour shift.
    NeighborShift,
    /// A fixed random permutation drawn from `salt`.
    RandomPermutation {
        /// Seed for drawing the permutation (independent of the job
        /// seed so every job in a campaign sees the same permutation).
        salt: u64,
    },
    /// Only inter-layer destinations (§VI-B).
    InterLayerOnly {
        /// Stacked layer count of the switch under test.
        layers: usize,
    },
    /// The paper's pathological L2LC corner case (§VI-B).
    WorstCaseL2lc {
        /// Stacked layer count of the switch under test.
        layers: usize,
    },
    /// Datacenter incast: a rotating block of `fanin` inputs converges
    /// on one epoch victim output.
    Incast {
        /// Number of simultaneous senders per epoch.
        fanin: usize,
    },
    /// RPC request/response chains between paired client and server
    /// ports, with uniform background load on the upper half.
    Rpc {
        /// Server think time in cycles between request and response.
        delay: u64,
    },
    /// Diurnal load: a triangle envelope modulates the offered rate
    /// over `period` cycles.
    Diurnal {
        /// Envelope period in cycles.
        period: u64,
    },
}

impl PatternSpec {
    /// Compact label used in telemetry records.
    pub fn label(&self) -> String {
        match self {
            PatternSpec::Uniform => "uniform".to_string(),
            PatternSpec::Hotspot { output } => format!("hotspot{output}"),
            PatternSpec::Bursty => "bursty".to_string(),
            PatternSpec::Transpose => "transpose".to_string(),
            PatternSpec::BitComplement => "bitcomp".to_string(),
            PatternSpec::Tornado => "tornado".to_string(),
            PatternSpec::NeighborShift => "neighbor".to_string(),
            PatternSpec::RandomPermutation { salt } => format!("randperm{salt}"),
            PatternSpec::InterLayerOnly { layers } => format!("interlayer{layers}"),
            PatternSpec::WorstCaseL2lc { layers } => format!("worstl2lc{layers}"),
            PatternSpec::Incast { fanin } => format!("incast{fanin}"),
            PatternSpec::Rpc { delay } => format!("rpc{delay}"),
            PatternSpec::Diurnal { period } => format!("diurnal{period}"),
        }
    }

    /// Builds the generator for `n` endpoints (the switch radix, or the
    /// core count for mesh topologies).
    pub fn build(&self, n: usize) -> Box<dyn TrafficPattern> {
        match self {
            PatternSpec::Uniform => Box::new(UniformRandom::new(n)),
            PatternSpec::Hotspot { output } => Box::new(Hotspot::new(OutputId::new(*output))),
            PatternSpec::Bursty => Box::new(Bursty::with_defaults(n)),
            PatternSpec::Transpose => Box::new(Transpose::new(n)),
            PatternSpec::BitComplement => Box::new(BitComplement::new(n)),
            PatternSpec::Tornado => Box::new(Tornado::new(n)),
            PatternSpec::NeighborShift => Box::new(NeighborShift::new(n)),
            PatternSpec::RandomPermutation { salt } => Box::new(RandomPermutation::new(n, *salt)),
            PatternSpec::InterLayerOnly { layers } => Box::new(InterLayerOnly::new(n, *layers)),
            PatternSpec::WorstCaseL2lc { layers } => Box::new(WorstCaseL2lc::new(n, *layers)),
            PatternSpec::Incast { fanin } => Box::new(Incast::new(n, *fanin)),
            PatternSpec::Rpc { delay } => Box::new(Rpc::new(n, *delay)),
            PatternSpec::Diurnal { period } => Box::new(Diurnal::new(n, *period)),
        }
    }

    fn canonical_json(&self, out: &mut String) {
        let _ = write!(out, "\"{}\"", self.label());
    }
}

/// A deterministic fault-injection scenario: how many of each fault
/// site class go down before the run starts. Sites are *sampled*, not
/// enumerated — the concrete dead TSV bundles, ports and crosspoints
/// are drawn from a PRNG seeded purely by the job's seed and this
/// spec's `salt`, so a campaign produces byte-identical results at any
/// thread count, and two replicates of the same grid point see
/// different fault placements.
///
/// Counts are clamped to what the fabric's geometry offers (the flat
/// 2D switch has zero TSV bundles, so a TSV axis collapses there).
/// A spec with all counts zero — [`FaultSpec::none`] — never touches
/// the fabric's fault machinery at all, which keeps zero-fault runs
/// bit-identical to fault-free fabrics.
///
/// In single-switch campaigns the spec applies to the one fabric under
/// test. In mesh and dragonfly campaigns it applies to every router,
/// each sampling an independent fault mix from a node-derived seed —
/// except that a dragonfly reinterprets `dead_tsvs` as dead wafer
/// (group-pair) links, the wafer-scale analogue of a severed bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of TSV bundles (L2LCs for Hi-Rise, output-bus boundary
    /// crossings for the folded switch) stuck permanently dead.
    pub dead_tsvs: usize,
    /// Number of input ports stuck permanently dead.
    pub dead_ports: usize,
    /// Number of individual crosspoints stuck permanently dead.
    pub dead_crosspoints: usize,
    /// Number of TSV bundles that are transiently flaky (down with
    /// probability [`flake_probability`](Self::flake_probability) each
    /// cycle). Sampled distinct from the dead bundles.
    pub flaky_tsvs: usize,
    /// Per-cycle down probability of each flaky bundle, clamped to
    /// `[0, 1]` at application time.
    pub flake_probability: f64,
    /// Extra entropy for fault-site sampling, so several fault axes
    /// with the same counts place faults differently.
    pub salt: u64,
}

impl FaultSpec {
    /// The fault-free scenario.
    pub fn none() -> Self {
        Self {
            dead_tsvs: 0,
            dead_ports: 0,
            dead_crosspoints: 0,
            flaky_tsvs: 0,
            flake_probability: 0.0,
            salt: 0,
        }
    }

    /// `n` dead TSV bundles, nothing else.
    pub fn dead_tsv_bundles(n: usize) -> Self {
        Self {
            dead_tsvs: n,
            ..Self::none()
        }
    }

    /// This spec with `n` dead ports.
    pub fn with_dead_ports(mut self, n: usize) -> Self {
        self.dead_ports = n;
        self
    }

    /// This spec with `n` dead crosspoints.
    pub fn with_dead_crosspoints(mut self, n: usize) -> Self {
        self.dead_crosspoints = n;
        self
    }

    /// This spec with `n` flaky TSV bundles at per-cycle probability `p`.
    pub fn with_flaky_tsvs(mut self, n: usize, p: f64) -> Self {
        self.flaky_tsvs = n;
        self.flake_probability = p;
        self
    }

    /// This spec with a different sampling salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Whether this is the fault-free scenario (all counts zero).
    pub fn is_none(&self) -> bool {
        self.dead_tsvs == 0
            && self.dead_ports == 0
            && self.dead_crosspoints == 0
            && self.flaky_tsvs == 0
    }

    /// Compact label used in telemetry records, e.g. `none` or
    /// `dt4`, `dt1dp2ft2q0.01s7`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut s = String::new();
        if self.dead_tsvs > 0 {
            let _ = write!(s, "dt{}", self.dead_tsvs);
        }
        if self.dead_ports > 0 {
            let _ = write!(s, "dp{}", self.dead_ports);
        }
        if self.dead_crosspoints > 0 {
            let _ = write!(s, "dx{}", self.dead_crosspoints);
        }
        if self.flaky_tsvs > 0 {
            let _ = write!(s, "ft{}q{}", self.flaky_tsvs, self.flake_probability);
        }
        if self.salt != 0 {
            let _ = write!(s, "s{}", self.salt);
        }
        s
    }

    /// Samples this scenario's concrete fault sites and injects them
    /// into `fabric`. Deterministic in `(job_seed, self)` alone — no
    /// shared state, so any thread applying the same job gets the same
    /// faults. A [`FaultSpec::none`] spec is a no-op that leaves the
    /// fabric's fault machinery disabled entirely.
    pub fn apply<F: Fabric + ?Sized>(&self, fabric: &mut F, job_seed: u64) {
        if self.is_none() {
            return;
        }
        let sampler_seed = derive_seed(job_seed ^ 0xFA17_BA5E_D00D_F00D, self.salt);
        fabric
            .enable_faults(derive_seed(sampler_seed, 1))
            .expect("all workspace fabrics support fault injection");
        let mut rng = StdRng::seed_from_u64(sampler_seed);
        let inject = |fabric: &mut F, fault: Fault| {
            fabric
                .inject_fault(fault)
                .expect("sampled fault sites are in range");
        };
        // One shuffled permutation of the bundles: the first `dead_tsvs`
        // die, the next `flaky_tsvs` flake — always distinct sites.
        let tsvs = fabric.tsv_bundle_count();
        let mut bundles: Vec<usize> = (0..tsvs).collect();
        bundles.shuffle(&mut rng);
        let dead = self.dead_tsvs.min(tsvs);
        let flaky = self.flaky_tsvs.min(tsvs - dead);
        let p = if self.flake_probability.is_finite() {
            self.flake_probability.clamp(0.0, 1.0)
        } else {
            0.0
        };
        for &index in &bundles[..dead] {
            inject(fabric, Fault::dead(FaultSite::TsvBundle { index }));
        }
        for &index in &bundles[dead..dead + flaky] {
            inject(fabric, Fault::flaky(FaultSite::TsvBundle { index }, p));
        }
        let radix = fabric.radix();
        let mut ports: Vec<usize> = (0..radix).collect();
        ports.shuffle(&mut rng);
        for &input in &ports[..self.dead_ports.min(radix)] {
            inject(fabric, Fault::dead(FaultSite::Port { input }));
        }
        let mut seen = std::collections::HashSet::new();
        while seen.len() < self.dead_crosspoints.min(radix * radix) {
            let input = rng.gen_range(0..radix);
            let output = rng.gen_range(0..radix);
            if seen.insert((input, output)) {
                inject(fabric, Fault::dead(FaultSite::Crosspoint { input, output }));
            }
        }
    }

    fn canonical_json(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"dead_tsvs":{},"dead_ports":{},"dead_crosspoints":{},"flaky_tsvs":{},"flake_probability":"#,
            self.dead_tsvs, self.dead_ports, self.dead_crosspoints, self.flaky_tsvs,
        );
        crate::json::write_f64(out, self.flake_probability);
        let _ = write!(out, r#","salt":{}}}"#, self.salt);
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// Simulation methodology shared by every job of a campaign:
/// everything except the fabric, the pattern, the offered load and the
/// seed. Defaults match the paper's methodology (4 VCs × 4 flits,
/// 4-flit packets, 2k warmup / 20k measure / 20k drain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimParams {
    /// Virtual channels per input port (single-switch topology only).
    pub vcs: usize,
    /// VC buffer depth in flits (single-switch topology only).
    pub vc_depth_flits: usize,
    /// Packet length in flits.
    pub packet_len_flits: usize,
    /// Warmup cycles (statistics ignored).
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Drain cap in cycles.
    pub drain: u64,
    /// Closed-loop window (max packets in flight per input), `None`
    /// for the standard open-loop methodology.
    pub window: Option<usize>,
    /// Run the invariant checker in recording mode so violations end
    /// up in the job's result record instead of panicking (on by
    /// default; costs a few percent of simulation speed).
    pub record_invariants: bool,
}

impl SimParams {
    /// The paper's defaults (see [`SimConfig::new`]), with invariant
    /// recording on.
    pub fn new() -> Self {
        Self {
            vcs: 4,
            vc_depth_flits: 4,
            packet_len_flits: 4,
            warmup: 2_000,
            measure: 20_000,
            drain: 20_000,
            window: None,
            record_invariants: true,
        }
    }

    /// The scale behind the recorded EXPERIMENTS.md numbers
    /// (3k warmup / 30k measure / 30k drain).
    pub fn full() -> Self {
        Self::new().cycles(3_000, 30_000, 30_000)
    }

    /// A fast smoke scale (500 / 3k / 3k; noisier).
    pub fn quick() -> Self {
        Self::new().cycles(500, 3_000, 3_000)
    }

    /// Sets warmup, measurement and drain lengths together.
    pub fn cycles(mut self, warmup: u64, measure: u64, drain: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self.drain = drain;
        self
    }

    /// Sets the drain cap (0 for saturation measurements).
    pub fn drain(mut self, cycles: u64) -> Self {
        self.drain = cycles;
        self
    }

    /// Sets the closed-loop window.
    pub fn window(mut self, window: Option<usize>) -> Self {
        self.window = window;
        self
    }

    /// Turns invariant recording on or off.
    pub fn record_invariants(mut self, on: bool) -> Self {
        self.record_invariants = on;
        self
    }

    /// The concrete [`SimConfig`] for one job.
    pub fn to_sim_config(&self, radix: usize, load: f64, seed: u64) -> SimConfig {
        SimConfig::new(radix)
            .vcs(self.vcs)
            .vc_depth_flits(self.vc_depth_flits)
            .packet_len_flits(self.packet_len_flits)
            .injection_rate(load)
            .window(self.window)
            .warmup(self.warmup)
            .measure(self.measure)
            .drain(self.drain)
            .seed(seed)
            .record_invariants(self.record_invariants)
    }

    fn canonical_json(&self, out: &mut String) {
        let _ = write!(
            out,
            r#"{{"vcs":{},"vc_depth":{},"packet_len":{},"warmup":{},"measure":{},"drain":{},"window":{},"record_invariants":{}}}"#,
            self.vcs,
            self.vc_depth_flits,
            self.packet_len_flits,
            self.warmup,
            self.measure,
            self.drain,
            match self.window {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            },
            self.record_invariants,
        );
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::new()
    }
}

/// What the fabric under test is embedded in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A single switch driven directly by the traffic pattern (the
    /// paper's main methodology).
    SingleSwitch,
    /// A `cols x rows` mesh of switches with XY routing (§VI-E); the
    /// pattern addresses cores, `radix - 4*ports_per_direction` per
    /// node.
    Mesh {
        /// Mesh columns.
        cols: usize,
        /// Mesh rows.
        rows: usize,
        /// Switch ports reserved per mesh direction.
        ports_per_direction: usize,
        /// `Some(layers)` uses the layer-aware port mapping of §VI-E;
        /// `None` the contiguous default.
        layer_aware: Option<usize>,
    },
    /// A wafer-scale dragonfly of switches: groups of `routers_per_group`
    /// fully-meshed routers, each with `endpoints_per_router` endpoints
    /// and `global_per_router` wafer links to other groups. The fabric
    /// radix must cover `endpoints_per_router + routers_per_group - 1 +
    /// global_per_router` ports. A campaign fault axis maps `dead_tsvs`
    /// to dead wafer (group-pair) links; the remaining fault fields
    /// apply per router.
    Dragonfly {
        /// Routers per group (`a`).
        routers_per_group: usize,
        /// Endpoints per router (`p`).
        endpoints_per_router: usize,
        /// Wafer links per router (`h`).
        global_per_router: usize,
        /// Group count (`g`, at most `a*h + 1`).
        groups: usize,
        /// `true` for the palmtree global-link arrangement, `false` for
        /// consecutive.
        palmtree: bool,
    },
}

impl Topology {
    fn canonical_json(&self, out: &mut String) {
        match self {
            Topology::SingleSwitch => out.push_str(r#""single-switch""#),
            Topology::Mesh {
                cols,
                rows,
                ports_per_direction,
                layer_aware,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"mesh","cols":{cols},"rows":{rows},"ports_per_direction":{ports_per_direction},"layer_aware":{}}}"#,
                    match layer_aware {
                        Some(l) => l.to_string(),
                        None => "null".to_string(),
                    },
                );
            }
            Topology::Dragonfly {
                routers_per_group,
                endpoints_per_router,
                global_per_router,
                groups,
                palmtree,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"dragonfly","routers_per_group":{routers_per_group},"endpoints_per_router":{endpoints_per_router},"global_per_router":{global_per_router},"groups":{groups},"palmtree":{palmtree}}}"#,
                );
            }
        }
    }
}

/// One expanded grid point: everything needed to run one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Position in the campaign's expansion (stable across runs; keys
    /// the checkpoint file).
    pub index: usize,
    /// The fabric under test.
    pub fabric: FabricSpec,
    /// The traffic pattern.
    pub pattern: PatternSpec,
    /// Offered load in packets/input/cycle.
    pub load: f64,
    /// The fault scenario this job runs under.
    pub fault: FaultSpec,
    /// Replicate number (seeds differ between replicates).
    pub replicate: usize,
    /// The derived RNG seed, a pure function of the campaign's master
    /// seed and this job's expansion position.
    pub seed: u64,
}

/// Derives a job seed from the campaign master seed and the job's
/// expansion index. Pure and order-free: the seed depends only on
/// `(master, index)`, never on which thread runs the job or when.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    hirise_core::rng::derive_stream_seed(master, index)
}

/// A declarative experiment campaign: the grid axes plus the shared
/// methodology. Expand with [`jobs`](Self::jobs), run with
/// [`run`](Self::run) or [`run_to_file`](Self::run_to_file).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (recorded in the telemetry header).
    pub name: String,
    /// Master seed; per-job seeds derive from it via [`derive_seed`].
    pub master_seed: u64,
    /// What the fabrics are embedded in.
    pub topology: Topology,
    /// Fabrics under test.
    pub fabrics: Vec<FabricSpec>,
    /// Inter-layer arbitration schemes to sweep on each Hi-Rise fabric
    /// (empty keeps each fabric's own scheme; the axis collapses for
    /// non-Hi-Rise fabrics).
    pub schemes: Vec<ArbitrationScheme>,
    /// Channel allocations to sweep on each Hi-Rise fabric (empty
    /// keeps each fabric's own; collapses for non-Hi-Rise fabrics).
    pub allocations: Vec<ChannelAllocation>,
    /// Traffic patterns.
    pub patterns: Vec<PatternSpec>,
    /// Offered loads in packets/input/cycle.
    pub loads: Vec<f64>,
    /// Fault scenarios to sweep (empty means one fault-free run per
    /// grid point, identical to a campaign with no fault axis at all).
    pub faults: Vec<FaultSpec>,
    /// Independent repetitions per grid point (different seeds).
    pub replicates: usize,
    /// Shared simulation methodology.
    pub sim: SimParams,
    /// Shard count for mesh and dragonfly jobs: each job's topology is
    /// partitioned into this many lockstep worker threads (clamped to
    /// the topology's router count per job). Purely an
    /// *execution* knob — results are byte-identical at any shard
    /// count, so it is deliberately excluded from
    /// [`canonical_json`](Self::canonical_json), the digest and the
    /// job key (a resharded rerun resumes checkpoints and hits the
    /// result cache). Single-switch jobs ignore it.
    pub shards: usize,
}

impl CampaignSpec {
    /// An empty single-switch campaign with the paper's methodology
    /// and [`DEFAULT_SEED`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            master_seed: DEFAULT_SEED,
            topology: Topology::SingleSwitch,
            fabrics: Vec::new(),
            schemes: Vec::new(),
            allocations: Vec::new(),
            patterns: Vec::new(),
            loads: Vec::new(),
            faults: Vec::new(),
            replicates: 1,
            sim: SimParams::new(),
            shards: 1,
        }
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Adds a fabric to the grid.
    pub fn fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabrics.push(fabric);
        self
    }

    /// Adds an arbitration scheme to the grid.
    pub fn scheme(mut self, scheme: ArbitrationScheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds a channel allocation to the grid.
    pub fn allocation(mut self, allocation: ChannelAllocation) -> Self {
        self.allocations.push(allocation);
        self
    }

    /// Adds a traffic pattern to the grid.
    pub fn pattern(mut self, pattern: PatternSpec) -> Self {
        self.patterns.push(pattern);
        self
    }

    /// Sets the offered-load axis.
    pub fn loads(mut self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.loads = loads.into_iter().collect();
        self
    }

    /// Adds a fault scenario to the grid. An empty fault axis (the
    /// default) behaves like a single [`FaultSpec::none`] entry; to
    /// compare degraded fabrics against a healthy baseline, add
    /// `FaultSpec::none()` explicitly alongside the faulty scenarios.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the replicate count (minimum 1).
    pub fn replicates(mut self, n: usize) -> Self {
        self.replicates = n.max(1);
        self
    }

    /// Sets the shared methodology.
    pub fn sim(mut self, sim: SimParams) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the shard count (minimum 1) for mesh and dragonfly jobs.
    /// An execution knob only: results, digests and job keys are
    /// invariant to it.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// The fabric axis after applying the scheme and allocation sweeps.
    /// Hi-Rise fabrics fan out over `schemes x allocations`
    /// (combinations the geometry rejects are skipped); 2D and folded
    /// fabrics appear exactly once since those axes do not apply to
    /// them.
    pub fn expanded_fabrics(&self) -> Vec<FabricSpec> {
        let mut out = Vec::new();
        for fabric in &self.fabrics {
            if !matches!(fabric, FabricSpec::HiRise(_))
                || (self.schemes.is_empty() && self.allocations.is_empty())
            {
                out.push(fabric.clone());
                continue;
            }
            let schemed: Vec<FabricSpec> = if self.schemes.is_empty() {
                vec![fabric.clone()]
            } else {
                self.schemes
                    .iter()
                    .filter_map(|&s| fabric.with_scheme(s))
                    .collect()
            };
            for f in schemed {
                if self.allocations.is_empty() {
                    out.push(f);
                } else {
                    out.extend(
                        self.allocations
                            .iter()
                            .filter_map(|&a| f.with_allocation(a)),
                    );
                }
            }
        }
        out
    }

    /// Expands the grid into its job list. The expansion order (fabric,
    /// then pattern, then load, then fault, then replicate) is part of
    /// the campaign's identity: job indices key the checkpoint file and
    /// feed the per-job seeds.
    pub fn jobs(&self) -> Vec<Job> {
        let fault_axis: Vec<FaultSpec> = if self.faults.is_empty() {
            vec![FaultSpec::none()]
        } else {
            self.faults.clone()
        };
        let mut jobs = Vec::new();
        for fabric in self.expanded_fabrics() {
            for pattern in &self.patterns {
                for &load in &self.loads {
                    for fault in &fault_axis {
                        for replicate in 0..self.replicates.max(1) {
                            let index = jobs.len();
                            jobs.push(Job {
                                index,
                                fabric: fabric.clone(),
                                pattern: pattern.clone(),
                                load,
                                fault: fault.clone(),
                                replicate,
                                seed: derive_seed(self.master_seed, index as u64),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// A canonical JSON encoding of the spec, the input to
    /// [`digest`](Self::digest). Field order is fixed so equal specs
    /// produce equal strings.
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        crate::json::write_escaped(&mut out, &self.name);
        let _ = write!(out, ",\"master_seed\":{}", self.master_seed);
        out.push_str(",\"topology\":");
        self.topology.canonical_json(&mut out);
        out.push_str(",\"fabrics\":[");
        for (i, f) in self.fabrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.canonical_json(&mut out);
        }
        out.push_str("],\"schemes\":[");
        for (i, &s) in self.schemes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", scheme_label(s));
        }
        out.push_str("],\"allocations\":[");
        for (i, &a) in self.allocations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", allocation_label(a));
        }
        out.push_str("],\"patterns\":[");
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.canonical_json(&mut out);
        }
        out.push_str("],\"loads\":[");
        for (i, &l) in self.loads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_f64(&mut out, l);
        }
        out.push_str("],\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.canonical_json(&mut out);
        }
        let _ = write!(out, "],\"replicates\":{},\"sim\":", self.replicates.max(1));
        self.sim.canonical_json(&mut out);
        out.push('}');
        out
    }

    /// FNV-1a 64-bit digest of [`canonical_json`](Self::canonical_json).
    /// Identifies the campaign in the telemetry header; a checkpoint
    /// file whose digest disagrees belongs to a different campaign and
    /// is not resumed from.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical_json().as_bytes())
    }

    /// A canonical JSON encoding of everything that determines one
    /// job's result record: the shared methodology (topology, sim
    /// parameters) plus the job's own grid coordinates, index,
    /// replicate and seed. Deliberately excludes the campaign's name
    /// and master seed — the job seed already captures all the
    /// randomness — so differently-named campaigns over the same grid
    /// share content-addressed cache entries (the result-serving
    /// daemon keys its cache on a hash of this string).
    pub fn job_key_json(&self, job: &Job) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"topology\":");
        self.topology.canonical_json(&mut out);
        out.push_str(",\"sim\":");
        self.sim.canonical_json(&mut out);
        out.push_str(",\"fabric\":");
        job.fabric.canonical_json(&mut out);
        out.push_str(",\"pattern\":");
        job.pattern.canonical_json(&mut out);
        out.push_str(",\"load\":");
        crate::json::write_f64(&mut out, job.load);
        out.push_str(",\"fault\":");
        job.fault.canonical_json(&mut out);
        let _ = write!(
            out,
            ",\"index\":{},\"replicate\":{},\"seed\":{}}}",
            job.index, job.replicate, job.seed
        );
        out
    }

    /// Builds the single-switch simulator for one job: fabric with the
    /// job's fault plan applied, traffic pattern, and the job-seeded
    /// configuration.
    fn single_switch_sim(&self, job: &Job) -> NetworkSim<Box<dyn Fabric>, Box<dyn TrafficPattern>> {
        let radix = job.fabric.radix();
        let cfg = self.sim.to_sim_config(radix, job.load, job.seed);
        let mut fabric = job.fabric.build();
        job.fault.apply(&mut fabric, job.seed);
        NetworkSim::new(fabric, job.pattern.build(radix), cfg)
    }

    /// Assembles a job's result record from its finished simulator and
    /// report. Shared by the solo and batched execution paths, which
    /// therefore cannot disagree on what a result contains.
    fn single_switch_result(
        job: &Job,
        sim: &NetworkSim<Box<dyn Fabric>, Box<dyn TrafficPattern>>,
        report: &SimReport,
    ) -> JobResult {
        let fault_events = sim.fault_event_count();
        let (violations, messages) = match sim.checker() {
            Some(checker) => (
                checker.violation_count(),
                checker
                    .violations()
                    .iter()
                    .take(3)
                    .map(|v| match v.cycle {
                        Some(c) => format!("cycle {c}: {}", v.message),
                        None => v.message.clone(),
                    })
                    .collect(),
            ),
            None => (0, Vec::new()),
        };
        JobResult {
            index: job.index,
            fabric: job.fabric.label(),
            pattern: job.pattern.label(),
            load: job.load,
            fault: job.fault.label(),
            replicate: job.replicate,
            seed: job.seed,
            metrics: Metrics {
                accepted_rate: report.accepted_rate(),
                avg_latency_cycles: report.avg_latency_cycles(),
                p50: report.latency_percentile_cycles(50.0),
                p95: report.latency_percentile_cycles(95.0),
                p99: report.latency_percentile_cycles(99.0),
                max_latency_cycles: report.max_latency_cycles(),
                injected: report.injected_measured(),
                completed: report.completed_measured(),
                stable: report.is_stable(),
                avg_hops: None,
            },
            violations,
            violation_messages: messages,
            fault_events,
            per_input_accepted: Some(report.per_input_accepted().to_vec()),
            histogram: report.latency_histogram().clone(),
        }
    }

    /// Runs a group of jobs as interleaved lanes of one
    /// [`LaneBatch`] — the runner hands replicate siblings here so a
    /// sweep's replicates amortise arbitration warm-up instead of each
    /// re-warming the caches. Every lane is an independent simulator
    /// under the solo run policy, so `results[k]` is identical to
    /// `run_job(&jobs[k])` (the differential suite pins this batching
    /// invariance). Non-single-switch topologies fall back to solo
    /// runs.
    pub fn run_job_batch(&self, jobs: &[Job]) -> Vec<JobResult> {
        if jobs.len() < 2 || !matches!(self.topology, Topology::SingleSwitch) {
            return jobs.iter().map(|job| self.run_job(job)).collect();
        }
        let lanes = jobs.iter().map(|job| self.single_switch_sim(job)).collect();
        let mut batch = LaneBatch::new(lanes);
        let reports = batch.run();
        jobs.iter()
            .zip(batch.lanes().iter().zip(&reports))
            .map(|(job, (sim, report))| Self::single_switch_result(job, sim, report))
            .collect()
    }

    /// Runs one job to completion, producing its result record. This
    /// is the only place a job touches a simulator; everything it reads
    /// is in the job and the spec, so calls are independent and can run
    /// on any thread.
    pub fn run_job(&self, job: &Job) -> JobResult {
        match &self.topology {
            Topology::SingleSwitch => {
                let mut sim = self.single_switch_sim(job);
                let report = sim.run();
                Self::single_switch_result(job, &sim, &report)
            }
            Topology::Mesh {
                cols,
                rows,
                ports_per_direction,
                layer_aware,
            } => {
                let cfg = MeshSimConfig::new(*cols, *rows, *ports_per_direction)
                    .injection_rate(job.load)
                    .packet_len_flits(self.sim.packet_len_flits)
                    .warmup(self.sim.warmup)
                    .measure(self.sim.measure)
                    .drain(self.sim.drain)
                    .seed(job.seed)
                    .port_map(match layer_aware {
                        Some(layers) => MeshPortMap::LayerAware { layers: *layers },
                        None => MeshPortMap::Contiguous,
                    });
                let radix = job.fabric.radix();
                let cores = (radix - 4 * ports_per_direction) * cols * rows;
                let mut sim = sharded_mesh(
                    &cfg,
                    radix,
                    self.shards.min(cols * rows),
                    |node| self.routed_fabric(job, &job.fault, node),
                    || job.pattern.build(cores),
                );
                let report = sim.run();
                let fault_events = sim.fault_event_count();
                Self::routed_result(job, &report, fault_events)
            }
            Topology::Dragonfly {
                routers_per_group,
                endpoints_per_router,
                global_per_router,
                groups,
                palmtree,
            } => {
                let radix = job.fabric.radix();
                let dcfg = DragonflyConfig::new(
                    *routers_per_group,
                    *endpoints_per_router,
                    *global_per_router,
                    *groups,
                )
                .map(if *palmtree {
                    GlobalLinkMap::Palmtree
                } else {
                    GlobalLinkMap::Consecutive
                });
                // The fault axis's dead-TSV count becomes dead wafer
                // links between group pairs; the per-router fault fields
                // keep their single-switch meaning.
                let dead = sample_dead_links(
                    *groups,
                    job.fault.dead_tsvs,
                    derive_seed(job.seed ^ 0xFA17_BA5E_D00D_F00D, job.fault.salt),
                );
                let geo = DragonflyGeometry::new(dcfg, radix, &dead)
                    .expect("campaign dragonfly must be buildable and routable");
                let endpoints = routers_per_group * groups * endpoints_per_router;
                let mut cfg = ShardedConfig::new()
                    .injection_rate(job.load)
                    .warmup(self.sim.warmup)
                    .measure(self.sim.measure)
                    .drain(self.sim.drain)
                    .seed(job.seed);
                cfg.vcs = self.sim.vcs;
                cfg.packet_len_flits = self.sim.packet_len_flits;
                let router_fault = FaultSpec {
                    dead_tsvs: 0,
                    ..job.fault.clone()
                };
                let mut sim = ShardedSim::new(
                    geo,
                    cfg,
                    self.shards.min(routers_per_group * groups),
                    |node| self.routed_fabric(job, &router_fault, node),
                    || job.pattern.build(endpoints),
                );
                let report = sim.run();
                let fault_events = sim.fault_event_count();
                Self::routed_result(job, &report, fault_events)
            }
        }
    }

    /// Builds one node's fabric for a routed (mesh or dragonfly)
    /// topology, applying the job's fault plan with a seed derived from
    /// the node position so every node samples an independent fault mix
    /// regardless of which shard builds it.
    fn routed_fabric(&self, job: &Job, fault: &FaultSpec, node: usize) -> Box<dyn Fabric> {
        let mut fabric = job.fabric.build();
        fault.apply(&mut fabric, derive_seed(job.seed, node as u64));
        fabric
    }

    /// Assembles a routed-topology job result from the merged shard
    /// report. The mesh and dragonfly arms share this, so the two
    /// paths cannot disagree on what a record contains.
    fn routed_result(job: &Job, report: &MeshReport, fault_events: u64) -> JobResult {
        JobResult {
            index: job.index,
            fabric: job.fabric.label(),
            pattern: job.pattern.label(),
            load: job.load,
            fault: job.fault.label(),
            replicate: job.replicate,
            seed: job.seed,
            metrics: Metrics {
                accepted_rate: report.accepted_rate(),
                avg_latency_cycles: report.avg_latency_cycles(),
                p50: report.latency_percentile_cycles(50.0),
                p95: report.latency_percentile_cycles(95.0),
                p99: report.latency_percentile_cycles(99.0),
                max_latency_cycles: report.latency_histogram().max().unwrap_or(0),
                injected: report.injected_measured(),
                completed: report.completed_measured(),
                stable: report.is_stable(),
                avg_hops: Some(report.avg_hops()),
            },
            violations: 0,
            violation_messages: Vec::new(),
            fault_events,
            per_input_accepted: None,
            histogram: report.latency_histogram().clone(),
        }
    }
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_fabric_spec() -> CampaignSpec {
        CampaignSpec::new("test")
            .fabric(FabricSpec::Flat2d { radix: 8 })
            .fabric(FabricSpec::hirise(
                HiRiseConfig::builder(8, 2).build().unwrap(),
            ))
            .pattern(PatternSpec::Uniform)
            .pattern(PatternSpec::Transpose)
            .loads([0.05, 0.2])
            .replicates(2)
    }

    #[test]
    fn expansion_order_is_fabric_pattern_load_replicate() {
        let jobs = two_fabric_spec().jobs();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        assert_eq!(jobs[0].fabric.label(), "2d8");
        assert_eq!(jobs[0].pattern.label(), "uniform");
        assert_eq!(jobs[0].load, 0.05);
        assert_eq!(jobs[0].replicate, 0);
        assert_eq!(jobs[1].replicate, 1);
        assert_eq!(jobs[2].load, 0.2);
        assert_eq!(jobs[4].pattern.label(), "transpose");
        assert_eq!(jobs[8].fabric.label(), "hirise8x2c1-clrg3-in");
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i));
    }

    #[test]
    fn seeds_are_a_pure_function_of_master_and_index() {
        let a = two_fabric_spec().jobs();
        let b = two_fabric_spec().jobs();
        assert_eq!(a, b);
        let c = two_fabric_spec().master_seed(99).jobs();
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
        // All seeds within a campaign are distinct.
        let mut seeds: Vec<u64> = a.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn scheme_axis_fans_out_hirise_only() {
        let spec = two_fabric_spec()
            .scheme(ArbitrationScheme::LayerToLayerLrg)
            .scheme(ArbitrationScheme::class_based());
        let fabrics = spec.expanded_fabrics();
        // 2D once + Hi-Rise twice.
        assert_eq!(fabrics.len(), 3);
        assert_eq!(fabrics[0].label(), "2d8");
        assert_eq!(fabrics[1].label(), "hirise8x2c1-lrg-in");
        assert_eq!(fabrics[2].label(), "hirise8x2c1-clrg3-in");
    }

    #[test]
    fn invalid_grid_combinations_are_skipped() {
        // 8 radix / 2 layers -> 4 inputs per layer; c=4 with input
        // binning is fine, but an 8x2c3 rebuild is impossible, so
        // with_allocation on a c=3 priority-based config cannot switch
        // to binned.
        let cfg = HiRiseConfig::builder(48, 3)
            .channel_multiplicity(3)
            .allocation(ChannelAllocation::PriorityBased)
            .build()
            .unwrap();
        let spec = FabricSpec::hirise(cfg);
        assert!(spec
            .with_allocation(ChannelAllocation::InputBinned)
            .is_none());
        assert!(spec
            .with_allocation(ChannelAllocation::PriorityBased)
            .is_some());
    }

    #[test]
    fn digest_identifies_the_campaign() {
        let a = two_fabric_spec();
        assert_eq!(a.digest(), two_fabric_spec().digest());
        assert_ne!(a.digest(), a.clone().loads([0.05]).digest());
        assert_ne!(a.digest(), a.clone().master_seed(7).digest());
        assert_ne!(
            a.digest(),
            a.clone().sim(SimParams::new().drain(0)).digest()
        );
    }

    #[test]
    fn canonical_json_parses_as_json() {
        let spec = two_fabric_spec()
            .scheme(ArbitrationScheme::WeightedLrg)
            .allocation(ChannelAllocation::OutputBinned)
            .topology(Topology::Mesh {
                cols: 2,
                rows: 2,
                ports_per_direction: 1,
                layer_aware: Some(2),
            });
        let parsed = crate::json::parse(&spec.canonical_json()).expect("canonical json is valid");
        assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some("test"));
    }

    #[test]
    fn from_point_round_trips_radix_and_label_style() {
        let spec = FabricSpec::from_point(&DesignPoint::Folded {
            radix: 64,
            layers: 4,
            flit_bits: 128,
        });
        assert_eq!(spec.radix(), 64);
        assert_eq!(spec.label(), "folded64x4");
        assert_eq!(spec.design().label(), "[16x64]x4");
    }
}
