//! Latency-vs-load curves (Fig. 10 and friends), built on the parallel
//! campaign runner.
//!
//! This is the spec-based successor of the old serial
//! `hirise_sim::sweep::latency_curve`: each load point is one campaign
//! job, so the points of a curve run concurrently and the results are
//! deterministic for a given seed regardless of thread count.

use crate::result::JobResult;
use crate::spec::{CampaignSpec, FabricSpec, PatternSpec, SimParams};

/// One point of a latency-vs-load curve.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load in packets/input/cycle.
    pub offered: f64,
    /// Mean packet latency in cycles.
    pub latency_cycles: f64,
    /// Aggregate accepted throughput in packets/cycle.
    pub accepted: f64,
    /// Whether the network kept up with the offered load (the
    /// workspace's single stability criterion; see `crate::saturation`).
    pub stable: bool,
}

impl From<&JobResult> for LoadPoint {
    fn from(result: &JobResult) -> Self {
        LoadPoint {
            offered: result.load,
            latency_cycles: result.metrics.avg_latency_cycles,
            accepted: result.metrics.accepted_rate,
            stable: result.metrics.stable,
        }
    }
}

/// Sweeps the offered load over `loads` for one fabric and pattern,
/// running the points in parallel on `threads` workers. Each point is
/// a cold-start simulation (no switch state carries over between
/// loads) with a seed derived from `seed` and the point's position.
pub fn latency_curve(
    fabric: &FabricSpec,
    pattern: &PatternSpec,
    loads: &[f64],
    sim: &SimParams,
    seed: u64,
    threads: usize,
) -> Vec<LoadPoint> {
    let spec = CampaignSpec::new("latency-curve")
        .master_seed(seed)
        .fabric(fabric.clone())
        .pattern(pattern.clone())
        .loads(loads.iter().copied())
        .sim(sim.clone());
    spec.run(threads).iter().map(LoadPoint::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load() {
        let sim = SimParams::new().cycles(500, 4_000, 4_000);
        let points = latency_curve(
            &FabricSpec::Flat2d { radix: 16 },
            &PatternSpec::Uniform,
            &[0.05, 0.10, 0.15],
            &sim,
            7,
            2,
        );
        assert_eq!(points.len(), 3);
        assert!(points[0].latency_cycles <= points[1].latency_cycles);
        assert!(points[1].latency_cycles <= points[2].latency_cycles);
        assert!(points.iter().all(|p| p.stable));
    }

    #[test]
    fn thread_count_does_not_change_the_curve() {
        let sim = SimParams::new().cycles(200, 1_000, 1_000);
        let fabric = FabricSpec::Flat2d { radix: 8 };
        let loads = [0.05, 0.1, 0.15, 0.2];
        let serial = latency_curve(&fabric, &PatternSpec::Uniform, &loads, &sim, 3, 1);
        let parallel = latency_curve(&fabric, &PatternSpec::Uniform, &loads, &sim, 3, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.latency_cycles, b.latency_cycles);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.stable, b.stable);
        }
    }
}
