//! Determinism guarantees of the campaign runner: byte-identical JSONL
//! output across thread counts, checkpoint/resume transparency, and the
//! histogram merge algebra the parallel aggregation relies on.

use hirise_core::rng::{Rng, SeedableRng, StdRng};
use hirise_core::{HiRiseConfig, MatchPolicy};
use hirise_lab::{CampaignSpec, FabricSpec, FaultSpec, PatternSpec, Silent, SimParams, Topology};
use hirise_sim::LatencyHistogram;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hirise-lab-determinism-{tag}-{}.jsonl",
        std::process::id()
    ))
}

fn mixed_campaign() -> CampaignSpec {
    CampaignSpec::new("determinism")
        .master_seed(0xDE7E_2214)
        .fabric(FabricSpec::Flat2d { radix: 16 })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(16, 2).build().unwrap(),
        ))
        .pattern(PatternSpec::Uniform)
        .pattern(PatternSpec::Transpose)
        .loads([0.1, 0.3])
        .replicates(2)
        .sim(SimParams::new().cycles(100, 1_000, 1_000))
}

#[test]
fn jsonl_is_byte_identical_across_thread_counts() {
    let spec = mixed_campaign();
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let path = temp_path(&format!("threads{threads}"));
        let _ = std::fs::remove_file(&path);
        let outcome = spec.run_to_file(&path, threads, &Silent).unwrap();
        assert_eq!(outcome.ran, 16);
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 threads");
    assert!(!outputs[0].is_empty());
}

/// The service-shaped traffic generators (incast, RPC chains, diurnal
/// ramps) and the iterative-matching fabrics keep the same guarantee:
/// their per-input counters and pure-function schedules draw nothing
/// from any shared state, so the JSONL is byte-identical at any worker
/// thread count.
#[test]
fn service_traffic_jsonl_is_byte_identical_across_thread_counts() {
    let spec = CampaignSpec::new("service-determinism")
        .master_seed(0x5E21_11CE)
        .fabric(FabricSpec::Matching {
            radix: 16,
            policy: MatchPolicy::Islip { iterations: 2 },
        })
        .fabric(FabricSpec::Matching {
            radix: 16,
            policy: MatchPolicy::Wavefront,
        })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(16, 2).build().unwrap(),
        ))
        .pattern(PatternSpec::Incast { fanin: 4 })
        .pattern(PatternSpec::Rpc { delay: 8 })
        .pattern(PatternSpec::Diurnal { period: 64 })
        .loads([0.1, 0.3])
        .replicates(2)
        .sim(SimParams::new().cycles(100, 1_000, 1_000));
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let path = temp_path(&format!("service-threads{threads}"));
        let _ = std::fs::remove_file(&path);
        let outcome = spec.run_to_file(&path, threads, &Silent).unwrap();
        assert_eq!(outcome.ran, 36);
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 threads");
    let text = String::from_utf8(outputs[0].clone()).unwrap();
    for label in ["islip16k2", "wavefront16", "incast4", "rpc8", "diurnal64"] {
        assert!(text.contains(label), "JSONL must record {label}");
    }
}

/// The same generators under a sharded mesh: resharding the topology
/// across worker threads must not change a byte of the output.
#[test]
fn service_traffic_mesh_results_are_shard_count_invariant() {
    let base = CampaignSpec::new("service-shards")
        .topology(Topology::Mesh {
            cols: 2,
            rows: 2,
            ports_per_direction: 1,
            layer_aware: None,
        })
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Incast { fanin: 4 })
        .pattern(PatternSpec::Rpc { delay: 8 })
        .pattern(PatternSpec::Diurnal { period: 64 })
        .loads([0.02])
        .sim(SimParams::new().cycles(100, 500, 500));
    let mut outputs = Vec::new();
    for shards in [1usize, 2, 8] {
        let spec = base.clone().shards(shards);
        assert_eq!(spec.digest(), base.digest(), "digest must ignore shards");
        let path = temp_path(&format!("service-shards{shards}"));
        let _ = std::fs::remove_file(&path);
        spec.run_to_file(&path, 2, &Silent).unwrap();
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 shards");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 shards");
    assert!(!outputs[0].is_empty());
}

#[test]
fn resumed_campaign_reproduces_identical_bytes() {
    let spec = mixed_campaign();

    let fresh_path = temp_path("fresh");
    let _ = std::fs::remove_file(&fresh_path);
    spec.run_to_file(&fresh_path, 2, &Silent).unwrap();
    let fresh = std::fs::read_to_string(&fresh_path).unwrap();
    std::fs::remove_file(&fresh_path).unwrap();

    // Simulate an interrupted run: keep the header and the first three
    // records (one of them torn mid-line), then resume.
    let resumed_path = temp_path("resumed");
    let mut partial: Vec<&str> = fresh.lines().take(4).collect();
    let torn = &fresh.lines().nth(4).unwrap()[..20];
    partial.push(torn);
    std::fs::write(&resumed_path, partial.join("\n")).unwrap();

    let outcome = spec.run_to_file(&resumed_path, 4, &Silent).unwrap();
    assert_eq!(outcome.total, 16);
    assert_eq!(outcome.skipped, 3, "three intact records were resumed");
    assert_eq!(outcome.ran, 13);

    let resumed = std::fs::read_to_string(&resumed_path).unwrap();
    assert_eq!(resumed, fresh, "resume must not change the final bytes");
    std::fs::remove_file(&resumed_path).unwrap();
}

/// Explicit torn-line tolerance: a checkpoint file truncated at an
/// arbitrary byte offset — mid-record, no trailing newline, exactly
/// what a crash during an append leaves behind — must resume cleanly,
/// re-run only the lost records, and complete to byte-identical output.
#[test]
fn truncation_mid_record_resumes_to_identical_bytes() {
    let spec = mixed_campaign();

    let fresh_path = temp_path("torn-fresh");
    let _ = std::fs::remove_file(&fresh_path);
    spec.run_to_file(&fresh_path, 2, &Silent).unwrap();
    let fresh = std::fs::read(&fresh_path).unwrap();
    std::fs::remove_file(&fresh_path).unwrap();

    // Cut at several raw byte offsets: inside the first record, midway
    // through the file, and one byte short of the end. None is
    // line-aligned.
    let header_len = fresh.iter().position(|&b| b == b'\n').unwrap() + 1;
    for candidate in [header_len + 17, fresh.len() / 2, fresh.len() - 2] {
        // Nudge off line boundaries so the cut is strictly mid-record
        // (a prefix ending at a record's last byte would merely be an
        // unterminated complete line, not a torn one).
        let mut cut = candidate;
        while fresh[cut - 1] == b'\n' || fresh[cut] == b'\n' {
            cut -= 1;
        }
        let torn_path = temp_path(&format!("torn-{cut}"));
        std::fs::write(&torn_path, &fresh[..cut]).unwrap();

        let intact_before = fresh[..cut].iter().filter(|&&b| b == b'\n').count() - 1;
        let outcome = spec.run_to_file(&torn_path, 4, &Silent).unwrap();
        assert_eq!(outcome.total, 16, "cut {cut}");
        assert_eq!(outcome.skipped, intact_before, "cut {cut}");
        assert_eq!(outcome.ran, 16 - intact_before, "cut {cut}");

        let resumed = std::fs::read(&torn_path).unwrap();
        assert_eq!(resumed, fresh, "cut {cut}: bytes differ after resume");
        std::fs::remove_file(&torn_path).unwrap();
    }
}

#[test]
fn in_memory_results_match_across_thread_counts() {
    let spec = mixed_campaign();
    let serial = spec.run(1);
    let parallel = spec.run(8);
    assert_eq!(serial, parallel);
}

#[test]
fn mesh_topology_campaigns_are_deterministic_too() {
    let spec = CampaignSpec::new("mesh-determinism")
        .topology(Topology::Mesh {
            cols: 2,
            rows: 2,
            ports_per_direction: 1,
            layer_aware: None,
        })
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Uniform)
        .loads([0.01, 0.02])
        .sim(SimParams::new().cycles(100, 500, 500));
    let serial = spec.run(1);
    let parallel = spec.run(4);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|r| r.metrics.avg_hops.is_some()));
    assert!(serial.iter().all(|r| r.per_input_accepted.is_none()));
}

/// The `shards` knob is execution-only: a campaign resharded across
/// worker threads must keep its digest and produce byte-identical
/// JSONL, including under a fault axis (faults now apply per router on
/// routed topologies).
#[test]
fn mesh_campaign_results_are_shard_count_invariant() {
    let base = CampaignSpec::new("mesh-shards")
        .topology(Topology::Mesh {
            cols: 3,
            rows: 2,
            ports_per_direction: 1,
            layer_aware: None,
        })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(8, 2).build().unwrap(),
        ))
        .pattern(PatternSpec::Uniform)
        .loads([0.02])
        .fault(FaultSpec::none())
        .fault(FaultSpec::dead_tsv_bundles(1).with_flaky_tsvs(1, 0.05))
        .sim(SimParams::new().cycles(100, 500, 500));
    let mut outputs = Vec::new();
    for shards in [1usize, 2, 8] {
        let spec = base.clone().shards(shards);
        assert_eq!(spec.digest(), base.digest(), "digest must ignore shards");
        let path = temp_path(&format!("shards{shards}"));
        let _ = std::fs::remove_file(&path);
        spec.run_to_file(&path, 2, &Silent).unwrap();
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 shards");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 shards");
    let text = String::from_utf8(outputs[0].clone()).unwrap();
    assert!(
        text.contains("\"fault\":\"dt1ft1q0.05\""),
        "fault axis must be recorded"
    );
}

#[test]
fn dragonfly_campaign_results_are_shard_count_invariant() {
    let base = CampaignSpec::new("wafer-shards")
        .topology(Topology::Dragonfly {
            routers_per_group: 4,
            endpoints_per_router: 4,
            global_per_router: 2,
            groups: 9,
            palmtree: false,
        })
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(16, 2).build().unwrap(),
        ))
        .pattern(PatternSpec::Uniform)
        .loads([0.02])
        .fault(FaultSpec::dead_tsv_bundles(2))
        .sim(SimParams::new().cycles(100, 500, 500));
    let reference = base.clone().shards(1).run(1);
    assert!(reference.iter().all(|r| r.metrics.completed > 0));
    for shards in [3usize, 8] {
        assert_eq!(
            base.clone().shards(shards).run(2),
            reference,
            "dragonfly campaign diverged at {shards} shards"
        );
    }
}

/// Seeded property test: histogram merging is associative and
/// commutative, and merging partitions of a stream equals recording
/// the whole stream — the algebra that makes parallel per-thread
/// aggregation exact.
#[test]
fn histogram_merge_is_associative_commutative_and_partition_exact() {
    let mut rng = StdRng::seed_from_u64(0x1157_0621);
    for round in 0..50 {
        // Three random streams with occasionally huge values to cross
        // octave boundaries.
        let streams: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                let len = rng.gen_range(0usize..200);
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.1) {
                            rng.gen_range(0u64..1_000_000)
                        } else {
                            rng.gen_range(0u64..500)
                        }
                    })
                    .collect()
            })
            .collect();
        let hist = |values: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (hist(&streams[0]), hist(&streams[1]), hist(&streams[2]));

        // Associativity: (a + b) + c == a + (b + c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "associativity failed in round {round}");

        // Commutativity: a + b == b + a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutativity failed in round {round}");

        // Partition exactness: merging the three parts equals one
        // histogram over the concatenated stream.
        let concatenated: Vec<u64> = streams.concat();
        assert_eq!(
            left,
            hist(&concatenated),
            "partition failed in round {round}"
        );
        if left.count() > 0 {
            for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                assert_eq!(
                    left.percentile(p),
                    hist(&concatenated).percentile(p),
                    "percentile {p} disagreed in round {round}"
                );
            }
        }
    }
}

/// Invariant recording is on by default in campaigns: the plumbing puts
/// the violation count in every record (zero on these healthy runs, but
/// present and machine-readable either way).
#[test]
fn violations_are_recorded_not_panicked() {
    let spec = CampaignSpec::new("violations")
        .fabric(FabricSpec::hirise(
            HiRiseConfig::builder(8, 2).build().unwrap(),
        ))
        .pattern(PatternSpec::Uniform)
        .loads([0.2])
        .sim(SimParams::new().cycles(100, 500, 500));
    assert!(spec.sim.record_invariants);
    let results = spec.run(1);
    assert_eq!(results[0].violations, 0);
    let line = results[0].to_jsonl_line();
    assert!(line.contains("\"violations\":0"));
}
