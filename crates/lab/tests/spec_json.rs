//! Canonical-JSON properties of [`CampaignSpec`]: serialization
//! round-trips exactly, and the content digest is invariant under JSON
//! key reordering and whitespace — the properties that make
//! content-addressed result caching sound (two requests that *mean*
//! the same campaign hash the same, however their JSON was formatted).

use hirise_core::rng::{Rng, SeedableRng, StdRng};
use hirise_core::{
    ArbitrationScheme, ChannelAllocation, HiRiseConfig, LocalArbiterKind, MatchPolicy,
};
use hirise_lab::json::{self, Json};
use hirise_lab::{
    campaign_from_json, CampaignSpec, FabricSpec, FaultSpec, PatternSpec, SimParams, Topology,
};
use std::fmt::Write as _;

// --- scrambler: same JSON document, different text ---------------------

/// Serializes a parsed value back to text with object keys in a
/// seeded-random order and random whitespace between tokens.
fn write_scrambled(value: &Json, rng: &mut StdRng, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Num(n) => {
            // f64 Display is shortest-round-trip, so the reparsed value
            // is bit-identical.
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => json::write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                ws(rng, out);
                write_scrambled(item, rng, out);
            }
            ws(rng, out);
            out.push(']');
        }
        Json::Obj(map) => {
            let mut pairs: Vec<_> = map.iter().collect();
            // Fisher-Yates over the (sorted) pairs.
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.gen_range(0..i + 1));
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                ws(rng, out);
                json::write_escaped(out, key);
                ws(rng, out);
                out.push(':');
                ws(rng, out);
                write_scrambled(val, rng, out);
            }
            ws(rng, out);
            out.push('}');
        }
    }
}

fn ws(rng: &mut StdRng, out: &mut String) {
    out.push_str(["", " ", "  ", "\n", "\t", " \n "][rng.gen_range(0usize..6)]);
}

fn scramble(text: &str, rng: &mut StdRng) -> String {
    let value = json::parse(text).expect("canonical JSON parses");
    let mut out = String::with_capacity(text.len() * 2);
    write_scrambled(&value, rng, &mut out);
    out
}

// --- random spec generator ---------------------------------------------

fn random_pattern(rng: &mut StdRng) -> PatternSpec {
    match rng.gen_range(0u32..13) {
        0 => PatternSpec::Uniform,
        1 => PatternSpec::Hotspot {
            output: rng.gen_range(0usize..16),
        },
        2 => PatternSpec::Bursty,
        3 => PatternSpec::Transpose,
        4 => PatternSpec::BitComplement,
        5 => PatternSpec::Tornado,
        6 => PatternSpec::NeighborShift,
        7 => PatternSpec::RandomPermutation {
            salt: rng.gen_range(0u64..u64::MAX),
        },
        8 => PatternSpec::InterLayerOnly {
            layers: rng.gen_range(2usize..5),
        },
        9 => PatternSpec::Incast {
            fanin: rng.gen_range(1usize..9),
        },
        10 => PatternSpec::Rpc {
            delay: rng.gen_range(1u64..64),
        },
        11 => PatternSpec::Diurnal {
            period: rng.gen_range(2u64..2_048),
        },
        _ => PatternSpec::WorstCaseL2lc {
            layers: rng.gen_range(2usize..5),
        },
    }
}

fn random_fabric(rng: &mut StdRng) -> FabricSpec {
    match rng.gen_range(0u32..4) {
        0 => FabricSpec::Flat2d {
            radix: [8, 16, 32][rng.gen_range(0usize..3)],
        },
        1 => FabricSpec::Folded {
            radix: 16,
            layers: [2, 4][rng.gen_range(0usize..2)],
        },
        2 => FabricSpec::Matching {
            radix: [8, 16, 32][rng.gen_range(0usize..3)],
            policy: match rng.gen_range(0u32..3) {
                0 => MatchPolicy::Islip {
                    iterations: rng.gen_range(1usize..5),
                },
                1 => MatchPolicy::Eslip {
                    iterations: rng.gen_range(1usize..5),
                },
                _ => MatchPolicy::Wavefront,
            },
        },
        _ => {
            let layers = [2, 4][rng.gen_range(0usize..2)];
            let mut builder =
                HiRiseConfig::builder(16, layers).channel_multiplicity(rng.gen_range(1usize..3));
            if rng.gen_bool(0.5) {
                builder = builder.scheme(
                    [
                        ArbitrationScheme::LayerToLayerLrg,
                        ArbitrationScheme::WeightedLrg,
                        ArbitrationScheme::ClassBased { classes: 2 },
                    ][rng.gen_range(0usize..3)],
                );
            }
            if rng.gen_bool(0.5) {
                builder = builder.allocation(
                    [
                        ChannelAllocation::InputBinned,
                        ChannelAllocation::OutputBinned,
                        ChannelAllocation::PriorityBased,
                    ][rng.gen_range(0usize..3)],
                );
            }
            if rng.gen_bool(0.3) {
                builder = builder.local_arbiter(LocalArbiterKind::RoundRobin);
            }
            FabricSpec::HiRise(builder.build().expect("generated geometry is valid"))
        }
    }
}

fn random_fault(rng: &mut StdRng) -> FaultSpec {
    FaultSpec {
        dead_tsvs: rng.gen_range(0usize..3),
        dead_ports: rng.gen_range(0usize..3),
        dead_crosspoints: rng.gen_range(0usize..5),
        flaky_tsvs: rng.gen_range(0usize..2),
        flake_probability: rng.gen_range(0u32..100) as f64 / 128.0,
        salt: rng.gen_range(0u64..u64::MAX),
    }
}

fn random_spec(round: usize, rng: &mut StdRng) -> CampaignSpec {
    let mut spec = CampaignSpec::new(format!("prop-{round}"))
        .master_seed(rng.gen_range(0u64..u64::MAX))
        .replicates(rng.gen_range(1usize..4));
    if rng.gen_bool(0.2) {
        spec = spec.topology(Topology::Mesh {
            cols: rng.gen_range(2usize..5),
            rows: rng.gen_range(2usize..5),
            ports_per_direction: rng.gen_range(1usize..3),
            layer_aware: if rng.gen_bool(0.5) { Some(4) } else { None },
        });
    }
    for _ in 0..rng.gen_range(1usize..3) {
        spec = spec.fabric(random_fabric(rng));
    }
    if rng.gen_bool(0.4) {
        spec = spec.scheme(ArbitrationScheme::WeightedLrg);
        spec = spec.scheme(ArbitrationScheme::ClassBased { classes: 2 });
    }
    if rng.gen_bool(0.4) {
        spec = spec.allocation(ChannelAllocation::OutputBinned);
    }
    for _ in 0..rng.gen_range(1usize..4) {
        spec = spec.pattern(random_pattern(rng));
    }
    let loads: Vec<f64> = (0..rng.gen_range(1usize..4))
        .map(|_| rng.gen_range(1u32..1000) as f64 / 1000.0)
        .collect();
    spec = spec.loads(loads);
    for _ in 0..rng.gen_range(0usize..3) {
        spec = spec.fault(random_fault(rng));
    }
    let mut sim = SimParams::new().cycles(
        rng.gen_range(0u64..5_000),
        rng.gen_range(1u64..50_000),
        rng.gen_range(0u64..50_000),
    );
    sim.vcs = rng.gen_range(1usize..8);
    sim.vc_depth_flits = rng.gen_range(1usize..8);
    sim.packet_len_flits = rng.gen_range(1usize..8);
    if rng.gen_bool(0.3) {
        sim = sim.window(Some(rng.gen_range(1usize..16)));
    }
    sim = sim.record_invariants(rng.gen_bool(0.5));
    spec.sim(sim)
}

// --- properties ---------------------------------------------------------

/// Seeded property: for random campaigns across every axis, parsing
/// the canonical JSON reproduces the spec exactly (same digest, same
/// canonical bytes).
#[test]
fn random_specs_round_trip_through_canonical_json() {
    let mut rng = StdRng::seed_from_u64(0x5EC1_A11B);
    for round in 0..60 {
        let spec = random_spec(round, &mut rng);
        let text = spec.canonical_json();
        let parsed = campaign_from_json(&text)
            .unwrap_or_else(|e| panic!("round {round}: canonical JSON rejected: {e}\n{text}"));
        assert_eq!(parsed, spec, "round {round}");
        assert_eq!(parsed.digest(), spec.digest(), "round {round}");
        assert_eq!(parsed.canonical_json(), text, "round {round}");
    }
}

/// Seeded property: the digest is invariant under JSON key reordering
/// and whitespace — scrambled text parses to an equal spec with an
/// equal digest and equal per-job cache keys.
#[test]
fn digest_is_invariant_under_key_order_and_whitespace() {
    let mut rng = StdRng::seed_from_u64(0xD16E_57AB);
    let mut some_text_differed = false;
    for round in 0..60 {
        let spec = random_spec(round, &mut rng);
        let canonical = spec.canonical_json();
        let scrambled = scramble(&canonical, &mut rng);
        some_text_differed |= scrambled != canonical;
        let parsed = campaign_from_json(&scrambled)
            .unwrap_or_else(|e| panic!("round {round}: scrambled JSON rejected: {e}\n{scrambled}"));
        assert_eq!(parsed, spec, "round {round}\n{scrambled}");
        assert_eq!(parsed.digest(), spec.digest(), "round {round}");
        // The job-level cache identity is equally format-independent.
        let (jobs_a, jobs_b) = (spec.jobs(), parsed.jobs());
        assert_eq!(jobs_a.len(), jobs_b.len(), "round {round}");
        for (a, b) in jobs_a.iter().zip(&jobs_b) {
            assert_eq!(
                spec.job_key_json(a),
                parsed.job_key_json(b),
                "round {round}"
            );
        }
    }
    assert!(
        some_text_differed,
        "scrambler never changed the text; the property is vacuous"
    );
}

/// A hand-written (non-random) pin of the same invariant, so a failure
/// prints a minimal reproducible case.
#[test]
fn reordered_and_reformatted_text_parses_to_the_same_digest() {
    let canonical = CampaignSpec::new("pin")
        .master_seed(7)
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Uniform)
        .loads([0.25]);
    let reformatted = concat!(
        "{\n",
        "  \"loads\": [ 0.25 ],\n",
        "  \"patterns\": [\"uniform\"],\n",
        "  \"fabrics\": [ { \"radix\": 8, \"kind\": \"2d\" } ],\n",
        "  \"master_seed\": 7,\n",
        "  \"name\": \"pin\"\n",
        "}"
    );
    let parsed = campaign_from_json(reformatted).unwrap();
    assert_eq!(parsed, canonical);
    assert_eq!(parsed.digest(), canonical.digest());
}
