//! Shared L2 bank model (Table III: 64 banks, 6-cycle latency,
//! single-ported with a request queue standing in for MSHRs).

use std::collections::VecDeque;

/// What a bank access resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankEvent {
    /// The line was present: send data back to `core`.
    Hit {
        /// Requesting core.
        core: usize,
    },
    /// The line must be fetched from memory for `core`.
    Miss {
        /// Requesting core.
        core: usize,
    },
}

/// One bank of the shared L2.
#[derive(Clone, Debug)]
pub struct L2Bank {
    queue: VecDeque<(usize, bool)>,
    busy_cycles_left: u64,
    active: Option<(usize, bool)>,
    latency: u64,
    peak_queue: usize,
}

impl L2Bank {
    /// Creates a bank with the given access latency in core cycles.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "bank latency must be at least 1 cycle");
        Self {
            queue: VecDeque::new(),
            busy_cycles_left: 0,
            active: None,
            latency,
            peak_queue: 0,
        }
    }

    /// Queues a lookup for `core`; `l2_miss` is the trace-determined
    /// outcome.
    pub fn enqueue(&mut self, core: usize, l2_miss: bool) {
        self.queue.push_back((core, l2_miss));
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// A memory fill returned for `core`: the line is written and the
    /// waiting request answered (modelled as immediate on fill arrival).
    pub fn fill(&mut self, core: usize) -> BankEvent {
        BankEvent::Hit { core }
    }

    /// Advances one core cycle; returns the access that completed, if
    /// any.
    pub fn tick(&mut self) -> Option<BankEvent> {
        if self.busy_cycles_left > 0 {
            self.busy_cycles_left -= 1;
            if self.busy_cycles_left == 0 {
                let (core, l2_miss) = self.active.take().expect("busy bank has an access");
                return Some(if l2_miss {
                    BankEvent::Miss { core }
                } else {
                    BankEvent::Hit { core }
                });
            }
            return None;
        }
        if let Some(next) = self.queue.pop_front() {
            self.active = Some(next);
            self.busy_cycles_left = self.latency;
        }
        None
    }

    /// Requests waiting or in service.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// Deepest queue observed (contention indicator).
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_completes_after_latency() {
        let mut bank = L2Bank::new(6);
        bank.enqueue(3, false);
        let mut events = Vec::new();
        for _ in 0..10 {
            if let Some(e) = bank.tick() {
                events.push(e);
            }
        }
        assert_eq!(events, vec![BankEvent::Hit { core: 3 }]);
    }

    #[test]
    fn miss_reports_miss() {
        let mut bank = L2Bank::new(2);
        bank.enqueue(1, true);
        let mut events = Vec::new();
        for _ in 0..5 {
            if let Some(e) = bank.tick() {
                events.push(e);
            }
        }
        assert_eq!(events, vec![BankEvent::Miss { core: 1 }]);
    }

    #[test]
    fn requests_serialise_through_one_port() {
        let mut bank = L2Bank::new(6);
        bank.enqueue(0, false);
        bank.enqueue(1, false);
        let mut completions = Vec::new();
        for t in 0..30u64 {
            if let Some(BankEvent::Hit { core }) = bank.tick() {
                completions.push((t, core));
            }
        }
        assert_eq!(completions.len(), 2);
        assert!(completions[1].0 - completions[0].0 >= 6);
        assert_eq!(bank.peak_queue(), 2);
    }

    #[test]
    fn fill_answers_the_core() {
        let mut bank = L2Bank::new(6);
        assert_eq!(bank.fill(9), BankEvent::Hit { core: 9 });
    }
}
