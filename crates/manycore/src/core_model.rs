//! Core model: 2-way retirement at 2 GHz, non-blocking misses up to a
//! memory-level-parallelism budget, full stall beyond it (Table III:
//! 2-way out-of-order cores with up to 16 outstanding requests; the
//! *effective* overlap an OoO window sustains is far smaller, so the
//! MLP budget is a system parameter).

use crate::trace::{MemAccess, SyntheticTrace};

/// One core executing a synthetic trace.
#[derive(Clone, Debug)]
pub struct Core {
    trace: SyntheticTrace,
    gap: u64,
    outstanding: usize,
    mlp: usize,
    width: u64,
    retired: u64,
    target: u64,
    finished_at: Option<u64>,
    stalled_cycles: u64,
    pending: Option<MemAccess>,
}

impl Core {
    /// Creates a core that will retire `target` instructions from
    /// `trace`, issuing up to `width` instructions per cycle and
    /// tolerating `mlp` outstanding misses before stalling.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `mlp` or `target` is zero.
    pub fn new(mut trace: SyntheticTrace, width: u64, mlp: usize, target: u64) -> Self {
        assert!(
            width > 0 && mlp > 0 && target > 0,
            "parameters must be non-zero"
        );
        let gap = trace.next_gap();
        Self {
            trace,
            gap,
            outstanding: 0,
            mlp,
            width,
            retired: 0,
            target,
            finished_at: None,
            stalled_cycles: 0,
            pending: None,
        }
    }

    /// Advances one core cycle at time `now_cycles`; returns a miss to
    /// send to the memory system, if one issues this cycle.
    pub fn tick(&mut self, now_cycles: u64) -> Option<MemAccess> {
        if self.finished_at.is_some() {
            return None;
        }
        // A miss that could not issue (MLP exhausted) blocks retirement.
        if let Some(access) = self.pending {
            if self.outstanding < self.mlp {
                self.pending = None;
                self.outstanding += 1;
                return Some(access);
            }
            self.stalled_cycles += 1;
            return None;
        }
        let mut budget = self.width;
        while budget > 0 {
            if self.gap == 0 {
                let access = self.trace.next_access();
                self.gap = self.trace.next_gap();
                if self.outstanding < self.mlp {
                    self.outstanding += 1;
                    return Some(access);
                }
                self.pending = Some(access);
                self.stalled_cycles += 1;
                return None;
            }
            let step = budget.min(self.gap);
            self.retired += step;
            self.gap -= step;
            budget -= step;
            if self.retired >= self.target {
                self.finished_at = Some(now_cycles);
                return None;
            }
        }
        None
    }

    /// Delivers a data reply: one outstanding miss completes.
    ///
    /// # Panics
    ///
    /// Panics if no miss is outstanding.
    pub fn on_reply(&mut self) {
        assert!(self.outstanding > 0, "reply with no outstanding miss");
        self.outstanding -= 1;
    }

    /// Whether the core has retired its instruction target.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Cycle at which the core finished, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles spent fully stalled on the memory system.
    pub fn stalled_cycles(&self) -> u64 {
        self.stalled_cycles
    }

    /// Misses currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::benchmark_profile;

    fn core_for(name: &str, mlp: usize, target: u64) -> Core {
        Core::new(
            SyntheticTrace::new(benchmark_profile(name), 64, 42),
            2,
            mlp,
            target,
        )
    }

    #[test]
    fn compute_bound_core_finishes_at_full_width() {
        let mut core = core_for("sjeng", 4, 1_000);
        let mut cycles = 0;
        while !core.is_finished() {
            let _ = core.tick(cycles);
            cycles += 1;
            assert!(cycles < 2_000, "should finish ~500 cycles");
        }
        // 1000 instructions at width 2: about 500 cycles.
        assert!((500..600).contains(&cycles), "{cycles}");
    }

    #[test]
    fn memory_bound_core_stalls_without_replies() {
        let mut core = core_for("mcf", 4, 10_000);
        let mut misses = 0;
        for t in 0..2_000 {
            if core.tick(t).is_some() {
                misses += 1;
            }
        }
        // MLP of 4 and no replies: exactly 4 misses issue, then stall.
        assert_eq!(misses, 4);
        assert!(!core.is_finished());
        assert!(core.stalled_cycles() > 1_000);
    }

    #[test]
    fn replies_unblock_the_core() {
        let mut core = core_for("mcf", 1, 10_000);
        let mut issued = 0;
        for t in 0..1_000 {
            if core.tick(t).is_some() {
                issued += 1;
                core.on_reply(); // instant memory
            }
        }
        assert!(
            issued > 50,
            "steady progress with instant replies: {issued}"
        );
        assert!(core.retired() > 1_000);
    }

    #[test]
    #[should_panic(expected = "no outstanding miss")]
    fn spurious_reply_panics() {
        let mut core = core_for("sjeng", 4, 100);
        core.on_reply();
    }
}
