//! Trace-driven many-core (CMP) simulator for evaluating switch fabrics
//! on application-like workloads (§V, §VI-D of the Hi-Rise paper).
//!
//! The paper integrates a trace-driven, cycle-accurate many-core
//! simulator with a single-switch system: 64 two-way out-of-order cores
//! at 2 GHz, private L1s, a 64-bank shared L2 with MSHRs, and 8 memory
//! controllers (Table III), with instruction traces collected by Pin.
//!
//! Proprietary traces are not available, so this crate substitutes a
//! *synthetic trace generator*: each benchmark is characterised by its
//! per-core L1+L2 misses-per-kilo-instruction — the quantity Table VI
//! itself reports as "the network load for the workloads" — plus a
//! memory-intensity split. The eight multi-programmed mixes of Table VI
//! are reproduced with per-benchmark MPKI values calibrated so that
//! every mix's average MPKI matches the paper exactly.
//!
//! The system model:
//!
//! * 64 tiles on one switch; tile = core + shared-L2 bank, and 8 tiles
//!   also host a memory controller.
//! * Cores retire up to 2 instructions per 2 GHz cycle, generate L1
//!   misses per their benchmark profile, and stall when their
//!   memory-level parallelism budget is exhausted.
//! * L1 misses travel the switch to an address-hashed L2 bank (6-cycle
//!   bank access); L2 misses go on to a memory controller (80 ns), and
//!   data replies retrace the path. Control packets are 1 flit, data
//!   packets 4 flits of 128 bits (a 64 B line).
//! * The switch runs in its own clock domain (the design's frequency
//!   from `hirise-phys`); the simulation advances both domains on a
//!   picosecond timeline.
//!
//! # Example
//!
//! ```no_run
//! use hirise_core::{HiRiseConfig, HiRiseSwitch, Switch2d};
//! use hirise_manycore::{table_vi_mixes, CmpSystem, SystemConfig};
//!
//! let mix = &table_vi_mixes()[0];
//! let cfg = SystemConfig::new().instructions_per_core(20_000);
//! let flat = CmpSystem::new(Switch2d::new(64), 1.69, mix, cfg.clone()).run();
//! let hirise = CmpSystem::new(
//!     HiRiseSwitch::new(&HiRiseConfig::paper_optimal()),
//!     2.2,
//!     mix,
//!     cfg,
//! )
//! .run();
//! println!("speedup: {:.3}", hirise.system_ipc() / flat.system_ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod core_model;
mod memory;
mod message;
mod netif;
mod profiles;
mod system;
mod trace;

pub use cache::L2Bank;
pub use core_model::Core;
pub use memory::MemoryController;
pub use message::Message;
pub use netif::{DeliveryTimeout, SwitchNet};
pub use profiles::{benchmark_profile, table_vi_mixes, BenchmarkProfile, WorkloadMix};
pub use system::{CmpSystem, SystemConfig, SystemReport};
pub use trace::SyntheticTrace;
