//! Memory controller model (Table III: 8 on-chip controllers, 4 DDR
//! channels each at 16 GB/s, 80 ns access latency).
//!
//! Each controller serialises line fetches at its aggregate channel
//! bandwidth (64 GB/s ⇒ one 64 B line per ns) and every fetch takes the
//! fixed 80 ns access latency on top of any queueing.

use std::collections::VecDeque;

/// A pending fill inside a controller.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Fill {
    ready_ns: f64,
    core: usize,
    bank: usize,
}

/// One on-chip memory controller.
#[derive(Clone, Debug)]
pub struct MemoryController {
    inflight: VecDeque<Fill>,
    next_free_ns: f64,
    latency_ns: f64,
    service_ns: f64,
    served: u64,
}

impl MemoryController {
    /// Creates a controller with the given access latency and per-line
    /// service (bandwidth) interval, both in ns.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    pub fn new(latency_ns: f64, service_ns: f64) -> Self {
        assert!(
            latency_ns > 0.0 && service_ns > 0.0,
            "times must be positive"
        );
        Self {
            inflight: VecDeque::new(),
            next_free_ns: 0.0,
            latency_ns,
            service_ns,
            served: 0,
        }
    }

    /// The paper's configuration: 80 ns latency, one line per ns.
    pub fn paper() -> Self {
        Self::new(80.0, 1.0)
    }

    /// Accepts a fill request arriving at `now_ns` for (`core`, `bank`).
    pub fn request(&mut self, now_ns: f64, core: usize, bank: usize) {
        let start = now_ns.max(self.next_free_ns);
        self.next_free_ns = start + self.service_ns;
        self.inflight.push_back(Fill {
            ready_ns: start + self.latency_ns,
            core,
            bank,
        });
    }

    /// Pops every fill that has completed by `now_ns`, as
    /// `(core, bank)` pairs in completion order.
    pub fn drain_ready(&mut self, now_ns: f64) -> Vec<(usize, usize)> {
        let mut ready = Vec::new();
        while let Some(front) = self.inflight.front() {
            if front.ready_ns <= now_ns {
                let fill = self.inflight.pop_front().expect("front exists");
                self.served += 1;
                ready.push((fill.core, fill.bank));
            } else {
                break;
            }
        }
        ready
    }

    /// Fills currently queued or in flight.
    pub fn occupancy(&self) -> usize {
        self.inflight.len()
    }

    /// Total fills served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_takes_the_access_latency() {
        let mut mc = MemoryController::paper();
        mc.request(10.0, 2, 5);
        assert!(mc.drain_ready(89.9).is_empty());
        assert_eq!(mc.drain_ready(90.0), vec![(2, 5)]);
        assert_eq!(mc.served(), 1);
    }

    #[test]
    fn bandwidth_serialises_bursts() {
        let mut mc = MemoryController::paper();
        // Ten simultaneous requests: the last starts 9 ns later.
        for i in 0..10 {
            mc.request(0.0, i, 0);
        }
        assert_eq!(mc.drain_ready(80.0).len(), 1);
        assert_eq!(mc.drain_ready(89.0).len(), 9);
    }

    #[test]
    fn completion_order_is_fifo() {
        let mut mc = MemoryController::new(10.0, 1.0);
        mc.request(0.0, 1, 0);
        mc.request(0.0, 2, 0);
        let done = mc.drain_ready(100.0);
        assert_eq!(done, vec![(1, 0), (2, 0)]);
    }
}
