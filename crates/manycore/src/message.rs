//! On-chip messages exchanged over the switch.
//!
//! Control packets (requests) are 1 flit; data packets (a 64 B cache
//! line over a 128-bit bus) are 4 flits, matching §V.

/// A message between tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Message {
    /// Core → L2 bank: read request for a line.
    L2Request {
        /// Requesting core (tile index).
        core: usize,
        /// Pre-determined L2 outcome from the trace.
        l2_miss: bool,
    },
    /// L2 bank → core: data reply.
    L2Reply {
        /// Destination core.
        core: usize,
    },
    /// L2 bank → memory controller: fill request.
    MemRequest {
        /// Core that started the transaction.
        core: usize,
        /// Bank waiting for the fill.
        bank: usize,
    },
    /// Memory controller → L2 bank: fill data.
    MemReply {
        /// Core that started the transaction.
        core: usize,
        /// Bank the fill returns to.
        bank: usize,
    },
}

impl Message {
    /// Packet length in flits: 1 for control, 4 for data (64 B line).
    pub fn len_flits(&self) -> usize {
        match self {
            Message::L2Request { .. } | Message::MemRequest { .. } => 1,
            Message::L2Reply { .. } | Message::MemReply { .. } => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_a_cache_line() {
        assert_eq!(
            Message::L2Request {
                core: 0,
                l2_miss: false
            }
            .len_flits(),
            1
        );
        assert_eq!(Message::L2Reply { core: 0 }.len_flits(), 4);
        assert_eq!(Message::MemRequest { core: 0, bank: 1 }.len_flits(), 1);
        assert_eq!(Message::MemReply { core: 0, bank: 1 }.len_flits(), 4);
    }
}
