//! Network interface: drives a switch [`Fabric`] with tile-to-tile
//! [`Message`]s, using the same cycle semantics as the synthetic-traffic
//! simulator (one arbitration cycle, one flit per cycle, release beat).

use crate::message::Message;
use hirise_core::{Fabric, InputId, OutputId, Request};
use hirise_sim::{InputPort, Packet};
use std::collections::{HashMap, VecDeque};

/// An in-flight transfer through the switch.
#[derive(Clone, Copy, Debug)]
struct Transfer {
    packet: Packet,
    flits_remaining: usize,
}

/// A bounded wait for a delivery expired: the network stepped the
/// requested number of cycles without any message arriving. Carries the
/// oldest undelivered message so the caller can report *which* request
/// stalled and for how long — a faulty or saturated switch surfaces as
/// a diagnosable error instead of an `expect` panic deep in a test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryTimeout {
    /// Id (as returned by [`SwitchNet::send`]) of the oldest message
    /// still undelivered, `None` when nothing was in flight at all.
    pub id: Option<u64>,
    /// Age in cycles of that message at the time the wait expired.
    pub age_cycles: u64,
}

impl std::fmt::Display for DeliveryTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.id {
            Some(id) => write!(
                f,
                "no delivery within the wait; oldest undelivered message \
                 {id} is {} cycles old",
                self.age_cycles
            ),
            None => write!(f, "no delivery within the wait; nothing in flight"),
        }
    }
}

impl std::error::Error for DeliveryTimeout {}

/// A switch plus per-tile injection ports carrying [`Message`]s.
#[derive(Debug)]
pub struct SwitchNet<F> {
    fabric: F,
    ports: Vec<InputPort>,
    transfers: Vec<Option<Transfer>>,
    /// Message payload and birth cycle, keyed by packet id.
    payloads: HashMap<u64, (Message, u64)>,
    arrivals: VecDeque<(usize, Message)>,
    next_id: u64,
    now: u64,
    delivered: u64,
    latency_sum: u64,
    // Scratch reused across cycles.
    candidates: Vec<Packet>,
    requests: Vec<Request>,
}

impl<F: Fabric> SwitchNet<F> {
    /// Wraps `fabric` with 4-VC injection ports on every tile.
    pub fn new(fabric: F) -> Self {
        let radix = fabric.radix();
        Self {
            fabric,
            ports: (0..radix).map(|_| InputPort::new(4)).collect(),
            transfers: vec![None; radix],
            payloads: HashMap::new(),
            arrivals: VecDeque::new(),
            next_id: 0,
            now: 0,
            delivered: 0,
            latency_sum: 0,
            candidates: Vec::with_capacity(radix),
            requests: Vec::with_capacity(radix),
        }
    }

    /// Queues `message` for transmission from tile `src` to tile `dst`,
    /// returning the message's id (reported by [`DeliveryTimeout`] if
    /// the message later stalls).
    ///
    /// # Panics
    ///
    /// Panics if either tile index is out of range or `src == dst`
    /// (same-tile traffic should bypass the network).
    pub fn send(&mut self, src: usize, dst: usize, message: Message) -> u64 {
        assert!(src < self.ports.len() && dst < self.ports.len());
        assert_ne!(src, dst, "same-tile messages bypass the switch");
        let id = self.next_id;
        let packet = Packet {
            id,
            src: InputId::new(src),
            dst: OutputId::new(dst),
            len_flits: message.len_flits(),
            birth_cycle: self.now,
            measured: false,
            handle: hirise_core::PacketHandle::NONE,
        };
        self.payloads.insert(id, (message, self.now));
        self.next_id += 1;
        self.ports[src].inject(packet);
        id
    }

    /// Advances the network one switch cycle.
    pub fn step(&mut self) {
        let radix = self.ports.len();
        // (a) Progress transfers; complete and release.
        for input in 0..radix {
            if let Some(transfer) = &mut self.transfers[input] {
                if transfer.flits_remaining > 0 {
                    transfer.flits_remaining -= 1;
                    if transfer.flits_remaining == 0 {
                        let packet = transfer.packet;
                        let (message, _birth) = self
                            .payloads
                            .remove(&packet.id)
                            .expect("payload recorded at send time");
                        self.delivered += 1;
                        self.latency_sum += packet.latency(self.now);
                        self.arrivals.push_back((packet.dst.index(), message));
                        self.ports[input].complete_transfer();
                    }
                } else {
                    self.fabric.release(InputId::new(input));
                    self.transfers[input] = None;
                }
            }
        }
        // (b) Buffer and arbitrate.
        for port in &mut self.ports {
            port.fill_vcs();
        }
        self.candidates.clear();
        self.requests.clear();
        for input in 0..radix {
            if self.transfers[input].is_some() {
                continue;
            }
            if let Some(packet) = self.ports[input].select_candidate() {
                self.candidates.push(packet);
                self.requests
                    .push(Request::new(InputId::new(input), packet.dst));
            }
        }
        let grants = self.fabric.arbitrate(&self.requests);
        let mut granted = vec![false; radix];
        for grant in &grants {
            granted[grant.input.index()] = true;
        }
        for packet in &self.candidates {
            let input = packet.src.index();
            if granted[input] {
                self.ports[input].confirm_grant();
                self.transfers[input] = Some(Transfer {
                    packet: *packet,
                    flits_remaining: packet.len_flits,
                });
            } else {
                self.ports[input].revoke_candidate();
            }
        }
        self.now += 1;
    }

    /// Takes the next delivered message, if any.
    pub fn pop_arrival(&mut self) -> Option<(usize, Message)> {
        self.arrivals.pop_front()
    }

    /// Steps the network until a message arrives, for at most
    /// `max_cycles` cycles, returning the arrival. Already-queued
    /// arrivals are returned without stepping.
    ///
    /// # Errors
    ///
    /// [`DeliveryTimeout`] when the bound expires with no delivery,
    /// naming the oldest undelivered message and its age — the typed
    /// replacement for "step N times then panic" wait loops, and the
    /// way a dead-port fault or saturated switch shows up in tests.
    pub fn step_until_arrival(
        &mut self,
        max_cycles: u64,
    ) -> Result<(usize, Message), DeliveryTimeout> {
        for _ in 0..max_cycles {
            if let Some(arrival) = self.pop_arrival() {
                return Ok(arrival);
            }
            self.step();
        }
        if let Some(arrival) = self.pop_arrival() {
            return Ok(arrival);
        }
        let oldest = self
            .payloads
            .iter()
            .min_by_key(|(&id, &(_, birth))| (birth, id))
            .map(|(&id, &(_, birth))| (id, self.now - birth));
        Err(DeliveryTimeout {
            id: oldest.map(|(id, _)| id),
            age_cycles: oldest.map_or(0, |(_, age)| age),
        })
    }

    /// Messages still queued, buffered or in flight.
    pub fn in_flight(&self) -> usize {
        self.payloads.len()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Mean network latency in switch cycles over delivered messages.
    pub fn avg_latency_cycles(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Current network cycle.
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::Switch2d;

    #[test]
    fn delivers_a_message_end_to_end() {
        let mut net = SwitchNet::new(Switch2d::new(8));
        net.send(0, 5, Message::L2Reply { core: 3 });
        let mut arrived = None;
        for _ in 0..20 {
            net.step();
            if let Some(a) = net.pop_arrival() {
                arrived = Some(a);
                break;
            }
        }
        assert_eq!(arrived, Some((5, Message::L2Reply { core: 3 })));
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn control_packets_are_faster_than_data() {
        let latency_of = |message: Message| {
            let mut net = SwitchNet::new(Switch2d::new(8));
            net.send(1, 2, message);
            net.step_until_arrival(20).expect("uncontended delivery");
            net.avg_latency_cycles()
        };
        let control = latency_of(Message::L2Request {
            core: 0,
            l2_miss: false,
        });
        let data = latency_of(Message::L2Reply { core: 0 });
        assert_eq!(control, 1.0);
        assert_eq!(data, 4.0);
    }

    #[test]
    fn stalled_delivery_is_a_typed_timeout_not_a_panic() {
        use hirise_core::{Fault, FaultSite};
        // Kill input port 1, then send from it: the message can never
        // win arbitration, and the bounded wait reports exactly which
        // message stalled and for how long.
        let mut fabric = Switch2d::new(8);
        fabric
            .inject_fault(Fault::dead(FaultSite::Port { input: 1 }))
            .unwrap();
        let mut net = SwitchNet::new(fabric);
        let id = net.send(1, 2, Message::L2Reply { core: 0 });
        let err = net.step_until_arrival(30).unwrap_err();
        assert_eq!(err.id, Some(id));
        assert_eq!(err.age_cycles, 30);
        assert!(err.to_string().contains("30 cycles old"));
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn empty_network_timeout_reports_nothing_in_flight() {
        let mut net = SwitchNet::new(Switch2d::new(8));
        let err = net.step_until_arrival(3).unwrap_err();
        assert_eq!(
            err,
            DeliveryTimeout {
                id: None,
                age_cycles: 0
            }
        );
        assert!(err.to_string().contains("nothing in flight"));
    }

    #[test]
    fn contention_serialises_same_destination() {
        let mut net = SwitchNet::new(Switch2d::new(8));
        net.send(0, 7, Message::L2Reply { core: 0 });
        net.send(1, 7, Message::L2Reply { core: 1 });
        let mut arrivals = Vec::new();
        for _ in 0..40 {
            net.step();
            while let Some(a) = net.pop_arrival() {
                arrivals.push((net.now(), a.0));
            }
        }
        assert_eq!(arrivals.len(), 2);
        // Second delivery at least a full packet later than the first.
        assert!(arrivals[1].0 >= arrivals[0].0 + 4);
    }

    #[test]
    #[should_panic(expected = "bypass the switch")]
    fn same_tile_send_is_rejected() {
        let mut net = SwitchNet::new(Switch2d::new(8));
        net.send(3, 3, Message::L2Reply { core: 3 });
    }
}
