//! Benchmark profiles and the Table VI workload mixes.
//!
//! Each benchmark is characterised by its per-core network load — the
//! sum of L1-MPKI and L2-MPKI, which is exactly the quantity Table VI
//! reports per mix ("corresponds to the network load for the
//! workloads"). The per-benchmark values below were calibrated by a
//! least-norm fit (starting from typical published SPEC CPU2006 /
//! commercial-workload miss rates) so that the 64-core average of every
//! one of the eight mixes matches the paper's Table VI exactly.

/// Miss behaviour of one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006 or commercial trace).
    pub name: &'static str,
    /// L1-MPKI + L2-MPKI: network transactions per kilo-instruction.
    pub mpki_total: f64,
}

impl BenchmarkProfile {
    /// L1 misses per kilo-instruction (requests from core to L2 bank).
    ///
    /// `mpki_total = l1_mpki + l2_mpki` and `l2_mpki = f * l1_mpki`
    /// where `f` is the benchmark's L2 miss fraction, so
    /// `l1_mpki = total / (1 + f)`.
    pub fn l1_mpki(&self) -> f64 {
        self.mpki_total / (1.0 + self.l2_miss_fraction())
    }

    /// L2 misses per kilo-instruction (requests from L2 to memory).
    pub fn l2_mpki(&self) -> f64 {
        self.mpki_total - self.l1_mpki()
    }

    /// Fraction of L2 accesses that miss to memory. Memory-bound
    /// benchmarks (higher total MPKI) see proportionally more capacity
    /// misses; the affine map below caps at 50%.
    pub fn l2_miss_fraction(&self) -> f64 {
        (0.15 + self.mpki_total / 400.0).min(0.5)
    }
}

/// MPKI table (L1+L2 per core), least-norm calibrated to Table VI.
const PROFILES: &[BenchmarkProfile] = &[
    BenchmarkProfile {
        name: "milc",
        mpki_total: 40.79,
    },
    BenchmarkProfile {
        name: "applu",
        mpki_total: 12.79,
    },
    BenchmarkProfile {
        name: "astar",
        mpki_total: 10.41,
    },
    BenchmarkProfile {
        name: "sjeng",
        mpki_total: 0.03,
    },
    BenchmarkProfile {
        name: "tonto",
        mpki_total: 3.79,
    },
    BenchmarkProfile {
        name: "hmmer",
        mpki_total: 22.44,
    },
    BenchmarkProfile {
        name: "sjas",
        mpki_total: 45.64,
    },
    BenchmarkProfile {
        name: "gcc",
        mpki_total: 4.96,
    },
    BenchmarkProfile {
        name: "sjbb",
        mpki_total: 41.27,
    },
    BenchmarkProfile {
        name: "gromacs",
        mpki_total: 3.34,
    },
    BenchmarkProfile {
        name: "xalan",
        mpki_total: 31.55,
    },
    BenchmarkProfile {
        name: "libquantum",
        mpki_total: 46.51,
    },
    BenchmarkProfile {
        name: "barnes",
        mpki_total: 19.16,
    },
    BenchmarkProfile {
        name: "tpcw",
        mpki_total: 74.28,
    },
    BenchmarkProfile {
        name: "povray",
        mpki_total: 7.51,
    },
    BenchmarkProfile {
        name: "swim",
        mpki_total: 57.25,
    },
    BenchmarkProfile {
        name: "leslie",
        mpki_total: 25.02,
    },
    BenchmarkProfile {
        name: "omnet",
        mpki_total: 36.13,
    },
    BenchmarkProfile {
        name: "art",
        mpki_total: 54.53,
    },
    BenchmarkProfile {
        name: "mcf",
        mpki_total: 145.48,
    },
    BenchmarkProfile {
        name: "ocean",
        mpki_total: 41.38,
    },
    BenchmarkProfile {
        name: "lbm",
        mpki_total: 51.52,
    },
    BenchmarkProfile {
        name: "deal",
        mpki_total: 11.52,
    },
    BenchmarkProfile {
        name: "sap",
        mpki_total: 54.53,
    },
    BenchmarkProfile {
        name: "namd",
        mpki_total: 20.72,
    },
    BenchmarkProfile {
        name: "Gems",
        mpki_total: 97.85,
    },
    BenchmarkProfile {
        name: "soplex",
        mpki_total: 49.40,
    },
];

/// Looks up a benchmark profile by name.
///
/// # Panics
///
/// Panics if the benchmark is unknown.
pub fn benchmark_profile(name: &str) -> BenchmarkProfile {
    *PROFILES
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// One multi-programmed workload of Table VI: benchmark instance counts
/// summing to 64 cores, plus the paper's reported per-core average MPKI
/// and measured speedup (for EXPERIMENTS.md comparison).
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    /// Mix name ("Mix1".."Mix8").
    pub name: &'static str,
    /// `(benchmark, instance count)` pairs summing to 64.
    pub entries: Vec<(&'static str, usize)>,
    /// Table VI's "avg. MPKI" column.
    pub paper_avg_mpki: f64,
    /// Table VI's "Speedup" column (3D vs 2D).
    pub paper_speedup: f64,
}

impl WorkloadMix {
    /// Expands the mix to a 64-entry per-core profile assignment.
    /// Allocation is deterministic (instances laid out in table order),
    /// mirroring the paper's layer-oblivious random allocation in that
    /// it ignores layer boundaries.
    pub fn assign_cores(&self) -> Vec<BenchmarkProfile> {
        let mut cores = Vec::with_capacity(64);
        for &(name, count) in &self.entries {
            for _ in 0..count {
                cores.push(benchmark_profile(name));
            }
        }
        assert_eq!(cores.len(), 64, "a mix must fill exactly 64 cores");
        cores
    }

    /// The per-core average L1+L2 MPKI of this mix (should match
    /// [`paper_avg_mpki`](Self::paper_avg_mpki)).
    pub fn avg_mpki(&self) -> f64 {
        self.assign_cores()
            .iter()
            .map(|p| p.mpki_total)
            .sum::<f64>()
            / 64.0
    }
}

/// The eight multi-programmed workloads of Table VI.
pub fn table_vi_mixes() -> Vec<WorkloadMix> {
    vec![
        WorkloadMix {
            name: "Mix1",
            entries: vec![
                ("milc", 11),
                ("applu", 11),
                ("astar", 10),
                ("sjeng", 11),
                ("tonto", 11),
                ("hmmer", 10),
            ],
            paper_avg_mpki: 15.0,
            paper_speedup: 1.02,
        },
        WorkloadMix {
            name: "Mix2",
            entries: vec![
                ("sjas", 11),
                ("gcc", 11),
                ("sjbb", 11),
                ("gromacs", 11),
                ("sjeng", 10),
                ("xalan", 10),
            ],
            paper_avg_mpki: 21.3,
            paper_speedup: 1.04,
        },
        WorkloadMix {
            name: "Mix3",
            entries: vec![
                ("milc", 11),
                ("libquantum", 10),
                ("astar", 11),
                ("barnes", 11),
                ("tpcw", 11),
                ("povray", 10),
            ],
            paper_avg_mpki: 33.3,
            paper_speedup: 1.06,
        },
        WorkloadMix {
            name: "Mix4",
            entries: vec![
                ("astar", 11),
                ("swim", 11),
                ("leslie", 10),
                ("omnet", 10),
                ("sjas", 11),
                ("art", 11),
            ],
            paper_avg_mpki: 38.4,
            paper_speedup: 1.06,
        },
        WorkloadMix {
            name: "Mix5",
            entries: vec![
                ("mcf", 11),
                ("ocean", 10),
                ("gromacs", 10),
                ("lbm", 11),
                ("deal", 11),
                ("sap", 11),
            ],
            paper_avg_mpki: 52.2,
            paper_speedup: 1.08,
        },
        WorkloadMix {
            name: "Mix6",
            entries: vec![
                ("mcf", 10),
                ("namd", 11),
                ("hmmer", 11),
                ("tpcw", 11),
                ("omnet", 10),
                ("swim", 11),
            ],
            paper_avg_mpki: 58.4,
            paper_speedup: 1.09,
        },
        WorkloadMix {
            name: "Mix7",
            // Table VI's printed counts for Mix7 sum to 63, not 64 — a
            // typo in the paper. The 64th core gets a sjeng instance
            // (0.03 MPKI), which perturbs the mix average by < 0.001.
            entries: vec![
                ("Gems", 10),
                ("sjbb", 11),
                ("sjas", 11),
                ("mcf", 10),
                ("xalan", 11),
                ("sap", 10),
                ("sjeng", 1),
            ],
            paper_avg_mpki: 66.9,
            paper_speedup: 1.16,
        },
        WorkloadMix {
            name: "Mix8",
            entries: vec![
                ("milc", 11),
                ("tpcw", 10),
                ("Gems", 11),
                ("mcf", 11),
                ("sjas", 11),
                ("soplex", 10),
            ],
            paper_avg_mpki: 76.0,
            paper_speedup: 1.15,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mix_fills_64_cores() {
        for mix in table_vi_mixes() {
            assert_eq!(
                mix.entries.iter().map(|(_, c)| c).sum::<usize>(),
                64,
                "{}",
                mix.name
            );
            assert_eq!(mix.assign_cores().len(), 64);
        }
    }

    #[test]
    fn mix_averages_match_table_vi() {
        for mix in table_vi_mixes() {
            let avg = mix.avg_mpki();
            assert!(
                (avg - mix.paper_avg_mpki).abs() < 0.05,
                "{}: computed {avg}, paper {}",
                mix.name,
                mix.paper_avg_mpki
            );
        }
    }

    #[test]
    fn l1_l2_split_is_consistent() {
        for p in PROFILES {
            assert!(
                (p.l1_mpki() + p.l2_mpki() - p.mpki_total).abs() < 1e-9,
                "{}",
                p.name
            );
            assert!(
                p.l2_mpki() <= p.l1_mpki(),
                "{}: more L2 than L1 misses",
                p.name
            );
            let f = p.l2_miss_fraction();
            assert!((0.15..=0.5).contains(&f), "{}: fraction {f}", p.name);
        }
    }

    #[test]
    fn memory_bound_benchmarks_miss_more() {
        let mcf = benchmark_profile("mcf");
        let sjeng = benchmark_profile("sjeng");
        assert!(mcf.l2_miss_fraction() > sjeng.l2_miss_fraction());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = benchmark_profile("doom");
    }
}
