//! The full 64-tile CMP bound to one switch fabric.
//!
//! Tiles host a core and an L2 bank each; eight tiles also host a
//! memory controller. Cores and the memory system run in the 2 GHz core
//! domain; the switch runs at its own design frequency (from
//! `hirise-phys`), and the simulation advances both domains on a
//! picosecond timeline.

use crate::cache::{BankEvent, L2Bank};
use crate::core_model::Core;
use crate::memory::MemoryController;
use crate::message::Message;
use crate::netif::SwitchNet;
use crate::profiles::WorkloadMix;
use crate::trace::SyntheticTrace;
use hirise_core::Fabric;
use std::collections::VecDeque;

/// System parameters (defaults follow Table III).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    core_freq_ghz: f64,
    core_width: u64,
    mlp: usize,
    l2_latency_cycles: u64,
    mem_latency_ns: f64,
    mem_service_ns: f64,
    mem_controllers: usize,
    instructions_per_core: u64,
    seed: u64,
    max_core_cycles: u64,
}

impl SystemConfig {
    /// The Table III configuration: 2 GHz 2-way cores, 6-cycle L2
    /// banks, 8 memory controllers at 80 ns, 50 k instructions per core.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            core_freq_ghz: 2.0,
            core_width: 2,
            // Table III allows up to 16 outstanding requests per core;
            // an MLP budget of 8 calibrates the network-sensitivity of
            // the mixes to the paper's observed speedup range (see
            // EXPERIMENTS.md).
            mlp: 8,
            l2_latency_cycles: 6,
            mem_latency_ns: 80.0,
            mem_service_ns: 1.0,
            mem_controllers: 8,
            instructions_per_core: 50_000,
            seed: 0xCAFE,
            max_core_cycles: 50_000_000,
        }
    }

    /// Sets the per-core instruction budget.
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.instructions_per_core = n;
        self
    }

    /// Sets the memory-level-parallelism budget per core.
    pub fn mlp(mut self, mlp: usize) -> Self {
        self.mlp = mlp;
        self
    }

    /// Sets the RNG seed (trace generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the safety cap on simulated core cycles.
    pub fn max_core_cycles(mut self, cycles: u64) -> Self {
        self.max_core_cycles = cycles;
        self
    }
}

/// Results of one CMP run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    per_core_ipc: Vec<f64>,
    elapsed_cycles: u64,
    net_delivered: u64,
    net_avg_latency_cycles: f64,
    mem_fills: u64,
    bank_peak_queue: usize,
    finished: bool,
}

impl SystemReport {
    /// Per-core IPC (instructions / core cycles to finish).
    pub fn per_core_ipc(&self) -> &[f64] {
        &self.per_core_ipc
    }

    /// Sum of per-core IPCs — the "system IPC" used for speedups.
    pub fn system_ipc(&self) -> f64 {
        self.per_core_ipc.iter().sum()
    }

    /// Core cycles until the last core finished.
    pub fn elapsed_cycles(&self) -> u64 {
        self.elapsed_cycles
    }

    /// Messages the switch delivered.
    pub fn net_delivered(&self) -> u64 {
        self.net_delivered
    }

    /// Mean switch latency in switch cycles.
    pub fn net_avg_latency_cycles(&self) -> f64 {
        self.net_avg_latency_cycles
    }

    /// Whether every core retired its budget before the cycle cap.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Cache lines fetched from memory across all controllers.
    pub fn mem_fills(&self) -> u64 {
        self.mem_fills
    }

    /// Deepest L2 bank queue observed (contention indicator; Table III
    /// provisions 32 MSHRs per bank).
    pub fn bank_peak_queue(&self) -> usize {
        self.bank_peak_queue
    }

    /// Weighted speedup of this run over `baseline`: the mean of
    /// per-core IPC ratios (the standard multi-programmed metric, which
    /// keeps one sped-up benchmark from hiding another's slowdown).
    ///
    /// # Panics
    ///
    /// Panics if the runs have different core counts.
    pub fn weighted_speedup(&self, baseline: &SystemReport) -> f64 {
        assert_eq!(
            self.per_core_ipc.len(),
            baseline.per_core_ipc.len(),
            "core counts must match"
        );
        let n = self.per_core_ipc.len() as f64;
        self.per_core_ipc
            .iter()
            .zip(&baseline.per_core_ipc)
            .map(|(a, b)| a / b)
            .sum::<f64>()
            / n
    }
}

/// A 64-tile CMP around one switch.
#[derive(Debug)]
pub struct CmpSystem<F> {
    cfg: SystemConfig,
    cores: Vec<Core>,
    banks: Vec<L2Bank>,
    mcs: Vec<MemoryController>,
    net: SwitchNet<F>,
    net_period_ps: f64,
    core_period_ps: f64,
    mc_rr: Vec<usize>,
    pending_local: VecDeque<(usize, Message)>,
    outbox: Vec<(usize, usize, Message)>,
}

impl<F: Fabric> CmpSystem<F> {
    /// Builds the system: `fabric` at `net_freq_ghz`, cores assigned
    /// from `mix` (one benchmark instance per tile, Table VI layout).
    ///
    /// # Panics
    ///
    /// Panics if the fabric radix is not 64 or the controller count
    /// does not divide the tile count.
    pub fn new(fabric: F, net_freq_ghz: f64, mix: &WorkloadMix, cfg: SystemConfig) -> Self {
        let tiles = fabric.radix();
        assert_eq!(tiles, 64, "the Table III system has 64 tiles");
        assert!(
            tiles.is_multiple_of(cfg.mem_controllers),
            "controllers must divide tiles"
        );
        assert!(net_freq_ghz > 0.0, "network frequency must be positive");
        let profiles = mix.assign_cores();
        let cores = profiles
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let seed = cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Core::new(
                    SyntheticTrace::new(p, tiles, seed),
                    cfg.core_width,
                    cfg.mlp,
                    cfg.instructions_per_core,
                )
            })
            .collect();
        Self {
            cores,
            banks: (0..tiles)
                .map(|_| L2Bank::new(cfg.l2_latency_cycles))
                .collect(),
            mcs: (0..cfg.mem_controllers)
                .map(|_| MemoryController::new(cfg.mem_latency_ns, cfg.mem_service_ns))
                .collect(),
            net: SwitchNet::new(fabric),
            net_period_ps: 1000.0 / net_freq_ghz,
            core_period_ps: 1000.0 / cfg.core_freq_ghz,
            mc_rr: vec![0; tiles],
            pending_local: VecDeque::new(),
            outbox: Vec::new(),
            cfg,
        }
    }

    /// Tile hosting memory controller `index`.
    fn mc_tile(&self, index: usize) -> usize {
        index * (self.cores.len() / self.mcs.len())
    }

    /// Memory controller index hosted at `tile`, if any.
    fn mc_at_tile(&self, tile: usize) -> Option<usize> {
        let stride = self.cores.len() / self.mcs.len();
        tile.is_multiple_of(stride).then(|| tile / stride)
    }

    /// Runs to completion (or the cycle cap) and reports.
    pub fn run(&mut self) -> SystemReport {
        let mut now_cycles: u64 = 0;
        let mut net_next_ps: f64 = 0.0;
        let mut now_ps: f64 = 0.0;

        while now_cycles < self.cfg.max_core_cycles {
            // Advance the switch domain up to the current time.
            while net_next_ps <= now_ps {
                self.net.step();
                net_next_ps += self.net_period_ps;
            }
            let now_ns = now_ps / 1000.0;

            // Deliver network arrivals.
            while let Some((tile, message)) = self.net.pop_arrival() {
                self.pending_local.push_back((tile, message));
            }
            self.drain_dispatch(now_ns);

            // L2 banks.
            for bank in 0..self.banks.len() {
                if let Some(event) = self.banks[bank].tick() {
                    self.route_bank_event(bank, event);
                }
            }
            self.flush_outbox();
            self.drain_dispatch(now_ns);

            // Memory controllers.
            for mc in 0..self.mcs.len() {
                let tile = self.mc_tile(mc);
                for (core, bank) in self.mcs[mc].drain_ready(now_ns) {
                    self.outbox
                        .push((tile, bank, Message::MemReply { core, bank }));
                }
            }
            self.flush_outbox();
            self.drain_dispatch(now_ns);

            // Cores.
            for core in 0..self.cores.len() {
                if let Some(access) = self.cores[core].tick(now_cycles) {
                    self.outbox.push((
                        core,
                        access.bank,
                        Message::L2Request {
                            core,
                            l2_miss: access.l2_miss,
                        },
                    ));
                }
            }
            self.flush_outbox();
            self.drain_dispatch(now_ns);

            now_cycles += 1;
            now_ps += self.core_period_ps;

            if self.cores.iter().all(Core::is_finished) {
                break;
            }
        }

        let finished = self.cores.iter().all(Core::is_finished);
        let per_core_ipc = self
            .cores
            .iter()
            .map(|c| {
                let cycles = c.finished_at().unwrap_or(now_cycles).max(1);
                c.retired() as f64 / cycles as f64
            })
            .collect();
        SystemReport {
            per_core_ipc,
            elapsed_cycles: now_cycles,
            net_delivered: self.net.delivered(),
            net_avg_latency_cycles: self.net.avg_latency_cycles(),
            mem_fills: self.mcs.iter().map(MemoryController::served).sum(),
            bank_peak_queue: self.banks.iter().map(L2Bank::peak_queue).max().unwrap_or(0),
            finished,
        }
    }

    /// Moves outbox messages onto the switch (or the local queue for
    /// same-tile traffic).
    fn flush_outbox(&mut self) {
        let outbox = std::mem::take(&mut self.outbox);
        for (src, dst, message) in outbox {
            if src == dst {
                self.pending_local.push_back((dst, message));
            } else {
                self.net.send(src, dst, message);
            }
        }
    }

    /// Processes queued deliveries, including cascades they trigger.
    fn drain_dispatch(&mut self, now_ns: f64) {
        while let Some((tile, message)) = self.pending_local.pop_front() {
            match message {
                Message::L2Request { core, l2_miss } => {
                    self.banks[tile].enqueue(core, l2_miss);
                }
                Message::L2Reply { core } => {
                    self.cores[core].on_reply();
                }
                Message::MemRequest { core, bank } => {
                    let mc = self
                        .mc_at_tile(tile)
                        .expect("MemRequest routed to a controller tile");
                    self.mcs[mc].request(now_ns, core, bank);
                }
                Message::MemReply { core, bank } => {
                    let event = self.banks[bank].fill(core);
                    self.route_bank_event(bank, event);
                    self.flush_outbox();
                }
            }
        }
    }

    /// Converts a bank completion into its follow-on message.
    fn route_bank_event(&mut self, bank: usize, event: BankEvent) {
        match event {
            BankEvent::Hit { core } => {
                self.outbox.push((bank, core, Message::L2Reply { core }));
            }
            BankEvent::Miss { core } => {
                let mc = self.mc_rr[bank] % self.mcs.len();
                self.mc_rr[bank] += 1;
                let mc_tile = self.mc_tile(mc);
                self.outbox
                    .push((bank, mc_tile, Message::MemRequest { core, bank }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::table_vi_mixes;
    use hirise_core::{HiRiseConfig, HiRiseSwitch, Switch2d};

    fn quick_cfg() -> SystemConfig {
        SystemConfig::new()
            .instructions_per_core(2_000)
            .max_core_cycles(5_000_000)
    }

    #[test]
    fn low_mpki_mix_finishes_fast() {
        let mix = &table_vi_mixes()[0]; // Mix1, 15 MPKI
        let report = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg()).run();
        assert!(report.finished());
        assert!(report.system_ipc() > 10.0, "ipc {}", report.system_ipc());
        assert!(report.net_delivered() > 0);
    }

    #[test]
    fn higher_mpki_means_lower_ipc() {
        let mixes = table_vi_mixes();
        let run = |i: usize| {
            CmpSystem::new(Switch2d::new(64), 1.69, &mixes[i], quick_cfg())
                .run()
                .system_ipc()
        };
        let light = run(0); // 15.0 MPKI
        let heavy = run(7); // 76.0 MPKI
        assert!(
            heavy < light,
            "heavy mix should be slower: {heavy} vs {light}"
        );
    }

    #[test]
    fn hirise_speeds_up_a_memory_bound_mix() {
        let mix = &table_vi_mixes()[7]; // Mix8, 76 MPKI
        let flat = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg())
            .run()
            .system_ipc();
        let hirise = CmpSystem::new(
            HiRiseSwitch::new(&HiRiseConfig::paper_optimal()),
            2.2,
            mix,
            quick_cfg(),
        )
        .run()
        .system_ipc();
        let speedup = hirise / flat;
        assert!(speedup > 1.0, "speedup {speedup}");
    }

    #[test]
    fn memory_stats_are_populated_for_memory_bound_mixes() {
        let mix = &table_vi_mixes()[7]; // Mix8
        let report = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg()).run();
        assert!(report.mem_fills() > 0, "Mix8 must touch memory");
        assert!(report.bank_peak_queue() >= 1);
        // Light mixes fetch far fewer lines.
        let light =
            CmpSystem::new(Switch2d::new(64), 1.69, &table_vi_mixes()[0], quick_cfg()).run();
        assert!(light.mem_fills() < report.mem_fills());
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let mix = &table_vi_mixes()[1];
        let a = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg()).run();
        let b = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg()).run();
        assert!((a.weighted_speedup(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_and_system_speedups_agree_in_direction() {
        let mix = &table_vi_mixes()[7];
        let flat = CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg()).run();
        let hirise = CmpSystem::new(
            HiRiseSwitch::new(&HiRiseConfig::paper_optimal()),
            2.2,
            mix,
            quick_cfg(),
        )
        .run();
        assert!(hirise.weighted_speedup(&flat) > 1.0);
        assert!(hirise.system_ipc() > flat.system_ipc());
    }

    #[test]
    fn deterministic_across_runs() {
        let mix = &table_vi_mixes()[2];
        let run = || {
            CmpSystem::new(Switch2d::new(64), 1.69, mix, quick_cfg())
                .run()
                .system_ipc()
        };
        assert_eq!(run(), run());
    }
}
