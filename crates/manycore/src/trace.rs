//! Synthetic trace generation.
//!
//! Stands in for the paper's Pin-collected instruction traces: a core's
//! execution is a stream of CPU bursts separated by L1 misses, with the
//! burst length geometrically distributed around `1000 / l1_mpki`
//! instructions and each miss hashed to a uniform L2 bank. Whether a
//! miss also misses in the L2 is drawn from the benchmark's L2 miss
//! fraction. Streams are deterministic per (benchmark, seed).

use crate::profiles::BenchmarkProfile;
use hirise_core::rng::StdRng;
use hirise_core::rng::{Rng, SeedableRng};

/// One memory access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Target L2 bank (tile index).
    pub bank: usize,
    /// Whether the access misses in the L2 and continues to memory.
    pub l2_miss: bool,
}

/// A deterministic synthetic trace for one core.
#[derive(Clone, Debug)]
pub struct SyntheticTrace {
    profile: BenchmarkProfile,
    banks: usize,
    rng: StdRng,
}

impl SyntheticTrace {
    /// Creates the trace for `profile` over `banks` L2 banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(profile: BenchmarkProfile, banks: usize, seed: u64) -> Self {
        assert!(banks > 0, "need at least one L2 bank");
        Self {
            profile,
            banks,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The benchmark this trace models.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Instructions until the next L1 miss (geometric, mean
    /// `1000 / l1_mpki`; effectively infinite for benchmarks that
    /// never miss).
    pub fn next_gap(&mut self) -> u64 {
        let l1 = self.profile.l1_mpki();
        if l1 <= 1e-6 {
            return u64::MAX / 2; // compute-bound: next miss beyond any run
        }
        let p = (l1 / 1000.0).min(1.0);
        // Geometric sampling via inverse transform.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// The next miss's target bank and L2 outcome.
    pub fn next_access(&mut self) -> MemAccess {
        MemAccess {
            bank: self.rng.gen_range(0..self.banks),
            l2_miss: self.rng.gen_bool(self.profile.l2_miss_fraction()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::benchmark_profile;

    #[test]
    fn gap_mean_tracks_mpki() {
        let mut trace = SyntheticTrace::new(benchmark_profile("mcf"), 64, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| trace.next_gap()).sum();
        let mean = total as f64 / n as f64;
        let expected = 1000.0 / benchmark_profile("mcf").l1_mpki();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn compute_bound_benchmark_rarely_misses() {
        let mut trace = SyntheticTrace::new(benchmark_profile("sjeng"), 64, 1);
        // sjeng at 0.03 MPKI: gaps are tens of thousands of instructions.
        assert!(trace.next_gap() > 1_000);
    }

    #[test]
    fn banks_are_covered_uniformly() {
        let mut trace = SyntheticTrace::new(benchmark_profile("tpcw"), 8, 2);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[trace.next_access().bank] += 1;
        }
        for (bank, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bank {bank}: {c}");
        }
    }

    #[test]
    fn l2_miss_rate_tracks_fraction() {
        let profile = benchmark_profile("milc");
        let mut trace = SyntheticTrace::new(profile, 64, 3);
        let misses = (0..10_000).filter(|_| trace.next_access().l2_miss).count();
        let rate = misses as f64 / 10_000.0;
        assert!(
            (rate - profile.l2_miss_fraction()).abs() < 0.02,
            "rate {rate}"
        );
    }

    #[test]
    fn same_seed_same_trace() {
        let p = benchmark_profile("sap");
        let mut a = SyntheticTrace::new(p, 64, 9);
        let mut b = SyntheticTrace::new(p, 64, 9);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
