//! Area model.
//!
//! Swizzle fabrics are wire-limited (§IV-D): the logic hides beneath the
//! bus crossings, so a stage's footprint is (input-bus span) ×
//! (output-bus span) at the effective routed pitch — two stacked metal
//! layers per direction at double pitch give 0.1 µm effective in 32 nm.
//! TSVs add `tsv_area_factor * pitch²` each for the via, keep-out and
//! the routing to and from it (§VI-C).

use crate::design::DesignPoint;
use crate::tech::Technology;

/// Total silicon area in mm² (summed over layers, TSV footprint
/// included).
///
/// # Panics
///
/// Panics if the design has a zero radix or (for 3D designs) fewer than
/// two layers.
pub fn switch_area_mm2(point: &DesignPoint, tech: &Technology) -> f64 {
    let pitch_mm = tech.wire_pitch_um * 1e-3;
    match point {
        DesignPoint::Flat2d { radix, flit_bits } => {
            assert!(*radix > 0, "radix must be at least 1");
            let side = *radix as f64 * *flit_bits as f64 * pitch_mm;
            side * side
        }
        DesignPoint::Folded {
            radix,
            layers,
            flit_bits,
        } => {
            assert!(*layers >= 2, "folded switch needs at least 2 layers");
            let rows = (*radix / *layers) as f64 * *flit_bits as f64 * pitch_mm;
            let cols = *radix as f64 * *flit_bits as f64 * pitch_mm;
            rows * cols * *layers as f64 + tsv_area_mm2(point.tsv_count(), tech)
        }
        DesignPoint::HiRise(cfg) => {
            let w = cfg.flit_bits() as f64 * pitch_mm;
            let ports = cfg.ports_per_layer() as f64;
            // Local switch: N/L input rows x (N/L + c(L-1)) output columns.
            let local = (ports * w) * (cfg.local_switch_outputs() as f64 * w);
            // Inter-layer switch: N/L sub-blocks of (c(L-1)+1) x 1.
            let subblocks = ports * (cfg.subblock_inputs() as f64 * w) * w;
            (local + subblocks) * cfg.layers() as f64 + tsv_area_mm2(cfg.tsv_count(), tech)
        }
    }
}

/// TSV footprint in mm²: `count * factor * pitch²`.
fn tsv_area_mm2(count: usize, tech: &Technology) -> f64 {
    count as f64 * tech.tsv_area_factor * tech.tsv.pitch_um * tech.tsv.pitch_um * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::HiRiseConfig;

    fn hirise(c: usize) -> DesignPoint {
        DesignPoint::HiRise(
            HiRiseConfig::builder(64, 4)
                .channel_multiplicity(c)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn areas_track_table_iv() {
        let tech = Technology::nominal_32nm();
        let flat = switch_area_mm2(
            &DesignPoint::Flat2d {
                radix: 64,
                flit_bits: 128,
            },
            &tech,
        );
        assert!((flat - 0.672).abs() < 0.01, "2D {flat}");
        let folded = switch_area_mm2(
            &DesignPoint::Folded {
                radix: 64,
                layers: 4,
                flit_bits: 128,
            },
            &tech,
        );
        // Folded = 2D wiring + 8192 TSVs of overhead.
        assert!(folded > flat, "folded {folded} vs flat {flat}");
        for (c, expected) in [(1, 0.247), (2, 0.315), (4, 0.451)] {
            let a = switch_area_mm2(&hirise(c), &tech);
            assert!((a - expected).abs() < 0.02, "c={c}: {a}");
        }
    }

    /// Fig. 12: +25% pitch increases Hi-Rise area by under 2%.
    #[test]
    fn fig12_area_sensitivity() {
        let nominal = switch_area_mm2(&hirise(4), &Technology::nominal_32nm());
        let bigger = switch_area_mm2(&hirise(4), &Technology::with_tsv_pitch(1.0));
        let growth = bigger / nominal - 1.0;
        assert!((0.005..0.025).contains(&growth), "growth {growth}");
    }

    /// Area grows monotonically with TSV pitch (Fig. 12's area curve).
    #[test]
    fn area_monotone_in_pitch() {
        let mut last = 0.0;
        for pitch in [0.4, 0.8, 1.6, 3.2, 5.0] {
            let a = switch_area_mm2(&hirise(4), &Technology::with_tsv_pitch(pitch));
            assert!(a > last);
            last = a;
        }
    }
}
