//! Unit conversions between the simulator's cycle domain and the
//! paper's reporting units (ns, packets/ns, Tbps).

/// Converts a latency in switch cycles to nanoseconds at `freq_ghz`.
///
/// # Panics
///
/// Panics if `freq_ghz` is not positive.
pub fn ns_from_cycles(cycles: f64, freq_ghz: f64) -> f64 {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    cycles / freq_ghz
}

/// Converts an accepted rate in packets/cycle to packets/ns at
/// `freq_ghz` (the y-axis of Fig. 11b).
///
/// # Panics
///
/// Panics if `freq_ghz` is not positive.
pub fn packets_per_ns(packets_per_cycle: f64, freq_ghz: f64) -> f64 {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    packets_per_cycle * freq_ghz
}

/// Converts an accepted rate in packets/cycle to Tbps for packets of
/// `packet_flits` flits of `flit_bits` bits (the throughput columns of
/// Tables I/IV/V).
///
/// # Panics
///
/// Panics if `freq_ghz` is not positive.
pub fn tbps(packets_per_cycle: f64, freq_ghz: f64, flit_bits: usize, packet_flits: usize) -> f64 {
    let bits_per_packet = (flit_bits * packet_flits) as f64;
    packets_per_ns(packets_per_cycle, freq_ghz) * bits_per_packet / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_to_ns() {
        assert!((ns_from_cycles(5.0, 2.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_check() {
        // The paper's 4-channel switch: 21.42 packets/ns ~= 10.97 Tbps
        // for 512-bit packets.
        let t = tbps(21.42 / 2.24, 2.24, 128, 4);
        assert!((t - 10.97).abs() < 0.01, "{t}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ns_from_cycles(1.0, 0.0);
    }
}
