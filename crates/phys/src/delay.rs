//! Cycle-time model.
//!
//! A swizzle stage's critical path is the precharge/evaluate of a bus
//! that crosses one cross-point per port it spans, so its delay is a
//! fixed term (sense amp, driver) plus a term linear in the spanned
//! ports. The Hi-Rise cycle stacks two phases (local switch, then
//! inter-layer switch, Fig. 8) plus a TSV hop; the inter-layer term
//! grows sub-linearly (≈√) with the channel count because added
//! channels widen the sub-block without lengthening the whole path
//! proportionally. CLRG pays a small adder for the class-counter muxes
//! (§IV-B); WLRG is modelled at the same (idealised) cycle time the
//! paper uses for its fairness comparison — Table V omits it because a
//! real implementation is infeasible.

use crate::design::DesignPoint;
use crate::tech::Technology;
use hirise_core::ArbitrationScheme;

/// Cycle time in ns of a design point in a technology.
///
/// # Panics
///
/// Panics if the design has a zero radix or (for 3D designs) fewer than
/// two layers.
pub fn switch_cycle_ns(point: &DesignPoint, tech: &Technology) -> f64 {
    match point {
        DesignPoint::Flat2d { radix, .. } => flat_2d_cycle_ns(*radix, tech),
        DesignPoint::Folded { radix, layers, .. } => {
            assert!(*layers >= 2, "folded switch needs at least 2 layers");
            flat_2d_cycle_ns(*radix, tech) + tech.fold_tsv_per_layer_ns * (*layers as f64 - 1.0)
        }
        DesignPoint::HiRise(cfg) => {
            let class_based = !matches!(cfg.scheme(), ArbitrationScheme::LayerToLayerLrg);
            hirise_cycle_ns_parametric(
                cfg.radix() as f64,
                cfg.layers() as f64,
                cfg.channel_multiplicity() as f64,
                class_based,
                tech,
            )
        }
    }
}

/// Hi-Rise cycle time as a continuous function of the architectural
/// parameters, without the divisibility constraints a buildable
/// configuration must satisfy. This is what the paper's design-space
/// sweeps (Fig. 9a/9b) plot: e.g. a 48-radix switch over 5 layers is a
/// model point even though 48/5 ports per layer is not realisable.
///
/// `class_based` selects the CLRG/WLRG delay adder over plain L-2-L
/// LRG.
///
/// # Panics
///
/// Panics if `radix` or `channels` is not positive, or `layers < 2`.
pub fn hirise_cycle_ns_parametric(
    radix: f64,
    layers: f64,
    channels: f64,
    class_based: bool,
    tech: &Technology,
) -> f64 {
    assert!(
        radix > 0.0 && channels > 0.0,
        "radix/channels must be positive"
    );
    assert!(layers >= 2.0, "a 3D switch needs at least 2 layers");
    let per_layer = radix / layers;
    let channels_per_layer = channels * (layers - 1.0);
    let scheme_adder = if class_based {
        tech.clrg_delay_adder_ns
    } else {
        0.0
    };
    tech.t_fixed_3d_ns
        + tech.tsv_delay_per_um_ns * tech.tsv.pitch_um
        + 2.0 * tech.alpha_port_ns * per_layer
        + tech.chan_delay_ns * channels_per_layer.sqrt()
        + scheme_adder
}

fn flat_2d_cycle_ns(radix: usize, tech: &Technology) -> f64 {
    assert!(radix > 0, "radix must be at least 1");
    tech.t0_2d_ns + tech.alpha_port_ns * 2.0 * radix as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::HiRiseConfig;

    fn hirise_point(radix: usize, layers: usize, c: usize) -> DesignPoint {
        DesignPoint::HiRise(
            HiRiseConfig::builder(radix, layers)
                .channel_multiplicity(c)
                .scheme(ArbitrationScheme::LayerToLayerLrg)
                .build()
                .unwrap(),
        )
    }

    /// Fig. 9a: the 2D switch is faster at low radix; 3D wins beyond
    /// roughly radix 32 and the gap widens with radix.
    #[test]
    fn fig9a_crossover() {
        let tech = Technology::nominal_32nm();
        let cycle_2d = |n| {
            switch_cycle_ns(
                &DesignPoint::Flat2d {
                    radix: n,
                    flit_bits: 128,
                },
                &tech,
            )
        };
        let cycle_3d = |n| switch_cycle_ns(&hirise_point(n, 4, 4), &tech);
        assert!(cycle_2d(16) < cycle_3d(16), "2D faster at radix 16");
        assert!(cycle_2d(128) > cycle_3d(128), "3D faster at radix 128");
        // Gap widens.
        let gap_64 = cycle_2d(64) - cycle_3d(64);
        let gap_128 = cycle_2d(128) - cycle_3d(128);
        assert!(gap_128 > gap_64);
    }

    /// Fig. 9a: channel multiplicity matters less as radix grows (the
    /// relative frequency spread between 1-ch and 4-ch shrinks).
    #[test]
    fn fig9a_channels_converge_with_radix() {
        let tech = Technology::nominal_32nm();
        let spread = |n: usize| {
            let c1 = switch_cycle_ns(&hirise_point(n, 4, 1), &tech);
            let c4 = switch_cycle_ns(&hirise_point(n, 4, 4), &tech);
            (c4 - c1) / c1
        };
        assert!(spread(128) < spread(32));
    }

    /// Fig. 9b: for a 64-radix switch the frequency peaks at 3–5 layers.
    #[test]
    fn fig9b_layer_optimum() {
        let tech = Technology::nominal_32nm();
        let cycle = |l: usize| {
            // 64 divides 2 and 4; for odd layer counts use the nearest
            // divisible radix scaled back, as the model is continuous in
            // N/L. Here stick to divisors of 64 plus 3, 5, 6 via radix 60.
            switch_cycle_ns(&hirise_point(64, l, 4), &tech)
        };
        // Layers 2, 4, 8 all divide 64.
        let l2 = cycle(2);
        let l4 = cycle(4);
        let l8 = cycle(8);
        assert!(l4 < l2, "4 layers beats 2 ({l4} vs {l2})");
        assert!(l4 < l8, "4 layers beats 8 ({l4} vs {l8})");
    }

    /// Fig. 12: +25% TSV pitch costs ≈1.8% frequency.
    #[test]
    fn fig12_pitch_sensitivity() {
        let nominal = switch_cycle_ns(&hirise_point(64, 4, 4), &Technology::nominal_32nm());
        let bigger = switch_cycle_ns(&hirise_point(64, 4, 4), &Technology::with_tsv_pitch(1.0));
        let slowdown = bigger / nominal - 1.0;
        assert!((0.01..0.03).contains(&slowdown), "slowdown {slowdown}");
    }

    /// §I: "The proposed switch extends scalability to radix 96 from
    /// that of the 64 radix supported by 2D switches at the same
    /// operating frequency" — a radix-96 Hi-Rise clocks at least as
    /// fast as the radix-64 2D switch.
    #[test]
    fn radix_96_scalability_claim() {
        let tech = Technology::nominal_32nm();
        let f_2d_64 = 1.0
            / switch_cycle_ns(
                &DesignPoint::Flat2d {
                    radix: 64,
                    flit_bits: 128,
                },
                &tech,
            );
        let f_3d_96 = 1.0 / switch_cycle_ns(&hirise_point(96, 4, 4), &tech);
        assert!(
            f_3d_96 >= f_2d_64,
            "3D@96 {f_3d_96} must reach 2D@64 {f_2d_64}"
        );
    }

    /// Table V: CLRG is slightly slower than the L-2-L LRG baseline.
    #[test]
    fn clrg_pays_a_small_delay_adder() {
        let tech = Technology::nominal_32nm();
        let base = switch_cycle_ns(&hirise_point(64, 4, 4), &tech);
        let clrg_cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(4)
            .scheme(ArbitrationScheme::class_based())
            .build()
            .unwrap();
        let clrg = switch_cycle_ns(&DesignPoint::HiRise(clrg_cfg), &tech);
        assert!(clrg > base);
        assert!(clrg - base < 0.01, "adder stays small: {}", clrg - base);
    }
}
