//! Design points: a switch architecture plus a technology, yielding
//! frequency, area, energy and TSV count — the columns of the paper's
//! Tables I, IV and V.

use crate::area::switch_area_mm2;
use crate::delay::switch_cycle_ns;
use crate::energy::transaction_energy_pj;
use crate::tech::Technology;
use hirise_core::{ArbitrationScheme, HiRiseConfig};

/// The switch architectures the paper compares.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DesignPoint {
    /// Flat 2D Swizzle-Switch (`N x N`).
    Flat2d {
        /// Switch radix.
        radix: usize,
        /// Data bus width in bits.
        flit_bits: usize,
    },
    /// The 2D switch folded over `layers` silicon layers (§II-B).
    Folded {
        /// Switch radix.
        radix: usize,
        /// Stacked layer count.
        layers: usize,
        /// Data bus width in bits.
        flit_bits: usize,
    },
    /// The hierarchical Hi-Rise switch (§III).
    HiRise(HiRiseConfig),
}

impl DesignPoint {
    /// Switch radix.
    pub fn radix(&self) -> usize {
        match self {
            DesignPoint::Flat2d { radix, .. } | DesignPoint::Folded { radix, .. } => *radix,
            DesignPoint::HiRise(cfg) => cfg.radix(),
        }
    }

    /// Data bus (flit) width in bits.
    pub fn flit_bits(&self) -> usize {
        match self {
            DesignPoint::Flat2d { flit_bits, .. } | DesignPoint::Folded { flit_bits, .. } => {
                *flit_bits
            }
            DesignPoint::HiRise(cfg) => cfg.flit_bits(),
        }
    }

    /// TSVs required, following the paper's counting (Table I/IV).
    pub fn tsv_count(&self) -> usize {
        match self {
            DesignPoint::Flat2d { .. } => 0,
            DesignPoint::Folded {
                radix, flit_bits, ..
            } => radix * flit_bits,
            DesignPoint::HiRise(cfg) => cfg.tsv_count(),
        }
    }

    /// Configuration label in the paper's table style.
    pub fn label(&self) -> String {
        match self {
            DesignPoint::Flat2d { radix, .. } => format!("{radix}x{radix}"),
            DesignPoint::Folded { radix, layers, .. } => {
                format!("[{}x{radix}]x{layers}", radix / layers)
            }
            DesignPoint::HiRise(cfg) => cfg.configuration_label(),
        }
    }
}

/// A [`DesignPoint`] evaluated in a [`Technology`].
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchDesign {
    point: DesignPoint,
    tech: Technology,
}

impl SwitchDesign {
    /// A flat 2D Swizzle-Switch with a 128-bit bus in the nominal
    /// technology.
    pub fn flat_2d(radix: usize) -> Self {
        Self {
            point: DesignPoint::Flat2d {
                radix,
                flit_bits: 128,
            },
            tech: Technology::nominal_32nm(),
        }
    }

    /// A folded 3D switch with a 128-bit bus in the nominal technology.
    pub fn folded(radix: usize, layers: usize) -> Self {
        Self {
            point: DesignPoint::Folded {
                radix,
                layers,
                flit_bits: 128,
            },
            tech: Technology::nominal_32nm(),
        }
    }

    /// A Hi-Rise switch in the nominal technology. The arbitration
    /// scheme in `cfg` matters: CLRG pays a small delay and energy adder
    /// over the L-2-L LRG baseline (Table V).
    pub fn hirise(cfg: &HiRiseConfig) -> Self {
        Self {
            point: DesignPoint::HiRise(cfg.clone()),
            tech: Technology::nominal_32nm(),
        }
    }

    /// Re-evaluates the design in a different technology (e.g. a TSV
    /// pitch sweep, Fig. 12).
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// The architectural design point.
    pub fn point(&self) -> &DesignPoint {
        &self.point
    }

    /// The technology in effect.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Switch cycle time in ns.
    pub fn cycle_time_ns(&self) -> f64 {
        switch_cycle_ns(&self.point, &self.tech)
    }

    /// Operating frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1.0 / self.cycle_time_ns()
    }

    /// Silicon area in mm² (total over all layers, plus TSV footprint).
    pub fn area_mm2(&self) -> f64 {
        switch_area_mm2(&self.point, &self.tech)
    }

    /// Energy per 128-bit transaction in pJ.
    pub fn energy_per_transaction_pj(&self) -> f64 {
        transaction_energy_pj(&self.point, &self.tech)
    }

    /// TSVs required.
    pub fn tsv_count(&self) -> usize {
        self.point.tsv_count()
    }

    /// Short description, e.g. `64x64` or `[(16x28), 16*(13x1)]x4`.
    pub fn label(&self) -> String {
        self.point.label()
    }

    /// The arbitration scheme, if this is a Hi-Rise design.
    pub fn scheme(&self) -> Option<ArbitrationScheme> {
        match &self.point {
            DesignPoint::HiRise(cfg) => Some(cfg.scheme()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::ArbitrationScheme;

    fn hirise_with(c: usize, scheme: ArbitrationScheme) -> SwitchDesign {
        let cfg = HiRiseConfig::builder(64, 4)
            .channel_multiplicity(c)
            .scheme(scheme)
            .build()
            .unwrap();
        SwitchDesign::hirise(&cfg)
    }

    /// Table I / Table IV anchor: the flat 2D 64-radix switch.
    #[test]
    fn table_iv_2d_row() {
        let d = SwitchDesign::flat_2d(64);
        assert!(
            (d.frequency_ghz() - 1.69).abs() < 0.02,
            "{}",
            d.frequency_ghz()
        );
        assert!((d.area_mm2() - 0.672).abs() < 0.01, "{}", d.area_mm2());
        assert!(
            (d.energy_per_transaction_pj() - 71.0).abs() < 1.0,
            "{}",
            d.energy_per_transaction_pj()
        );
        assert_eq!(d.tsv_count(), 0);
        assert_eq!(d.label(), "64x64");
    }

    /// Table I / Table IV anchor: the folded 3D switch.
    #[test]
    fn table_iv_folded_row() {
        let d = SwitchDesign::folded(64, 4);
        assert!(
            (d.frequency_ghz() - 1.58).abs() < 0.02,
            "{}",
            d.frequency_ghz()
        );
        assert!((d.area_mm2() - 0.705).abs() < 0.03, "{}", d.area_mm2());
        assert!(
            (d.energy_per_transaction_pj() - 73.0).abs() < 1.0,
            "{}",
            d.energy_per_transaction_pj()
        );
        assert_eq!(d.tsv_count(), 8192);
        assert_eq!(d.label(), "[16x64]x4");
    }

    /// Table IV anchors: the three Hi-Rise channel multiplicities
    /// (baseline L-2-L LRG arbitration).
    #[test]
    fn table_iv_hirise_rows() {
        let expect = [
            (1, 2.64, 0.247, 37.0, 1536),
            (2, 2.46, 0.315, 39.0, 3072),
            (4, 2.24, 0.451, 42.0, 6144),
        ];
        for (c, freq, area, energy, tsvs) in expect {
            let d = hirise_with(c, ArbitrationScheme::LayerToLayerLrg);
            assert!(
                (d.frequency_ghz() - freq).abs() < 0.03,
                "c={c}: {}",
                d.frequency_ghz()
            );
            assert!(
                (d.area_mm2() - area).abs() < 0.02,
                "c={c}: {}",
                d.area_mm2()
            );
            assert!(
                (d.energy_per_transaction_pj() - energy).abs() < 1.5,
                "c={c}: {}",
                d.energy_per_transaction_pj()
            );
            assert_eq!(d.tsv_count(), tsvs);
        }
    }

    /// Table V anchor: CLRG runs at 2.2 GHz and 44 pJ with no area cost.
    #[test]
    fn table_v_clrg_row() {
        let base = hirise_with(4, ArbitrationScheme::LayerToLayerLrg);
        let clrg = hirise_with(4, ArbitrationScheme::class_based());
        assert!(
            (clrg.frequency_ghz() - 2.2).abs() < 0.03,
            "{}",
            clrg.frequency_ghz()
        );
        assert!(
            (clrg.energy_per_transaction_pj() - 44.0).abs() < 1.5,
            "{}",
            clrg.energy_per_transaction_pj()
        );
        assert_eq!(clrg.area_mm2(), base.area_mm2(), "CLRG adds no area");
    }

    /// §I headline: 33% area reduction, 38% energy reduction vs 2D.
    #[test]
    fn headline_reductions() {
        let flat = SwitchDesign::flat_2d(64);
        let clrg = hirise_with(4, ArbitrationScheme::class_based());
        let area_reduction = 1.0 - clrg.area_mm2() / flat.area_mm2();
        let energy_reduction =
            1.0 - clrg.energy_per_transaction_pj() / flat.energy_per_transaction_pj();
        assert!((0.28..0.38).contains(&area_reduction), "{area_reduction}");
        assert!(
            (0.33..0.43).contains(&energy_reduction),
            "{energy_reduction}"
        );
    }
}
