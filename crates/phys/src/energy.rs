//! Energy model.
//!
//! A transaction charges the input bus across the stage's columns and
//! one output bus across its rows, so energy follows the same wire-span
//! structure as delay: linear in the ports spanned, with a sub-linear
//! channel term for Hi-Rise and a small adder for the CLRG counters
//! (Table V: 44 pJ vs 42 pJ).

use crate::design::DesignPoint;
use crate::tech::Technology;
use hirise_core::ArbitrationScheme;

/// Energy per transaction (one `flit_bits`-wide transfer) in pJ.
///
/// # Panics
///
/// Panics if the design has a zero radix or (for 3D designs) fewer than
/// two layers.
pub fn transaction_energy_pj(point: &DesignPoint, tech: &Technology) -> f64 {
    match point {
        DesignPoint::Flat2d { radix, .. } => flat_2d_energy_pj(*radix, tech),
        DesignPoint::Folded { radix, layers, .. } => {
            assert!(*layers >= 2, "folded switch needs at least 2 layers");
            flat_2d_energy_pj(*radix, tech) + tech.e_fold_per_layer_pj * (*layers as f64 - 1.0)
        }
        DesignPoint::HiRise(cfg) => {
            let class_based = !matches!(cfg.scheme(), ArbitrationScheme::LayerToLayerLrg);
            hirise_energy_pj_parametric(
                cfg.radix() as f64,
                cfg.layers() as f64,
                cfg.channel_multiplicity() as f64,
                class_based,
                tech,
            )
        }
    }
}

/// Hi-Rise energy per transaction as a continuous function of the
/// architectural parameters (see
/// [`hirise_cycle_ns_parametric`](crate::delay::hirise_cycle_ns_parametric)
/// for why sweeps need the unconstrained form).
///
/// # Panics
///
/// Panics if `radix` or `channels` is not positive, or `layers < 2`.
pub fn hirise_energy_pj_parametric(
    radix: f64,
    layers: f64,
    channels: f64,
    class_based: bool,
    tech: &Technology,
) -> f64 {
    assert!(
        radix > 0.0 && channels > 0.0,
        "radix/channels must be positive"
    );
    assert!(layers >= 2.0, "a 3D switch needs at least 2 layers");
    let per_layer = radix / layers;
    let channels_per_layer = channels * (layers - 1.0);
    let scheme_adder = if class_based {
        tech.clrg_energy_adder_pj
    } else {
        0.0
    };
    tech.e_fixed_3d_pj
        + tech.e_port_pj * per_layer
        + tech.e_chan_pj * channels_per_layer.sqrt()
        + scheme_adder
}

fn flat_2d_energy_pj(radix: usize, tech: &Technology) -> f64 {
    assert!(radix > 0, "radix must be at least 1");
    tech.e0_2d_pj + tech.e_port_pj * radix as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::HiRiseConfig;

    fn hirise(c: usize, scheme: ArbitrationScheme) -> DesignPoint {
        DesignPoint::HiRise(
            HiRiseConfig::builder(64, 4)
                .channel_multiplicity(c)
                .scheme(scheme)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn energies_track_tables() {
        let tech = Technology::nominal_32nm();
        let e2d = transaction_energy_pj(
            &DesignPoint::Flat2d {
                radix: 64,
                flit_bits: 128,
            },
            &tech,
        );
        assert!((e2d - 71.0).abs() < 1.0, "2D {e2d}");
        let folded = transaction_energy_pj(
            &DesignPoint::Folded {
                radix: 64,
                layers: 4,
                flit_bits: 128,
            },
            &tech,
        );
        assert!((folded - 73.0).abs() < 1.0, "folded {folded}");
        for (c, expected) in [(1, 37.0), (2, 39.0), (4, 42.0)] {
            let e = transaction_energy_pj(&hirise(c, ArbitrationScheme::LayerToLayerLrg), &tech);
            assert!((e - expected).abs() < 1.5, "c={c}: {e}");
        }
        let clrg = transaction_energy_pj(&hirise(4, ArbitrationScheme::class_based()), &tech);
        assert!((clrg - 44.0).abs() < 1.5, "CLRG {clrg}");
    }

    /// Fig. 9c: 3D energy grows more gently with radix than 2D, so the
    /// 3D switch supports a much higher radix iso-energy.
    #[test]
    fn fig9c_slopes() {
        let tech = Technology::nominal_32nm();
        let e2d = |n: usize| {
            transaction_energy_pj(
                &DesignPoint::Flat2d {
                    radix: n,
                    flit_bits: 128,
                },
                &tech,
            )
        };
        let e3d = |n: usize| {
            transaction_energy_pj(
                &DesignPoint::HiRise(
                    HiRiseConfig::builder(n, 4)
                        .channel_multiplicity(4)
                        .scheme(ArbitrationScheme::LayerToLayerLrg)
                        .build()
                        .unwrap(),
                ),
                &tech,
            )
        };
        let slope_2d = (e2d(128) - e2d(32)) / 96.0;
        let slope_3d = (e3d(128) - e3d(32)) / 96.0;
        assert!(
            slope_3d < 0.5 * slope_2d,
            "3D slope {slope_3d} vs 2D {slope_2d}"
        );
        // Iso-energy: a 128-radix 3D switch costs less than a 64-radix 2D.
        assert!(e3d(128) < e2d(64));
    }
}
