//! Analytic circuit models for swizzle-switch-style fabrics in a
//! 32 nm-class technology.
//!
//! The paper derives frequency, area and energy from SPICE netlists of
//! the cross-point circuits, validated against Swizzle-Switch silicon
//! (§V). Without the PDK or SPICE, this crate models the same physics
//! analytically:
//!
//! * **Delay** — each swizzle stage charges an output bus crossing one
//!   cross-point per input row; its delay grows with the ports it spans.
//!   The Hi-Rise cycle is the sum of the local-switch phase and the
//!   inter-layer phase (two-phase clocking, Fig. 8) plus the TSV hop.
//! * **Area** — the fabric is wire-limited: a stage's footprint is the
//!   product of its input-bus and output-bus wire spans (two stacked
//!   metal layers per direction at double pitch, §IV-D), plus TSV
//!   keep-out and routing.
//! * **Energy** — dominated by the bus wire capacitance switched per
//!   transaction, so it scales with the same wire spans.
//!
//! The handful of technology constants are calibrated against the
//! published 64-radix anchor points (Tables I/IV/V); every curve the
//! paper sweeps (radix, layer count, channel multiplicity, TSV pitch —
//! Figs. 9 and 12) then follows from the model structure. See
//! EXPERIMENTS.md for the paper-vs-model deltas.
//!
//! # Example
//!
//! ```
//! use hirise_core::HiRiseConfig;
//! use hirise_phys::SwitchDesign;
//!
//! let design = SwitchDesign::hirise(&HiRiseConfig::paper_optimal());
//! // The paper's headline: 2.2 GHz, 0.451 mm², 44 pJ per transaction.
//! assert!((design.frequency_ghz() - 2.2).abs() < 0.05);
//! assert!((design.area_mm2() - 0.451).abs() < 0.02);
//! assert!((design.energy_per_transaction_pj() - 44.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod convert;
mod delay;
mod design;
mod energy;
mod tech;

pub use area::switch_area_mm2;
pub use convert::{ns_from_cycles, packets_per_ns, tbps};
pub use delay::{hirise_cycle_ns_parametric, switch_cycle_ns};
pub use design::{DesignPoint, SwitchDesign};
pub use energy::{hirise_energy_pj_parametric, transaction_energy_pj};
pub use tech::{Technology, TsvParams};
