//! Technology parameters: the 32 nm-class constants behind the delay,
//! area and energy models, and the TSV process corner (Table II).
//!
//! The constants were calibrated once against the paper's published
//! 64-radix anchors and are *not* per-experiment knobs; every table and
//! figure is produced from this single parameter set.

/// Through-silicon-via process parameters (Table II of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TsvParams {
    /// Minimum TSV pitch in µm (0.8 µm for the paper's high-end
    /// Tezzaron-class process).
    pub pitch_um: f64,
    /// Feed-through capacitance in fF.
    pub feedthrough_cap_ff: f64,
    /// Series resistance in ohms.
    pub resistance_ohm: f64,
}

impl TsvParams {
    /// The paper's high-end TSV: 0.8 µm pitch, 0.2 fF, 1.5 Ω.
    pub const fn paper() -> Self {
        Self {
            pitch_um: 0.8,
            feedthrough_cap_ff: 0.2,
            resistance_ohm: 1.5,
        }
    }

    /// The same process with a different pitch (Fig. 12's sweep).
    pub fn with_pitch(pitch_um: f64) -> Self {
        Self {
            pitch_um,
            ..Self::paper()
        }
    }
}

impl Default for TsvParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Calibrated 32 nm SOI technology constants.
///
/// Delay model (ns):
/// * 2D flat:    `t = t0_2d + alpha_port * 2N`
/// * 3D folded:  `t = t_2d(N) + fold_tsv_per_layer * (L - 1)`
/// * Hi-Rise:    `t = t_fixed_3d + tsv_delay_per_um * pitch
///                + 2 * alpha_port * (N/L) + chan_delay * sqrt(c(L-1))
///                [+ clrg_delay_adder for CLRG/WLRG]`
///
/// Area model (mm²): wire-limited stage footprints at
/// `wire_pitch_um` effective pitch (two stacked metal layers per
/// direction at double pitch ⇒ 0.1 µm effective for 32 nm intermediate
/// metal), plus `tsv_area_factor * pitch²` per TSV.
///
/// Energy model (pJ/transaction): linear in the wire spans with a
/// square-root term over the channel count, matching the delay shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Technology {
    /// Effective routed wire pitch, µm.
    pub wire_pitch_um: f64,
    /// 2D fixed delay (sense amps, drivers), ns.
    pub t0_2d_ns: f64,
    /// Delay per port spanned by a stage's buses, ns.
    pub alpha_port_ns: f64,
    /// Extra folded-switch delay per punched layer, ns.
    pub fold_tsv_per_layer_ns: f64,
    /// Hi-Rise fixed delay (two stages of sense amps + clock phases), ns.
    pub t_fixed_3d_ns: f64,
    /// TSV traversal delay per µm of pitch (RC + keep-out routing), ns.
    pub tsv_delay_per_um_ns: f64,
    /// Inter-layer channel delay coefficient (per sqrt(channel)), ns.
    pub chan_delay_ns: f64,
    /// Extra cycle time for the CLRG class logic, ns.
    pub clrg_delay_adder_ns: f64,
    /// TSV footprint factor: area per TSV = factor * pitch² (µm²).
    pub tsv_area_factor: f64,
    /// 2D energy: fixed, pJ.
    pub e0_2d_pj: f64,
    /// Energy per port spanned, pJ.
    pub e_port_pj: f64,
    /// Extra folded energy per punched layer, pJ.
    pub e_fold_per_layer_pj: f64,
    /// Hi-Rise fixed energy, pJ.
    pub e_fixed_3d_pj: f64,
    /// Hi-Rise channel energy coefficient (per sqrt(channel)), pJ.
    pub e_chan_pj: f64,
    /// Extra CLRG counter energy per transaction, pJ.
    pub clrg_energy_adder_pj: f64,
    /// TSV process corner.
    pub tsv: TsvParams,
}

impl Technology {
    /// The calibrated 32 nm SOI parameter set used throughout the
    /// reproduction.
    pub const fn nominal_32nm() -> Self {
        Self {
            wire_pitch_um: 0.1,
            t0_2d_ns: 0.19,
            alpha_port_ns: 0.00314,
            fold_tsv_per_layer_ns: 0.0137,
            t_fixed_3d_ns: 0.1776,
            tsv_delay_per_um_ns: 0.041,
            chan_delay_ns: 0.0392,
            clrg_delay_adder_ns: 0.0081,
            tsv_area_factor: 3.0,
            e0_2d_pj: 1.24,
            e_port_pj: 1.09,
            e_fold_per_layer_pj: 0.667,
            e_fixed_3d_pj: 14.54,
            e_chan_pj: 2.9,
            clrg_energy_adder_pj: 2.0,
            tsv: TsvParams::paper(),
        }
    }

    /// The nominal technology with a different TSV pitch (Fig. 12).
    pub fn with_tsv_pitch(pitch_um: f64) -> Self {
        Self {
            tsv: TsvParams::with_pitch(pitch_um),
            ..Self::nominal_32nm()
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::nominal_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tsv_matches_table_ii() {
        let tsv = TsvParams::paper();
        assert_eq!(tsv.pitch_um, 0.8);
        assert_eq!(tsv.feedthrough_cap_ff, 0.2);
        assert_eq!(tsv.resistance_ohm, 1.5);
    }

    #[test]
    fn pitch_override_keeps_other_params() {
        let tsv = TsvParams::with_pitch(2.0);
        assert_eq!(tsv.pitch_um, 2.0);
        assert_eq!(tsv.resistance_ohm, 1.5);
        let tech = Technology::with_tsv_pitch(2.0);
        assert_eq!(tech.tsv.pitch_um, 2.0);
        assert_eq!(tech.wire_pitch_um, 0.1);
    }
}
