//! The `hirise-serve` daemon CLI.
//!
//! Binds, recovers any journaled work, prints one `listening on ADDR`
//! line to stdout (so wrappers can discover the bound port, including
//! port 0), and serves until a client sends `shutdown`.

use hirise_lab::args::{arg_error, flag_value, parse_flag_value};
use hirise_serve::ServeConfig;

const USAGE: &str = "hirise_serve [--addr HOST:PORT] [--data DIR] [--workers N] \
                     [--queue-cap N] [--max-inflight N] [--max-per-client N] \
                     [--cache-max-entries N]";

fn parse_args() -> ServeConfig {
    let mut cfg = ServeConfig::new("hirise-serve-data");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = flag_value("--addr", &mut args, USAGE),
            "--data" => {
                let dir = std::path::PathBuf::from(flag_value("--data", &mut args, USAGE));
                cfg.cache_dir = dir.join("cache");
                cfg.journal_path = dir.join("journal.jsonl");
            }
            "--workers" => {
                let v = flag_value("--workers", &mut args, USAGE);
                cfg.workers = parse_flag_value("--workers", &v, USAGE);
                if cfg.workers == 0 {
                    arg_error("--workers must be at least 1", USAGE);
                }
            }
            "--queue-cap" => {
                let v = flag_value("--queue-cap", &mut args, USAGE);
                cfg.queue_cap = parse_flag_value("--queue-cap", &v, USAGE);
            }
            "--max-inflight" => {
                let v = flag_value("--max-inflight", &mut args, USAGE);
                cfg.max_inflight = parse_flag_value("--max-inflight", &v, USAGE);
            }
            "--max-per-client" => {
                let v = flag_value("--max-per-client", &mut args, USAGE);
                cfg.max_per_client = parse_flag_value("--max-per-client", &v, USAGE);
            }
            "--cache-max-entries" => {
                let v = flag_value("--cache-max-entries", &mut args, USAGE);
                let n: usize = parse_flag_value("--cache-max-entries", &v, USAGE);
                if n == 0 {
                    arg_error("--cache-max-entries must be at least 1", USAGE);
                }
                cfg.cache_max_entries = Some(n);
            }
            other => arg_error(format!("unknown argument {other:?}"), USAGE),
        }
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    let result = hirise_serve::run(cfg, |addr| {
        // Wrappers (serve_smoke, CI) parse this exact line.
        println!("hirise-serve listening on {addr}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
    });
    if let Err(e) = result {
        eprintln!("hirise-serve: {e}");
        std::process::exit(1);
    }
}
