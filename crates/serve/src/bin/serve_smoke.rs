//! End-to-end smoke test for the campaign daemon, run as real
//! processes (this is what CI's `serve_smoke` step executes):
//!
//! 1. start the daemon, submit a small campaign, and check every
//!    streamed record is byte-identical to an in-process fresh run;
//! 2. submit the identical campaign again and check the daemon reports
//!    all cache hits with byte-identical records;
//! 3. submit a larger campaign, `kill -9` the daemon right after
//!    admission, restart it on the same data directory, and check the
//!    journal recovery completes the campaign in the background — a
//!    re-submit is served entirely from cache, byte-identical to
//!    fresh simulation;
//! 4. drain-shutdown the daemon through the protocol and check it
//!    exits cleanly.
//!
//! Exits 0 and prints `serve_smoke: OK` on success; prints the failing
//! check and exits 1 otherwise.

use hirise_lab::json::{self, Json};
use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(120);

fn main() {
    let data_dir = std::env::temp_dir().join(format!("hirise-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let outcome = run_smoke(&data_dir);
    let _ = std::fs::remove_dir_all(&data_dir);
    match outcome {
        Ok(()) => println!("serve_smoke: OK"),
        Err(e) => {
            eprintln!("serve_smoke: FAIL: {e}");
            std::process::exit(1);
        }
    }
}

/// The small campaign for the cache-identity check (2 jobs).
fn small_campaign() -> CampaignSpec {
    CampaignSpec::new("smoke-small")
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Uniform)
        .loads([0.15, 0.3])
        .master_seed(11)
        .sim(SimParams::new().cycles(100, 400, 400))
}

/// The larger campaign for the kill/recovery check (8 jobs).
fn recovery_campaign() -> CampaignSpec {
    CampaignSpec::new("smoke-recover")
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Uniform)
        .loads([0.1, 0.2, 0.3, 0.4])
        .replicates(2)
        .master_seed(12)
        .sim(SimParams::new().cycles(200, 1500, 1500))
}

fn fresh_lines(spec: &CampaignSpec) -> Vec<String> {
    spec.jobs()
        .iter()
        .map(|job| spec.run_job(job).to_jsonl_line())
        .collect()
}

fn run_smoke(data_dir: &PathBuf) -> Result<(), String> {
    // --- 1: fresh submit, records byte-identical to in-process run.
    let mut daemon = Daemon::start(data_dir)?;
    let small = small_campaign();
    let expected_small = fresh_lines(&small);

    let first = submit(daemon.port, &small)?;
    check_eq(
        &first.records,
        &expected_small,
        "fresh records vs in-process run",
    )?;
    if first.cache_hits != 0 || first.cache_misses != expected_small.len() {
        return Err(format!(
            "fresh submit expected 0 hits / {} misses, got {} / {}",
            expected_small.len(),
            first.cache_hits,
            first.cache_misses
        ));
    }

    // --- 2: identical submit is all cache hits, byte-identical.
    let second = submit(daemon.port, &small)?;
    check_eq(
        &second.records,
        &expected_small,
        "cached records vs fresh records",
    )?;
    if second.cache_hits != expected_small.len() || second.cache_misses != 0 {
        return Err(format!(
            "resubmit expected {} hits / 0 misses, got {} / {}",
            expected_small.len(),
            second.cache_hits,
            second.cache_misses
        ));
    }

    // --- 3: kill right after admission; restart must recover.
    let recover = recovery_campaign();
    {
        let mut stream = connect(daemon.port)?;
        let line = submit_line(&recover);
        writeln!(stream, "{line}").map_err(|e| format!("submit write: {e}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        let accepted = read_response_line(&mut reader)?;
        expect_member(&accepted, "op", "accepted")?;
        // Admission journaled the campaign; kill before it finishes.
        daemon.kill()?;
    }

    let daemon = Daemon::start(data_dir)?;
    wait_for_recovery(daemon.port)?;

    let expected_recover = fresh_lines(&recover);
    let after = submit(daemon.port, &recover)?;
    check_eq(
        &after.records,
        &expected_recover,
        "recovered records vs fresh run",
    )?;
    if after.cache_misses != 0 {
        return Err(format!(
            "journal recovery incomplete: resubmit recomputed {} jobs",
            after.cache_misses
        ));
    }

    // --- 4: protocol-driven drain shutdown.
    let mut stream = connect(daemon.port)?;
    writeln!(stream, "{{\"op\":\"shutdown\"}}").map_err(|e| format!("shutdown write: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let ack = read_response_line(&mut reader)?;
    expect_member(&ack, "op", "shutdown")?;
    daemon.wait_exit()
}

struct Daemon {
    child: Child,
    port: u16,
}

impl Daemon {
    fn start(data_dir: &PathBuf) -> Result<Self, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("current_exe: {e}"))?
            .with_file_name(format!("hirise_serve{}", std::env::consts::EXE_SUFFIX));
        if !exe.exists() {
            return Err(format!(
                "daemon binary not found at {} (build it with `cargo build -p hirise-serve --bins`)",
                exe.display()
            ));
        }
        let mut child = Command::new(&exe)
            .args(["--addr", "127.0.0.1:0", "--data"])
            .arg(data_dir)
            .args(["--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn daemon: {e}"))?;
        let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read listening line: {e}"))?;
        let port = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("unparseable listening line {line:?}"))?;
        Ok(Self { child, port })
    }

    fn kill(&mut self) -> Result<(), String> {
        self.child.kill().map_err(|e| format!("kill daemon: {e}"))?;
        self.child
            .wait()
            .map_err(|e| format!("reap daemon: {e}"))
            .map(|_| ())
    }

    fn wait_exit(mut self) -> Result<(), String> {
        let start = Instant::now();
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    return if status.success() {
                        Ok(())
                    } else {
                        Err(format!("daemon exited with {status}"))
                    };
                }
                Ok(None) if start.elapsed() > DEADLINE => {
                    let _ = self.child.kill();
                    return Err("daemon did not exit after drain shutdown".into());
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => return Err(format!("try_wait: {e}")),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect(port: u16) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(DEADLINE))
        .map_err(|e| format!("set timeout: {e}"))?;
    Ok(stream)
}

fn submit_line(spec: &CampaignSpec) -> String {
    let mut line = String::from("{\"op\":\"submit\",\"client\":\"smoke\",\"spec\":");
    line.push_str(&spec.canonical_json());
    line.push('}');
    line
}

struct SubmitOutcome {
    records: Vec<String>,
    cache_hits: usize,
    cache_misses: usize,
}

/// Submits a campaign and reads the full response stream.
fn submit(port: u16, spec: &CampaignSpec) -> Result<SubmitOutcome, String> {
    let mut stream = connect(port)?;
    writeln!(stream, "{}", submit_line(spec)).map_err(|e| format!("submit write: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );

    let accepted = read_response_line(&mut reader)?;
    expect_member(&accepted, "op", "accepted")?;

    let mut records = Vec::new();
    loop {
        let mut line = String::new();
        if reader
            .read_line(&mut line)
            .map_err(|e| format!("read response: {e}"))?
            == 0
        {
            return Err("connection closed before done line".into());
        }
        let line = line.trim_end_matches('\n');
        let value = json::parse(line).map_err(|e| format!("bad response line {line:?}: {e}"))?;
        match value.get("op").and_then(Json::as_str) {
            Some("done") => {
                let count = |k: &str| {
                    value
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("done line missing {k}: {line}"))
                };
                return Ok(SubmitOutcome {
                    records,
                    cache_hits: count("cache_hits")? as usize,
                    cache_misses: count("cache_misses")? as usize,
                });
            }
            Some("error") => return Err(format!("daemon rejected submit: {line}")),
            Some(_) => return Err(format!("unexpected control line: {line}")),
            None => records.push(line.to_string()),
        }
    }
}

fn read_response_line(reader: &mut BufReader<impl Read>) -> Result<Json, String> {
    let mut line = String::new();
    if reader
        .read_line(&mut line)
        .map_err(|e| format!("read response: {e}"))?
        == 0
    {
        return Err("connection closed mid-response".into());
    }
    json::parse(line.trim_end()).map_err(|e| format!("bad response line {line:?}: {e}"))
}

fn expect_member(value: &Json, key: &str, want: &str) -> Result<(), String> {
    match value.get(key).and_then(Json::as_str) {
        Some(got) if got == want => Ok(()),
        other => Err(format!("expected {key}={want:?}, got {other:?}")),
    }
}

fn check_eq(got: &[String], want: &[String], what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{what}: {} records, expected {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!(
                "{what}: record {i} differs\n  served: {g}\n  fresh:  {w}"
            ));
        }
    }
    Ok(())
}

/// Polls `stats` until journal recovery finishes (or the deadline
/// passes), proving the restarted daemon resumed the killed campaign.
fn wait_for_recovery(port: u16) -> Result<(), String> {
    let start = Instant::now();
    loop {
        let mut stream = connect(port)?;
        writeln!(stream, "{{\"op\":\"stats\"}}").map_err(|e| format!("stats write: {e}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        let stats = read_response_line(&mut reader)?;
        let recovering = stats
            .get("recovering")
            .and_then(Json::as_u64)
            .ok_or("stats line missing recovering")?;
        let queued = stats.get("queued").and_then(Json::as_u64).unwrap_or(0);
        if recovering == 0 && queued == 0 {
            return Ok(());
        }
        if start.elapsed() > DEADLINE {
            return Err(format!(
                "journal recovery did not finish: {recovering} campaigns still recovering"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
