//! The content-addressed on-disk result store.
//!
//! A cache entry is one job's finished telemetry record — the exact
//! bytes `JobResult::to_jsonl_line` produced — filed under a 128-bit
//! FNV-1a hash of the job's canonical key JSON
//! ([`CampaignSpec::job_key_json`]): topology, sim methodology, fabric,
//! pattern, load, fault scenario, job index, replicate and seed. The
//! determinism guarantees of the lab runner (results are a pure
//! function of exactly those inputs) are what make this sound: a
//! cached record is provably byte-identical to what a fresh simulation
//! would produce, so serving it is indistinguishable from re-running.
//!
//! Entries are written atomically (temp file + rename into place), so
//! a crash mid-write never leaves a torn entry; a concurrent duplicate
//! computation of the same job simply renames the same bytes over
//! themselves. Corrupt entries (anything that no longer parses as a
//! record line) read as misses and are recomputed.

use hirise_lab::result::job_index_of_line;
use hirise_lab::{CampaignSpec, Job};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A 128-bit content address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// The key as 32 lowercase hex digits (the entry's file name).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// FNV-1a 128-bit hash (the 64-bit campaign digest is fine for naming
/// checkpoints, but a shared store accumulating millions of entries
/// wants collision odds negligible at that scale).
fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d_u128;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    hash
}

/// The on-disk result store plus its hit/miss counters.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    tmp_counter: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The content address of one campaign job.
    pub fn key(spec: &CampaignSpec, job: &Job) -> CacheKey {
        CacheKey(fnv1a128(spec.job_key_json(job).as_bytes()))
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.hex())
    }

    /// Looks a record up, counting a hit or a miss. Returns the stored
    /// line without its trailing newline. An unreadable or corrupt
    /// entry counts as a miss (it will be recomputed and rewritten).
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let line = fs::read_to_string(self.entry_path(key))
            .ok()
            .map(|s| s.trim_end_matches('\n').to_string())
            .filter(|line| job_index_of_line(line).is_some());
        match &line {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        line
    }

    /// Stores a record atomically: written to a temp file in the same
    /// directory, then renamed over the entry, so readers only ever see
    /// complete entries and concurrent writers of the same key are
    /// idempotent.
    pub fn put(&self, key: &CacheKey, line: &str) -> io::Result<()> {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{n}-{}", std::process::id(), key.hex()));
        fs::write(&tmp, format!("{line}\n"))?;
        fs::rename(&tmp, self.entry_path(key))
    }

    /// Cache lookups that found a stored record.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};

    fn spec(name: &str) -> CampaignSpec {
        CampaignSpec::new(name)
            .fabric(FabricSpec::Flat2d { radix: 8 })
            .pattern(PatternSpec::Uniform)
            .loads([0.1, 0.2])
            .sim(SimParams::new().cycles(50, 200, 200))
    }

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hirise-serve-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn keys_ignore_campaign_name_but_not_grid_position() {
        let a = spec("alpha");
        let b = spec("beta");
        let (ja, jb) = (a.jobs(), b.jobs());
        // Same grid, different names: identical keys.
        assert_eq!(ResultCache::key(&a, &ja[0]), ResultCache::key(&b, &jb[0]));
        // Different jobs of one campaign: distinct keys.
        assert_ne!(ResultCache::key(&a, &ja[0]), ResultCache::key(&a, &ja[1]));
        // A different methodology changes every key.
        let c = spec("alpha").sim(SimParams::new().cycles(50, 201, 200));
        assert_ne!(
            ResultCache::key(&a, &ja[0]),
            ResultCache::key(&c, &c.jobs()[0])
        );
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let dir = temp_store("roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec("rt");
        let job = &s.jobs()[0];
        let key = ResultCache::key(&s, job);

        assert_eq!(cache.get(&key), None);
        let line = s.run_job(job).to_jsonl_line();
        cache.put(&key, &line).unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some(line.as_str()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_store("corrupt");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec("corrupt");
        let key = ResultCache::key(&s, &s.jobs()[0]);
        fs::write(dir.join(key.hex()), "{\"job\":0,\"trunc").unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.misses(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
