//! The content-addressed on-disk result store.
//!
//! A cache entry is one job's finished telemetry record — the exact
//! bytes `JobResult::to_jsonl_line` produced — filed under a 128-bit
//! FNV-1a hash of the job's canonical key JSON
//! ([`CampaignSpec::job_key_json`]): topology, sim methodology, fabric,
//! pattern, load, fault scenario, job index, replicate and seed. The
//! determinism guarantees of the lab runner (results are a pure
//! function of exactly those inputs) are what make this sound: a
//! cached record is provably byte-identical to what a fresh simulation
//! would produce, so serving it is indistinguishable from re-running.
//!
//! Entries are written atomically (temp file + rename into place), so
//! a crash mid-write never leaves a torn entry; a concurrent duplicate
//! computation of the same job simply renames the same bytes over
//! themselves. Corrupt entries (anything that no longer parses as a
//! record line) read as misses and are recomputed.
//!
//! The store can be opened with an entry budget
//! ([`ResultCache::open_bounded`]): once it holds `max_entries`
//! records, storing a new one evicts the least-recently-used entry
//! (both hits and stores count as uses). Because every entry is
//! recomputable from its job spec, eviction only ever costs a future
//! re-simulation, never correctness. Opening an over-budget store trims
//! it immediately, oldest entries (by file modification time) first.

use hirise_lab::result::job_index_of_line;
use hirise_lab::{CampaignSpec, Job};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A 128-bit content address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// The key as 32 lowercase hex digits (the entry's file name).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// FNV-1a 128-bit hash (the 64-bit campaign digest is fine for naming
/// checkpoints, but a shared store accumulating millions of entries
/// wants collision odds negligible at that scale).
fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d_u128;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    hash
}

/// Recency bookkeeping for a bounded store: a monotonic use counter
/// stamps every entry, `by_stamp` orders them oldest-first for
/// eviction. Unbounded stores skip all of this.
#[derive(Debug, Default)]
struct LruIndex {
    stamp_of: HashMap<u128, u64>,
    by_stamp: BTreeMap<u64, u128>,
    next_stamp: u64,
}

impl LruIndex {
    /// Marks `key` as just used (inserting it if new).
    fn touch(&mut self, key: u128) {
        if let Some(old) = self.stamp_of.remove(&key) {
            self.by_stamp.remove(&old);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.stamp_of.insert(key, stamp);
        self.by_stamp.insert(stamp, key);
    }

    /// Removes and returns the least-recently-used key, if any.
    fn pop_oldest(&mut self) -> Option<u128> {
        let (&stamp, &key) = self.by_stamp.iter().next()?;
        self.by_stamp.remove(&stamp);
        self.stamp_of.remove(&key);
        Some(key)
    }

    fn remove(&mut self, key: u128) {
        if let Some(stamp) = self.stamp_of.remove(&key) {
            self.by_stamp.remove(&stamp);
        }
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }
}

/// The on-disk result store plus its hit/miss counters.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tmp_counter: AtomicU64,
    /// `Some` when the store is bounded: the budget and the recency
    /// index of what is on disk.
    lru: Option<(usize, Mutex<LruIndex>)>,
}

impl ResultCache {
    /// Opens (creating if needed) the unbounded store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_bounded(dir, None)
    }

    /// Opens the store rooted at `dir` with an optional entry budget.
    /// With `Some(n)`, at most `n` entries are kept and storing beyond
    /// the budget evicts the least-recently-used entry; a pre-existing
    /// over-budget store is trimmed right away, oldest files first.
    /// `None` is the unbounded [`open`](Self::open).
    pub fn open_bounded(dir: &Path, max_entries: Option<usize>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let cache = Self {
            dir: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
            lru: max_entries.map(|n| (n.max(1), Mutex::new(LruIndex::default()))),
        };
        if let Some((budget, index)) = &cache.lru {
            // Seed the recency index from what is already on disk,
            // oldest modification time first, so a restarted daemon
            // evicts sensibly rather than arbitrarily.
            let mut existing: Vec<(std::time::SystemTime, u128)> = Vec::new();
            for entry in fs::read_dir(&cache.dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(key) = name
                    .to_str()
                    .filter(|s| s.len() == 32)
                    .and_then(|s| u128::from_str_radix(s, 16).ok())
                else {
                    continue;
                };
                let modified = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::UNIX_EPOCH);
                existing.push((modified, key));
            }
            existing.sort();
            let mut index = index.lock().expect("lru poisoned");
            for (_, key) in existing {
                index.touch(key);
            }
            while index.len() > *budget {
                if let Some(key) = index.pop_oldest() {
                    let _ = fs::remove_file(cache.dir.join(format!("{key:032x}")));
                    cache.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(cache)
    }

    /// The content address of one campaign job.
    pub fn key(spec: &CampaignSpec, job: &Job) -> CacheKey {
        CacheKey(fnv1a128(spec.job_key_json(job).as_bytes()))
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.hex())
    }

    /// Looks a record up, counting a hit or a miss. Returns the stored
    /// line without its trailing newline. An unreadable or corrupt
    /// entry counts as a miss (it will be recomputed and rewritten).
    /// On a bounded store, a hit refreshes the entry's recency.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let line = fs::read_to_string(self.entry_path(key))
            .ok()
            .map(|s| s.trim_end_matches('\n').to_string())
            .filter(|line| job_index_of_line(line).is_some());
        match &line {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some((_, index)) = &self.lru {
                    index.lock().expect("lru poisoned").touch(key.0);
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // Missing or corrupt: drop any stale index entry so
                // bookkeeping matches the rewrite to come.
                if let Some((_, index)) = &self.lru {
                    index.lock().expect("lru poisoned").remove(key.0);
                }
            }
        };
        line
    }

    /// Stores a record atomically: written to a temp file in the same
    /// directory, then renamed over the entry, so readers only ever see
    /// complete entries and concurrent writers of the same key are
    /// idempotent. On a bounded store, exceeding the budget evicts the
    /// least-recently-used entries from disk.
    pub fn put(&self, key: &CacheKey, line: &str) -> io::Result<()> {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{n}-{}", std::process::id(), key.hex()));
        fs::write(&tmp, format!("{line}\n"))?;
        fs::rename(&tmp, self.entry_path(key))?;
        if let Some((budget, index)) = &self.lru {
            let mut index = index.lock().expect("lru poisoned");
            index.touch(key.0);
            while index.len() > *budget {
                let Some(old) = index.pop_oldest() else { break };
                let _ = fs::remove_file(self.dir.join(format!("{old:032x}")));
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Cache lookups that found a stored record.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within the budget (0 on an unbounded
    /// store).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};

    fn spec(name: &str) -> CampaignSpec {
        CampaignSpec::new(name)
            .fabric(FabricSpec::Flat2d { radix: 8 })
            .pattern(PatternSpec::Uniform)
            .loads([0.1, 0.2])
            .sim(SimParams::new().cycles(50, 200, 200))
    }

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hirise-serve-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn keys_ignore_campaign_name_but_not_grid_position() {
        let a = spec("alpha");
        let b = spec("beta");
        let (ja, jb) = (a.jobs(), b.jobs());
        // Same grid, different names: identical keys.
        assert_eq!(ResultCache::key(&a, &ja[0]), ResultCache::key(&b, &jb[0]));
        // Different jobs of one campaign: distinct keys.
        assert_ne!(ResultCache::key(&a, &ja[0]), ResultCache::key(&a, &ja[1]));
        // A different methodology changes every key.
        let c = spec("alpha").sim(SimParams::new().cycles(50, 201, 200));
        assert_ne!(
            ResultCache::key(&a, &ja[0]),
            ResultCache::key(&c, &c.jobs()[0])
        );
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let dir = temp_store("roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec("rt");
        let job = &s.jobs()[0];
        let key = ResultCache::key(&s, job);

        assert_eq!(cache.get(&key), None);
        let line = s.run_job(job).to_jsonl_line();
        cache.put(&key, &line).unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some(line.as_str()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Distinct keys without running simulations: hand-built addresses
    /// plus a minimal valid record line (anything `job_index_of_line`
    /// accepts).
    fn synthetic_key(n: u128) -> CacheKey {
        CacheKey(n)
    }

    fn record_line(index: u64) -> String {
        format!("{{\"job\":{index}}}")
    }

    #[test]
    fn lru_eviction_drops_least_recently_used_first() {
        let dir = temp_store("lru-order");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open_bounded(&dir, Some(2)).unwrap();
        let (a, b, c) = (synthetic_key(1), synthetic_key(2), synthetic_key(3));

        cache.put(&a, &record_line(0)).unwrap();
        cache.put(&b, &record_line(1)).unwrap();
        // Touch A so B becomes the least recently used...
        assert!(cache.get(&a).is_some());
        // ...then go over budget: B must be the one evicted.
        cache.put(&c, &record_line(2)).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&b).is_none(), "B was least recently used");
        assert!(cache.get(&a).is_some(), "A was touched, must survive");
        assert!(cache.get(&c).is_some(), "C is newest, must survive");

        // Re-storing an evicted entry works and evictions keep LRU
        // order under the new recency (A < C < B now).
        cache.put(&b, &record_line(1)).unwrap();
        assert_eq!(cache.evictions(), 2);
        assert!(cache.get(&a).is_none(), "A aged out after B returned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restoring_the_same_key_never_evicts() {
        let dir = temp_store("lru-idempotent");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open_bounded(&dir, Some(2)).unwrap();
        let (a, b) = (synthetic_key(10), synthetic_key(11));
        cache.put(&a, &record_line(0)).unwrap();
        for _ in 0..5 {
            cache.put(&b, &record_line(1)).unwrap();
        }
        assert_eq!(cache.evictions(), 0, "rewrites of one key are free");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_over_budget_trims_oldest_files_first() {
        let dir = temp_store("lru-reopen");
        let _ = fs::remove_dir_all(&dir);
        {
            let unbounded = ResultCache::open(&dir).unwrap();
            for n in 0..4u128 {
                unbounded
                    .put(&synthetic_key(n), &record_line(n as u64))
                    .unwrap();
                // Distinct mtimes so the reopen scan sees a total order
                // even on filesystems with coarse timestamps.
                let path = dir.join(synthetic_key(n).hex());
                let old =
                    std::time::SystemTime::now() - std::time::Duration::from_secs(100 - n as u64);
                let _ = fs::File::open(&path).and_then(|f| f.set_modified(old).map(|_| f));
            }
            assert_eq!(unbounded.evictions(), 0);
        }
        let bounded = ResultCache::open_bounded(&dir, Some(2)).unwrap();
        assert_eq!(bounded.evictions(), 2, "trimmed down to budget on open");
        assert!(
            bounded.get(&synthetic_key(0)).is_none(),
            "oldest went first"
        );
        assert!(bounded.get(&synthetic_key(1)).is_none());
        assert!(bounded.get(&synthetic_key(2)).is_some());
        assert!(bounded.get(&synthetic_key(3)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_store("corrupt");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec("corrupt");
        let key = ResultCache::key(&s, &s.jobs()[0]);
        fs::write(dir.join(key.hex()), "{\"job\":0,\"trunc").unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.misses(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
