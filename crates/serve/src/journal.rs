//! The crash-safe request journal.
//!
//! The daemon's durability story has two layers: finished jobs live in
//! the content-addressed result cache (each entry written atomically),
//! and *intent* lives here — an append-only JSONL journal recording
//! which campaigns were admitted (`begin`) and which were fully served
//! (`done`). Both records are flushed before the daemon proceeds, so
//! after a crash the invariant holds: every admitted campaign is
//! either marked done (all its records are in the cache) or listed as
//! incomplete. Recovery simply re-runs the incomplete campaigns —
//! jobs that finished before the crash are cache hits, so no finished
//! work is ever recomputed.
//!
//! The file tolerates a torn trailing line (a crash mid-append): lines
//! that do not parse are skipped. Opening the journal compacts it,
//! rewriting only the still-incomplete entries via temp file + rename.
//!
//! Error contract: `open`, `begin` and `done` return `io::Result`; the
//! daemon reports failed journal writes on stderr and keeps serving —
//! an I/O error here never panics or aborts the process.

use hirise_lab::json::{self, Json};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// An admitted-but-not-completed campaign found in the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// The request id (hex campaign digest).
    pub id: String,
    /// The campaign's canonical JSON, ready for re-parsing.
    pub spec_json: String,
}

/// The append-only intent journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens the journal at `path`, returning it plus the entries that
    /// were begun but never marked done (in original admission order).
    /// The file is compacted down to exactly those entries.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<JournalEntry>)> {
        let mut incomplete: Vec<JournalEntry> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            for line in existing.lines() {
                let Ok(value) = json::parse(line) else {
                    continue; // torn or corrupt line
                };
                let id = value.get("id").and_then(Json::as_str);
                match (value.get("op").and_then(Json::as_str), id) {
                    (Some("begin"), Some(id)) => {
                        if let Some(spec_json) = value.get("spec").and_then(Json::as_str) {
                            if !incomplete.iter().any(|e| e.id == id) {
                                incomplete.push(JournalEntry {
                                    id: id.to_string(),
                                    spec_json: spec_json.to_string(),
                                });
                            }
                        }
                    }
                    (Some("done"), Some(id)) => incomplete.retain(|e| e.id != id),
                    _ => {}
                }
            }
        }

        // Compact: the surviving begins, atomically.
        let tmp = path.with_extension("journal.tmp");
        {
            let mut file = File::create(&tmp)?;
            for entry in &incomplete {
                writeln!(file, "{}", begin_record(&entry.id, &entry.spec_json))?;
            }
            file.flush()?;
        }
        std::fs::rename(&tmp, path)?;

        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            incomplete,
        ))
    }

    /// Records that a campaign was admitted. Flushed before returning,
    /// so a crash any time after admission finds the intent on disk.
    pub fn begin(&mut self, id: &str, spec_json: &str) -> io::Result<()> {
        writeln!(self.file, "{}", begin_record(id, spec_json))?;
        self.file.flush()
    }

    /// Records that every job of a campaign is in the result cache.
    pub fn done(&mut self, id: &str) -> io::Result<()> {
        writeln!(self.file, "{{\"op\":\"done\",\"id\":\"{id}\"}}")?;
        self.file.flush()
    }

    /// The journal's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn begin_record(id: &str, spec_json: &str) -> String {
    let mut line = format!("{{\"op\":\"begin\",\"id\":\"{id}\",\"spec\":");
    // The spec rides as an escaped string, keeping journal lines flat
    // and the stored text byte-exact.
    json::write_escaped(&mut line, spec_json);
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hirise-serve-journal-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn incomplete_entries_survive_reopen_in_order() {
        let path = temp_journal("order");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, entries) = Journal::open(&path).unwrap();
            assert!(entries.is_empty());
            journal.begin("aaaa", r#"{"name":"a"}"#).unwrap();
            journal.begin("bbbb", r#"{"name":"b"}"#).unwrap();
            journal.begin("cccc", r#"{"name":"c"}"#).unwrap();
            journal.done("bbbb").unwrap();
        }
        let (_, entries) = Journal::open(&path).unwrap();
        assert_eq!(
            entries,
            vec![
                JournalEntry {
                    id: "aaaa".into(),
                    spec_json: r#"{"name":"a"}"#.into()
                },
                JournalEntry {
                    id: "cccc".into(),
                    spec_json: r#"{"name":"c"}"#.into()
                },
            ]
        );
        // Compaction dropped the done pair.
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(!content.contains("bbbb"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal.begin("aaaa", r#"{"name":"a"}"#).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"op\":\"begin\",\"id\":\"bb");
        std::fs::write(&path, bytes).unwrap();

        let (_, entries) = Journal::open(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].id, "aaaa");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_begins_collapse() {
        let path = temp_journal("dup");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) = Journal::open(&path).unwrap();
            journal.begin("aaaa", r#"{"name":"a"}"#).unwrap();
            journal.begin("aaaa", r#"{"name":"a"}"#).unwrap();
        }
        let (mut journal, entries) = Journal::open(&path).unwrap();
        assert_eq!(entries.len(), 1);
        journal.done("aaaa").unwrap();
        drop(journal);
        let (_, entries) = Journal::open(&path).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
