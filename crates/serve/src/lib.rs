//! `hirise-serve` — the resident campaign service.
//!
//! A std-only TCP daemon (line-delimited JSON, no external
//! dependencies) that accepts [`hirise_lab::CampaignSpec`] requests,
//! schedules the expanded jobs onto a shared worker pool, and streams
//! per-job telemetry back as records complete. Three subsystems make
//! it production-shaped:
//!
//! - **Content-addressed caching** ([`cache`]): every finished job is
//!   stored under a hash of its canonical spec + seed + axes, so an
//!   identical request — resubmitted, or arriving from another client —
//!   is served from disk, byte-identical to a fresh run.
//! - **Admission control** ([`server`]): a bounded queue, a global
//!   in-flight cap and per-client limits turn overload into typed
//!   `error` responses instead of unbounded latency.
//! - **Crash-safe journaling** ([`journal`]): campaign intent is on
//!   disk before work starts, so a killed daemon restarts and resumes
//!   incomplete campaigns without recomputing finished jobs.
//!
//! The protocol and response format are documented in [`protocol`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use journal::{Journal, JournalEntry};
pub use protocol::{parse_request, Request, RequestError, StatsSnapshot};
pub use server::{run, ServeConfig, ServerHandle};
