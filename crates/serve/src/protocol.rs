//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object per line; every response line is
//! either a control message (distinguished by an `"ok"` member) or a
//! raw campaign telemetry record (starting `{"job":`), byte-identical
//! to the line `hirise-lab` would write into a campaign JSONL file.
//!
//! Requests:
//!
//! | `op` | fields | effect |
//! |------|--------|--------|
//! | `submit` | `spec` (campaign JSON), optional `client` | run/serve the campaign, stream records |
//! | `ping` | — | liveness probe |
//! | `stats` | — | server counters snapshot |
//! | `shutdown` | optional `mode`: `drain` (default) / `now` | stop the daemon |
//!
//! A `submit` answers with an `accepted` line, then one record line per
//! job **in job order** (each written as soon as it and all its
//! predecessors are available), then a `done` line carrying the
//! cache-hit split. Any rejection is a single `error` line with a typed
//! `code`; the connection always stays open after an error, so one bad
//! request never costs a client its session.

use hirise_lab::json::{self, Json};
use hirise_lab::{campaign_from_value, CampaignSpec};
use std::fmt::Write as _;

/// Typed rejection codes carried in `error` responses.
pub mod code {
    /// The request line is not valid JSON or has no recognisable `op`.
    pub const PARSE: &str = "parse";
    /// The request parsed but its campaign spec is invalid.
    pub const BAD_SPEC: &str = "bad_spec";
    /// The job queue cannot take the campaign's expansion.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The global in-flight request limit is reached.
    pub const OVERLOADED: &str = "overloaded";
    /// This client already has its maximum of campaigns in flight.
    pub const TOO_MANY_INFLIGHT: &str = "too_many_inflight";
    /// The daemon is draining and no longer admits work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run or serve-from-cache a campaign.
    Submit {
        /// Client identity for per-client admission limits
        /// (`"anon"` when the request names none).
        client: String,
        /// The campaign to run (boxed: a spec is an order of magnitude
        /// larger than the other variants).
        spec: Box<CampaignSpec>,
    },
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Stop the daemon.
    Shutdown {
        /// `true` finishes admitted work first; `false` stops at once
        /// (in-flight campaigns stay journaled as incomplete and are
        /// recovered on the next start).
        drain: bool,
    },
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct RequestError {
    /// One of [`code::PARSE`] / [`code::BAD_SPEC`].
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn parse(message: impl Into<String>) -> Self {
        Self {
            code: code::PARSE,
            message: message.into(),
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| RequestError::parse(e.to_string()))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::parse("missing or non-string \"op\""))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => match value.get("mode").and_then(Json::as_str) {
            None | Some("drain") => Ok(Request::Shutdown { drain: true }),
            Some("now") => Ok(Request::Shutdown { drain: false }),
            Some(other) => Err(RequestError::parse(format!(
                "unknown shutdown mode {other:?}"
            ))),
        },
        "submit" => {
            let client = value
                .get("client")
                .and_then(Json::as_str)
                .unwrap_or("anon")
                .to_string();
            let spec_value = value
                .get("spec")
                .ok_or_else(|| RequestError::parse("submit needs a \"spec\" member"))?;
            let spec = campaign_from_value(spec_value).map_err(|e| RequestError {
                code: code::BAD_SPEC,
                message: e.to_string(),
            })?;
            Ok(Request::Submit {
                client,
                spec: Box::new(spec),
            })
        }
        other => Err(RequestError::parse(format!("unknown op {other:?}"))),
    }
}

/// An `error` response line.
pub fn error_line(code: &str, message: &str) -> String {
    let mut s = format!("{{\"ok\":false,\"op\":\"error\",\"code\":\"{code}\",\"message\":");
    json::write_escaped(&mut s, message);
    s.push('}');
    s
}

/// The `accepted` line opening a submit response stream.
pub fn accepted_line(request_id: &str, jobs: usize) -> String {
    format!("{{\"ok\":true,\"op\":\"accepted\",\"request\":\"{request_id}\",\"jobs\":{jobs}}}")
}

/// The `done` line closing a submit response stream.
pub fn done_line(jobs: usize, cache_hits: usize, cache_misses: usize) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"done\",\"jobs\":{jobs},\"cache_hits\":{cache_hits},\
         \"cache_misses\":{cache_misses}}}"
    )
}

/// The `pong` response.
pub fn pong_line() -> String {
    "{\"ok\":true,\"op\":\"pong\"}".to_string()
}

/// The `shutdown` acknowledgement.
pub fn shutdown_line(drain: bool) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"shutdown\",\"mode\":\"{}\"}}",
        if drain { "drain" } else { "now" }
    )
}

/// A snapshot of the server's counters for the `stats` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Admitted submit requests currently being served.
    pub inflight: usize,
    /// Jobs waiting in the worker queue.
    pub queued: usize,
    /// Journaled campaigns still being recovered after a restart.
    pub recovering: usize,
    /// Jobs simulated by the worker pool since start (cache hits
    /// excluded).
    pub jobs_run: u64,
    /// Cache lookups that found a stored record.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Submit requests fully served (streamed to `done`).
    pub requests_done: u64,
    /// Submit requests rejected with a typed error.
    pub rejected: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
}

/// The `stats` response line.
pub fn stats_line(s: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"ok\":true,\"op\":\"stats\",\"inflight\":{},\"queued\":{},\"recovering\":{},\
         \"jobs_run\":{},\"cache_hits\":{},\"cache_misses\":{},\"requests_done\":{},\
         \"rejected\":{},\"draining\":{}}}",
        s.inflight,
        s.queued,
        s.recovering,
        s.jobs_run,
        s.cache_hits,
        s.cache_misses,
        s.requests_done,
        s.rejected,
        s.draining
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown { drain: true })
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","mode":"now"}"#),
            Ok(Request::Shutdown { drain: false })
        );
        let submit = parse_request(r#"{"op":"submit","client":"c1","spec":{"name":"s"}}"#);
        match submit {
            Ok(Request::Submit { client, spec }) => {
                assert_eq!(client, "c1");
                assert_eq!(spec.name, "s");
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn bad_lines_get_typed_codes() {
        assert_eq!(parse_request("garbage").unwrap_err().code, code::PARSE);
        assert_eq!(parse_request("{}").unwrap_err().code, code::PARSE);
        assert_eq!(
            parse_request(r#"{"op":"warp"}"#).unwrap_err().code,
            code::PARSE
        );
        assert_eq!(
            parse_request(r#"{"op":"submit"}"#).unwrap_err().code,
            code::PARSE
        );
        let err = parse_request(r#"{"op":"submit","spec":{"name":"x","loads":[-1]}}"#).unwrap_err();
        assert_eq!(err.code, code::BAD_SPEC);
        assert!(err.message.contains("loads[0]"));
    }

    #[test]
    fn response_lines_are_valid_json() {
        for line in [
            error_line(code::QUEUE_FULL, "queue has 9 of 10 slots taken\nnew\"line"),
            accepted_line("00ff", 12),
            done_line(12, 4, 8),
            pong_line(),
            shutdown_line(true),
            stats_line(&StatsSnapshot::default()),
        ] {
            let parsed = json::parse(&line).expect("response line parses");
            assert!(parsed.get("ok").is_some(), "{line}");
        }
        let err = json::parse(&error_line(code::PARSE, "x")).unwrap();
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_str), Some(code::PARSE));
    }
}
