//! The resident campaign server: listener, connection handlers, the
//! shared worker pool, admission control and crash recovery.
//!
//! Architecture (host-driver / target-service split): each TCP
//! connection gets a handler thread speaking the line protocol; admitted
//! campaigns are expanded into jobs and their cache misses pushed onto
//! one shared bounded queue that a fixed pool of worker threads drains.
//! Workers simulate, write the record into the content-addressed cache,
//! and hand the line back to the submitting connection, which streams
//! records to the client in job order. Admission control happens before
//! any work is queued: a full queue, the global in-flight cap, the
//! per-client cap, and draining all produce typed `error` responses
//! instead of timeouts or dropped connections.
//!
//! Crash safety: admission writes a journal `begin` before the first
//! job is queued, and `done` only after every record of the request is
//! in the cache. A daemon killed at any point restarts, finds the
//! incomplete entries, and re-runs them in the background — finished
//! jobs are cache hits, so recovery never recomputes finished work.

use crate::cache::ResultCache;
use crate::journal::Journal;
use crate::protocol::{self, code, Request, StatsSnapshot};
use hirise_lab::{campaign_from_json, CampaignSpec, Job};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked loops (accept, drain-wait) re-check their flags.
const POLL: Duration = Duration::from_millis(5);

/// Daemon configuration. [`ServeConfig::new`] gives production-shaped
/// defaults rooted at a data directory.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Maximum jobs queued for the worker pool; a campaign whose
    /// expansion does not fit is rejected `queue_full`.
    pub queue_cap: usize,
    /// Maximum concurrently-admitted submit requests; beyond it
    /// submits are rejected `overloaded`.
    pub max_inflight: usize,
    /// Maximum concurrently-admitted submits per client identity;
    /// beyond it submits are rejected `too_many_inflight`.
    pub max_per_client: usize,
    /// The content-addressed result store's directory.
    pub cache_dir: PathBuf,
    /// Entry budget for the result store: `Some(n)` keeps at most `n`
    /// records, evicting least-recently-used ones; `None` (the
    /// default) never evicts. Eviction only costs re-simulation on a
    /// later miss, never correctness.
    pub cache_max_entries: Option<usize>,
    /// The crash-recovery journal's path.
    pub journal_path: PathBuf,
}

impl ServeConfig {
    /// Defaults rooted at `data_dir`: cache in `data_dir/cache`,
    /// journal at `data_dir/journal.jsonl`, one worker per available
    /// core, a 1024-job queue, 64 in-flight requests, 8 per client.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        let data_dir = data_dir.into();
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: hirise_lab::default_threads(),
            queue_cap: 1024,
            max_inflight: 64,
            max_per_client: 8,
            cache_dir: data_dir.join("cache"),
            cache_max_entries: None,
            journal_path: data_dir.join("journal.jsonl"),
        }
    }
}

/// One queued cache miss: the job, its campaign, and the channel the
/// submitting connection is waiting on.
struct QueuedJob {
    spec: Arc<CampaignSpec>,
    job: Job,
    tx: mpsc::Sender<(usize, String)>,
}

/// State shared by the listener, connection handlers and workers.
struct Shared {
    cfg: ServeConfig,
    cache: ResultCache,
    journal: Mutex<Journal>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    inflight: AtomicUsize,
    per_client: Mutex<HashMap<String, usize>>,
    recovering: AtomicUsize,
    /// Draining: no new admissions, finish what is in flight.
    draining: AtomicBool,
    /// Hard stop: workers exit without finishing the queue.
    stop_workers: AtomicBool,
    jobs_run: AtomicU64,
    requests_done: AtomicU64,
    rejected: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inflight: self.inflight.load(Ordering::Relaxed),
            queued: self.queue.lock().expect("queue poisoned").len(),
            recovering: self.recovering.load(Ordering::Relaxed),
            jobs_run: self.jobs_run.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            requests_done: self.requests_done.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    fn idle(&self) -> bool {
        self.inflight.load(Ordering::Relaxed) == 0
            && self.recovering.load(Ordering::Relaxed) == 0
            && self.queue.lock().expect("queue poisoned").is_empty()
    }
}

/// Releases one admission slot (global and per-client) when a submit
/// handler exits by any path.
struct AdmissionGuard<'a> {
    shared: &'a Shared,
    client: String,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let mut per_client = self.shared.per_client.lock().expect("per-client poisoned");
        if let Some(count) = per_client.get_mut(&self.client) {
            *count -= 1;
            if *count == 0 {
                per_client.remove(&self.client);
            }
        }
    }
}

/// A running daemon, owned in-process. Dropping the handle without
/// calling [`join`](Self::join) or [`abort`](Self::abort) detaches the
/// threads (the daemon keeps serving until the process exits).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    recovery: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds, recovers journaled work in the background, and starts
    /// accepting connections.
    pub fn start(cfg: ServeConfig) -> io::Result<Self> {
        let cache = ResultCache::open_bounded(&cfg.cache_dir, cfg.cache_max_entries)?;
        let (journal, incomplete) = Journal::open(&cfg.journal_path)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            cfg,
            cache,
            journal: Mutex::new(journal),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            per_client: Mutex::new(HashMap::new()),
            recovering: AtomicUsize::new(incomplete.len()),
            draining: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            requests_done: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let recovery = (!incomplete.is_empty()).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || recover(&shared, incomplete))
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };

        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            workers,
            recovery,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters (what the `stats` op reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Begins a graceful drain: stop accepting, reject new submits,
    /// finish admitted work. Equivalent to a client `shutdown` op.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
    }

    /// Waits for a drain (triggered by [`shutdown`](Self::shutdown) or
    /// a client `shutdown` op) to complete, then stops the workers and
    /// joins every owned thread.
    pub fn join(mut self) {
        while !(self.shared.draining.load(Ordering::Relaxed) && self.shared.idle()) {
            std::thread::sleep(POLL);
        }
        self.stop_threads();
    }

    /// Simulates a crash: stops accepting and halts workers without
    /// finishing the queue or marking journal entries done. In-flight
    /// campaigns stay journaled as incomplete, exactly as after a
    /// `kill -9`, so the next [`start`](Self::start) recovers them.
    pub fn abort(mut self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.stop_workers.store(true, Ordering::Relaxed);
        // Dropping queued jobs disconnects their submitters' channels.
        self.shared.queue.lock().expect("queue poisoned").clear();
        self.shared.queue_cv.notify_all();
        self.join_owned();
    }

    fn stop_threads(&mut self) {
        self.shared.stop_workers.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        self.join_owned();
    }

    fn join_owned(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(recovery) = self.recovery.take() {
            let _ = recovery.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Runs the daemon in the foreground until a client `shutdown` drains
/// it. This is what the `hirise_serve` binary calls; `on_ready`
/// receives the bound address (used to print the listening line).
pub fn run(cfg: ServeConfig, on_ready: impl FnOnce(SocketAddr)) -> io::Result<()> {
    let handle = ServerHandle::start(cfg)?;
    on_ready(handle.addr());
    handle.join();
    Ok(())
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    // A vanished client is routine, not an event worth
                    // logging at any volume.
                    let _ = handle_connection(&shared, stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.stop_workers.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(item) = queue.pop_front() {
                    break item;
                }
                queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            }
        };
        let result = item.spec.run_job(&item.job);
        let line = result.to_jsonl_line();
        let key = ResultCache::key(&item.spec, &item.job);
        if let Err(e) = shared.cache.put(&key, &line) {
            eprintln!("hirise-serve: cache write failed for {}: {e}", key.hex());
        }
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        // The submitter may be gone (client disconnected); the record
        // is cached either way, so the work is not wasted.
        let _ = item.tx.send((item.job.index, line));
    }
}

/// Re-runs journaled-incomplete campaigns after a restart. Jobs that
/// finished before the crash are cache hits; only genuinely unfinished
/// work is simulated.
fn recover(shared: &Shared, incomplete: Vec<crate::journal::JournalEntry>) {
    for entry in incomplete {
        match campaign_from_json(&entry.spec_json) {
            Ok(spec) => {
                if run_campaign_to_cache(shared, &Arc::new(spec)) {
                    let mut journal = shared.journal.lock().expect("journal poisoned");
                    if let Err(e) = journal.done(&entry.id) {
                        eprintln!("hirise-serve: journal write failed: {e}");
                    }
                } else {
                    // Aborted mid-recovery; the entry stays incomplete.
                    shared.recovering.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
            }
            Err(e) => {
                // A spec this daemon can no longer parse would wedge
                // recovery forever; drop it loudly.
                eprintln!(
                    "hirise-serve: dropping unparseable journal entry {}: {e}",
                    entry.id
                );
                let mut journal = shared.journal.lock().expect("journal poisoned");
                if let Err(e) = journal.done(&entry.id) {
                    eprintln!(
                        "hirise-serve: journal write failed while dropping {}: {e}",
                        entry.id
                    );
                }
            }
        }
        shared.recovering.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs every cache-missing job of `spec` through the worker pool and
/// waits for the cache to hold all of them. Returns `false` if the
/// pool was stopped before completion (abort path).
fn run_campaign_to_cache(shared: &Shared, spec: &Arc<CampaignSpec>) -> bool {
    let jobs = spec.jobs();
    let (tx, rx) = mpsc::channel();
    let mut misses = 0usize;
    {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        for job in &jobs {
            if shared.cache.get(&ResultCache::key(spec, job)).is_none() {
                misses += 1;
                queue.push_back(QueuedJob {
                    spec: Arc::clone(spec),
                    job: job.clone(),
                    tx: tx.clone(),
                });
            }
        }
    }
    drop(tx);
    shared.queue_cv.notify_all();
    for _ in 0..misses {
        if rx.recv().is_err() {
            return false;
        }
    }
    true
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => {
                writeln!(out, "{}", protocol::error_line(e.code, &e.message))?;
            }
            Ok(Request::Ping) => writeln!(out, "{}", protocol::pong_line())?,
            Ok(Request::Stats) => writeln!(out, "{}", protocol::stats_line(&shared.snapshot()))?,
            Ok(Request::Shutdown { drain }) => {
                writeln!(out, "{}", protocol::shutdown_line(drain))?;
                out.flush()?;
                shared.draining.store(true, Ordering::Relaxed);
                if !drain {
                    shared.stop_workers.store(true, Ordering::Relaxed);
                    shared.queue.lock().expect("queue poisoned").clear();
                    shared.queue_cv.notify_all();
                }
                return Ok(());
            }
            Ok(Request::Submit { client, spec }) => {
                handle_submit(shared, &mut out, client, *spec)?;
            }
        }
        out.flush()?;
    }
    Ok(())
}

/// Serves one admitted (or rejected) submit. Writes every response
/// line for the request; an `Err` means the client connection broke.
fn handle_submit(
    shared: &Shared,
    out: &mut impl Write,
    client: String,
    spec: CampaignSpec,
) -> io::Result<()> {
    let mut reject = |code: &str, message: &str| -> io::Result<()> {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        writeln!(out, "{}", protocol::error_line(code, message))
    };

    if shared.draining.load(Ordering::Relaxed) {
        return reject(code::SHUTTING_DOWN, "daemon is draining");
    }
    let jobs = spec.jobs();
    if jobs.len() > shared.cfg.queue_cap {
        return reject(
            code::QUEUE_FULL,
            &format!(
                "campaign expands to {} jobs but the queue holds {}",
                jobs.len(),
                shared.cfg.queue_cap
            ),
        );
    }

    // Global in-flight slot.
    if shared.inflight.fetch_add(1, Ordering::Relaxed) >= shared.cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        return reject(
            code::OVERLOADED,
            &format!("{} requests already in flight", shared.cfg.max_inflight),
        );
    }
    // Per-client slot; the guard releases both on every exit path.
    {
        let mut per_client = shared.per_client.lock().expect("per-client poisoned");
        let count = per_client.entry(client.clone()).or_insert(0);
        if *count >= shared.cfg.max_per_client {
            drop(per_client);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            return reject(
                code::TOO_MANY_INFLIGHT,
                &format!(
                    "client {client:?} already has {} campaigns in flight",
                    shared.cfg.max_per_client
                ),
            );
        }
        *count += 1;
    }
    let _guard = AdmissionGuard { shared, client };

    let spec = Arc::new(spec);
    let request_id = format!("{:016x}", spec.digest());

    // Cache pass: collect hits, identify misses.
    let mut cached: Vec<Option<String>> = jobs
        .iter()
        .map(|job| shared.cache.get(&ResultCache::key(&spec, job)))
        .collect();
    let miss_indices: Vec<usize> = (0..jobs.len()).filter(|&i| cached[i].is_none()).collect();
    let hits = jobs.len() - miss_indices.len();

    let (tx, rx) = mpsc::channel();
    if !miss_indices.is_empty() {
        {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            if queue.len() + miss_indices.len() > shared.cfg.queue_cap {
                drop(queue);
                return reject(
                    code::QUEUE_FULL,
                    &format!("queue cannot take {} more jobs", miss_indices.len()),
                );
            }
            // Intent on disk before the first job is queued: a crash
            // from here on is recoverable.
            shared
                .journal
                .lock()
                .expect("journal poisoned")
                .begin(&request_id, &spec.canonical_json())?;
            for &i in &miss_indices {
                queue.push_back(QueuedJob {
                    spec: Arc::clone(&spec),
                    job: jobs[i].clone(),
                    tx: tx.clone(),
                });
            }
        }
        shared.queue_cv.notify_all();
    }
    drop(tx);

    writeln!(out, "{}", protocol::accepted_line(&request_id, jobs.len()))?;
    out.flush()?;

    // Stream records in job order, each as soon as it and all its
    // predecessors exist. Cached lines are free; missing ones arrive
    // from the workers in completion order and are reordered here.
    let mut pending: BTreeMap<usize, String> = BTreeMap::new();
    let mut client_gone = false;
    let mut completed_misses = 0usize;
    for (index, slot) in cached.iter_mut().enumerate() {
        let line = match slot.take() {
            Some(line) => line,
            None => loop {
                if let Some(line) = pending.remove(&index) {
                    break line;
                }
                match rx.recv() {
                    Ok((i, line)) => {
                        completed_misses += 1;
                        if i == index {
                            break line;
                        }
                        pending.insert(i, line);
                    }
                    // Workers stopped (abort): the request stays
                    // journaled as incomplete for the next start.
                    Err(_) => return Ok(()),
                }
            },
        };
        if !client_gone {
            client_gone = writeln!(out, "{line}").and_then(|_| out.flush()).is_err();
        }
    }
    // Every record of this request is now in the cache.
    if !miss_indices.is_empty() {
        debug_assert_eq!(completed_misses, miss_indices.len());
        shared
            .journal
            .lock()
            .expect("journal poisoned")
            .done(&request_id)?;
    }
    shared.requests_done.fetch_add(1, Ordering::Relaxed);
    if client_gone {
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "client disconnected mid-stream",
        ));
    }
    writeln!(
        out,
        "{}",
        protocol::done_line(jobs.len(), hits, miss_indices.len())
    )
}
