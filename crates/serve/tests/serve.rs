//! Integration tests for the campaign daemon, run in-process against
//! [`ServerHandle`]: protocol robustness (malformed input gets typed
//! errors and never costs a connection or the daemon), cache-hit
//! byte-identity against fresh simulation, typed admission rejections
//! under each configured limit, journal recovery after a simulated
//! crash, and graceful drain.

use hirise_lab::json::{self, Json};
use hirise_lab::{CampaignSpec, FabricSpec, PatternSpec, SimParams};
use hirise_serve::{ServeConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hirise-serve-test-{tag}-{}", std::process::id()))
}

fn config(tag: &str) -> ServeConfig {
    let mut cfg = ServeConfig::new(temp_dir(tag));
    cfg.workers = 2;
    cfg
}

fn small_campaign(name: &str) -> CampaignSpec {
    CampaignSpec::new(name)
        .fabric(FabricSpec::Flat2d { radix: 8 })
        .pattern(PatternSpec::Uniform)
        .loads([0.1, 0.2])
        .master_seed(21)
        .sim(SimParams::new().cycles(50, 200, 200))
}

fn fresh_lines(spec: &CampaignSpec) -> Vec<String> {
    spec.jobs()
        .iter()
        .map(|job| spec.run_job(job).to_jsonl_line())
        .collect()
}

/// A line-protocol client against an in-process server.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(server: &ServerHandle) -> Self {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("set timeout");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "connection closed unexpectedly");
        line.trim_end().to_string()
    }

    fn recv_json(&mut self) -> Json {
        let line = self.recv();
        json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    fn submit_line(client: &str, spec: &CampaignSpec) -> String {
        format!(
            "{{\"op\":\"submit\",\"client\":\"{client}\",\"spec\":{}}}",
            spec.canonical_json()
        )
    }

    /// Submits and reads the whole response stream; `Ok` carries
    /// (records, cache_hits, cache_misses), `Err` the rejection code.
    fn submit(
        &mut self,
        client: &str,
        spec: &CampaignSpec,
    ) -> Result<(Vec<String>, u64, u64), String> {
        self.send(&Self::submit_line(client, spec));
        let first = self.recv_json();
        match first.get("op").and_then(Json::as_str) {
            Some("accepted") => {}
            Some("error") => {
                return Err(first
                    .get("code")
                    .and_then(Json::as_str)
                    .expect("error has a code")
                    .to_string())
            }
            other => panic!("expected accepted/error, got {other:?}"),
        }
        let mut records = Vec::new();
        loop {
            let line = self.recv();
            let value = json::parse(&line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            match value.get("op").and_then(Json::as_str) {
                Some("done") => {
                    let count = |k| value.get(k).and_then(Json::as_u64).expect("done counter");
                    return Ok((records, count("cache_hits"), count("cache_misses")));
                }
                Some(op) => panic!("unexpected control line {op:?} mid-stream"),
                None => records.push(line),
            }
        }
    }
}

#[test]
fn malformed_input_gets_typed_errors_and_the_connection_survives() {
    let dir = temp_dir("malformed");
    let _ = std::fs::remove_dir_all(&dir);
    let server = ServerHandle::start(config("malformed")).expect("start");
    let mut client = Client::connect(&server);

    // Each bad line answers with a typed error on the SAME connection.
    for (line, want_code) in [
        ("garbage", "parse"),
        ("{\"op\":\"warp\"}", "parse"),
        ("{\"op\":\"submit\"}", "parse"),
        ("{\"op\":\"submit\",\"spec\":{\"name\":\"x\",\"loads\":[-1]}}", "bad_spec"),
        (
            // Impossible Hi-Rise geometry: builder rejection, not a panic.
            "{\"op\":\"submit\",\"spec\":{\"name\":\"x\",\"fabrics\":[{\"kind\":\"hirise\",\"radix\":10,\"layers\":4}]}}",
            "bad_spec",
        ),
    ] {
        client.send(line);
        let response = client.recv_json();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some(want_code),
            "{line}"
        );
    }

    // The daemon is alive and the connection still serves real work.
    client.send("{\"op\":\"ping\"}");
    assert_eq!(
        client.recv_json().get("op").and_then(Json::as_str),
        Some("pong")
    );
    let spec = small_campaign("after-garbage");
    let (records, _, misses) = client.submit("c1", &spec).expect("submit after garbage");
    assert_eq!(records.len(), 2);
    assert_eq!(misses, 2);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_resubmit_is_byte_identical_to_fresh_simulation() {
    let dir = temp_dir("cache");
    let _ = std::fs::remove_dir_all(&dir);
    let server = ServerHandle::start(config("cache")).expect("start");
    let spec = small_campaign("cache-id");
    let expected = fresh_lines(&spec);

    let mut client = Client::connect(&server);
    let (first, hits, misses) = client.submit("c1", &spec).expect("first submit");
    assert_eq!((hits, misses), (0, 2));
    assert_eq!(first, expected, "fresh records differ from in-process run");

    // Second submit: all hits, identical bytes — also from another
    // client and a campaign with a different name (the cache key
    // excludes the name).
    let renamed = {
        let mut s = spec.clone();
        s.name = "cache-id-renamed".to_string();
        s
    };
    let mut other = Client::connect(&server);
    let (second, hits, misses) = other.submit("c2", &renamed).expect("resubmit");
    assert_eq!((hits, misses), (2, 0), "expected pure cache hits");
    assert_eq!(second, expected, "cached records differ from fresh");

    let stats = server.stats();
    assert_eq!(stats.requests_done, 2);
    assert_eq!(stats.jobs_run, 2, "cache hits must not re-simulate");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_admission_limit_rejects_with_its_code() {
    let spec = small_campaign("admission");

    // Global in-flight cap.
    let dir = temp_dir("adm-overload");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config("adm-overload");
    cfg.max_inflight = 0;
    let server = ServerHandle::start(cfg).expect("start");
    let mut client = Client::connect(&server);
    assert_eq!(client.submit("c1", &spec), Err("overloaded".to_string()));
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // Per-client cap.
    let dir = temp_dir("adm-client");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config("adm-client");
    cfg.max_per_client = 0;
    let server = ServerHandle::start(cfg).expect("start");
    let mut client = Client::connect(&server);
    assert_eq!(
        client.submit("c1", &spec),
        Err("too_many_inflight".to_string())
    );
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // Queue capacity: a campaign expanding past it.
    let dir = temp_dir("adm-queue");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config("adm-queue");
    cfg.queue_cap = 1;
    let server = ServerHandle::start(cfg).expect("start");
    let mut client = Client::connect(&server);
    assert_eq!(client.submit("c1", &spec), Err("queue_full".to_string()));
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    // Draining daemon.
    let dir = temp_dir("adm-drain");
    let _ = std::fs::remove_dir_all(&dir);
    let server = ServerHandle::start(config("adm-drain")).expect("start");
    let mut client = Client::connect(&server);
    // Round-trip first: draining stops the accept loop, so the
    // connection must be fully established before shutdown.
    client.send("{\"op\":\"ping\"}");
    client.recv_json();
    server.shutdown();
    assert_eq!(client.submit("c1", &spec), Err("shutting_down".to_string()));
    let stats = server.stats();
    assert!(stats.draining);
    assert_eq!(stats.rejected, 1);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_campaign_is_recovered_from_the_journal() {
    let dir = temp_dir("recovery");
    let _ = std::fs::remove_dir_all(&dir);
    // Enough work that the abort lands mid-campaign.
    let spec = small_campaign("recover-me")
        .loads([0.05, 0.1, 0.15, 0.2])
        .replicates(2)
        .sim(SimParams::new().cycles(200, 2_000, 2_000));
    let total_jobs = spec.jobs().len();

    let cfg = config("recovery");
    let server = ServerHandle::start(cfg.clone()).expect("start");
    let mut client = Client::connect(&server);
    client.send(&Client::submit_line("c1", &spec));
    let accepted = client.recv_json();
    assert_eq!(
        accepted.get("op").and_then(Json::as_str),
        Some("accepted"),
        "admission must be journaled before the crash"
    );
    // Crash: workers halt, the queue is dropped, nothing marks the
    // journal entry done.
    server.abort();

    // Restart on the same data directory; recovery runs in the
    // background until the campaign is complete.
    let server = ServerHandle::start(cfg).expect("restart");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = server.stats();
        if stats.recovering == 0 && stats.queued == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "recovery did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The recovered results are complete, byte-identical to fresh
    // simulation, and a resubmit recomputes nothing.
    let mut client = Client::connect(&server);
    let (records, hits, misses) = client.submit("c1", &spec).expect("resubmit");
    assert_eq!(hits as usize, total_jobs);
    assert_eq!(misses, 0, "recovery left unfinished jobs");
    assert_eq!(records, fresh_lines(&spec));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_finishes_admitted_work() {
    let dir = temp_dir("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let server = ServerHandle::start(config("drain")).expect("start");
    let spec = small_campaign("drain-work")
        .loads([0.05, 0.1, 0.15, 0.2])
        .sim(SimParams::new().cycles(200, 2_000, 2_000));

    let mut client = Client::connect(&server);
    client.send(&Client::submit_line("c1", &spec));
    let accepted = client.recv_json();
    assert_eq!(accepted.get("op").and_then(Json::as_str), Some("accepted"));

    // Drain while the campaign is (very likely still) running: the
    // admitted work must complete and stream fully.
    server.shutdown();
    let mut records = Vec::new();
    loop {
        let line = client.recv();
        let value = json::parse(&line).expect("response line");
        match value.get("op").and_then(Json::as_str) {
            Some("done") => break,
            Some(op) => panic!("unexpected control line {op:?}"),
            None => records.push(line),
        }
    }
    assert_eq!(records, fresh_lines(&spec));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
