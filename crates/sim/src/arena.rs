//! Slab arena for per-packet network metadata, keyed by dense
//! [`PacketHandle`]s.
//!
//! The network simulators used to carry routing metadata in a per-node
//! `HashMap<u64, MeshPacket>`, paying a SipHash probe (and, on growth, a
//! reallocation) for every buffered packet every cycle. The arena is the
//! SoA replacement: one `Vec<u32>` of hop counters for the whole
//! simulation, indexed by a handle stored *inside* the packet, plus a
//! free-list so steady state recycles slots without allocating.
//!
//! The only per-packet network state beyond what [`crate::Packet`]
//! already carries is the hop counter — the destination core is always
//! `packet.dst.index()` — so a slot is a single `u32`. `u32::MAX` marks
//! a free slot, which doubles as a corruption check: handing the arena a
//! stale or foreign handle is detected, not silently misread.

use hirise_core::PacketHandle;

/// Sentinel marking a free slot; a live hop count never reaches it
/// (a packet would need 2^32 - 1 hops).
const FREE: u32 = u32::MAX;

/// A slab of per-packet hop counters with a free-list.
#[derive(Clone, Debug, Default)]
pub(crate) struct PacketArena {
    hops: Vec<u32>,
    free: Vec<u32>,
}

impl PacketArena {
    /// Creates an arena with room for `capacity` packets before the
    /// first growth reallocation.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            hops: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Allocates a slot holding `hops`, recycling a freed slot if one
    /// exists.
    pub(crate) fn alloc(&mut self, hops: u32) -> PacketHandle {
        debug_assert_ne!(hops, FREE);
        if let Some(slot) = self.free.pop() {
            self.hops[slot as usize] = hops;
            PacketHandle::new(slot)
        } else {
            let slot = u32::try_from(self.hops.len()).expect("arena outgrew u32 handles");
            self.hops.push(hops);
            PacketHandle::new(slot)
        }
    }

    /// Reads the hop count behind `handle`. `None` for the `NONE`
    /// sentinel, an out-of-range slot, or a slot that is currently free
    /// — all of which mean the handle does not belong to a live packet.
    #[cfg(test)]
    pub(crate) fn get(&self, handle: PacketHandle) -> Option<u32> {
        let hops = *self.hops.get(handle.slot() as usize)?;
        (hops != FREE).then_some(hops)
    }

    /// Increments the hop count behind `handle` and returns the new
    /// value, or `None` if the handle is not live.
    pub(crate) fn bump(&mut self, handle: PacketHandle) -> Option<u32> {
        let slot = self.hops.get_mut(handle.slot() as usize)?;
        if *slot == FREE {
            return None;
        }
        *slot += 1;
        Some(*slot)
    }

    /// Frees the slot behind `handle`, returning its final hop count,
    /// or `None` if the handle is not live (the slot is left untouched).
    pub(crate) fn take(&mut self, handle: PacketHandle) -> Option<u32> {
        let slot = self.hops.get_mut(handle.slot() as usize)?;
        if *slot == FREE {
            return None;
        }
        let hops = *slot;
        *slot = FREE;
        self.free.push(handle.slot());
        Some(hops)
    }

    /// Number of live (allocated, not-yet-taken) slots.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.hops.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_recycles_slots_without_growth() {
        let mut arena = PacketArena::with_capacity(4);
        let a = arena.alloc(0);
        let b = arena.alloc(3);
        assert_ne!(a, b);
        assert_eq!(arena.get(a), Some(0));
        assert_eq!(arena.bump(a), Some(1));
        assert_eq!(arena.take(a), Some(1));
        assert_eq!(arena.live(), 1);
        // The freed slot is reused; the other slot is untouched.
        let c = arena.alloc(7);
        assert_eq!(c.slot(), a.slot());
        assert_eq!(arena.get(c), Some(7));
        assert_eq!(arena.get(b), Some(3));
    }

    #[test]
    fn dead_handles_are_detected_not_misread() {
        let mut arena = PacketArena::with_capacity(2);
        let a = arena.alloc(5);
        assert_eq!(arena.take(a), Some(5));
        // Stale handle: slot exists but is free.
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.bump(a), None);
        assert_eq!(arena.take(a), None);
        assert_eq!(
            arena.live(),
            0,
            "double-take must not corrupt the free list"
        );
        // Sentinel and out-of-range handles.
        assert_eq!(arena.get(PacketHandle::NONE), None);
        let mut other = PacketArena::with_capacity(0);
        assert_eq!(other.take(a), None);
    }
}
