//! Differential fuzzer CLI: co-simulates the whole fabric fleet
//! (golden-model crossbar, 2D Swizzle, 3D folded, Hi-Rise under L-2-L
//! LRG / WLRG / CLRG at channel multiplicities 1 and 2) on random
//! schedules, and shrinks any divergence to a minimal counterexample.
//! Every round also co-steps twin instances of each fabric to check
//! that the allocating `arbitrate` and the buffer-reusing
//! `arbitrate_into` entry points grant identically.
//!
//! ```text
//! cargo run -p hirise-sim --bin diff_fuzz -- \
//!     [--radix 16] [--cycles 60] [--rate 0.25] [--seed 1] [--rounds 200]
//! ```
//!
//! Exits non-zero iff a counterexample was found; the shrunk schedule is
//! printed so it can be pasted into a regression test.

use hirise_core::rng::{SeedableRng, StdRng};
use hirise_sim::diff::{
    check_arbitrate_into_equivalence, check_schedule, fuzz_once, standard_fleet, Schedule,
};
use std::process::ExitCode;

struct Options {
    radix: usize,
    cycles: u64,
    rate: f64,
    seed: u64,
    rounds: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        radix: 16,
        cycles: 60,
        rate: 0.25,
        seed: 1,
        rounds: 200,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--radix" => options.radix = parse(&value("--radix")?)?,
            "--cycles" => options.cycles = parse(&value("--cycles")?)?,
            "--rate" => options.rate = parse(&value("--rate")?)?,
            "--seed" => options.seed = parse(&value("--seed")?)?,
            "--rounds" => options.rounds = parse(&value("--rounds")?)?,
            "--help" | "-h" => {
                return Err("usage: diff_fuzz [--radix N] [--cycles N] [--rate F] \
                     [--seed N] [--rounds N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.radix == 0 || !options.radix.is_multiple_of(4) {
        return Err("--radix must be a positive multiple of 4 (fleet uses 4 layers)".into());
    }
    if !(0.0..=1.0).contains(&options.rate) {
        return Err("--rate must be in [0, 1]".into());
    }
    Ok(options)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let fleet = standard_fleet();
    println!(
        "fuzzing {} fabrics: radix {}, {} cycles/round, rate {}, seeds {}..{}",
        fleet.len(),
        options.radix,
        options.cycles,
        options.rate,
        options.seed,
        options.seed + options.rounds
    );
    let mut total_packets = 0usize;
    for round in 0..options.rounds {
        let seed = options.seed + round;
        // Re-derive the schedule for reporting and for the entry-point
        // equivalence pass (fuzz_once uses the same construction
        // internally).
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = Schedule::random(&mut rng, options.radix, options.cycles, options.rate, 4);
        total_packets += schedule.packets.len();
        for (name, build) in &fleet {
            if let Err(divergence) = check_arbitrate_into_equivalence(*build, &schedule) {
                eprintln!("seed {seed}: [{name}] arbitrate/arbitrate_into split: {divergence}");
                return ExitCode::FAILURE;
            }
        }
        if let Some((minimal, failure)) =
            fuzz_once(&fleet, options.radix, options.cycles, options.rate, seed)
        {
            eprintln!("seed {seed}: {failure}");
            eprintln!(
                "minimal counterexample ({} packets, radix {}):",
                minimal.packets.len(),
                minimal.radix
            );
            for packet in &minimal.packets {
                eprintln!(
                    "  cycle {:>4}  {:>3} -> {:<3}  {} flits",
                    packet.inject_cycle, packet.src, packet.dst, packet.len_flits
                );
            }
            // Confirm the minimal schedule still fails, for the report.
            if let Some(confirmed) = check_schedule(&fleet, &minimal) {
                eprintln!("confirmed: {confirmed}");
            }
            return ExitCode::FAILURE;
        }
        if (round + 1) % 50 == 0 {
            println!(
                "  {} rounds clean ({total_packets} packets co-simulated)",
                round + 1
            );
        }
    }
    println!(
        "all {} rounds clean: {total_packets} packets co-simulated across {} fabrics",
        options.rounds,
        fleet.len()
    );
    ExitCode::SUCCESS
}
