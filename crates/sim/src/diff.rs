//! Differential co-simulation of switch fabrics against a golden model.
//!
//! The paper's central behavioural claim (§III–§IV) is that Hi-Rise's
//! hierarchical two-stage arbitration *delivers the same traffic* as a
//! flat Swizzle-Switch crossbar — it only redistributes *when* each
//! packet wins. That claim is mechanically checkable: drive several
//! [`Fabric`] implementations with the identical request schedule and
//! assert that
//!
//! 1. **per-cycle grant legality** holds for every fabric — at most one
//!    grant per output and per input, every grant answers a request
//!    actually presented that cycle, and no grant lands on a busy
//!    output or busy input; and
//! 2. **end-of-run delivery equivalence** holds — every fabric delivers
//!    exactly the injected multiset of `(source, destination)` packets
//!    (nothing lost, duplicated, or conjured), in FIFO order per
//!    `(source, destination)` flow, within a starvation deadline.
//!
//! The golden model is [`RefSwitch`]: an ideal single-cycle radix-`k`
//! crossbar with oracle least-recently-granted arbitration, implemented
//! from scratch on explicit priority lists — deliberately *not* sharing
//! the `MatrixArbiter`/`BitSet` machinery of `hirise-core`, so a bug in
//! that machinery cannot hide in both sides of the comparison.
//!
//! [`fuzz`] drives randomized short schedules across a fleet of fabrics
//! (2D Swizzle, 3D folded, Hi-Rise under L-2-L LRG / WLRG / CLRG) and
//! [`shrink`] reduces any failure to a minimal counterexample schedule.
//! The `diff_fuzz` binary (`cargo run -p hirise-sim --bin diff_fuzz`)
//! wraps both for command-line use, and `tests/differential.rs` pins the
//! whole fleet green for ≥ 10k randomized cycles per fabric × scheme.

use crate::packet::Packet;
use hirise_core::rng::{Rng, SeedableRng, StdRng};
use hirise_core::{
    ArbitrationScheme, Fabric, FoldedSwitch, Grant, HiRiseConfig, HiRiseSwitch, InputId,
    MatchingSwitch, OutputId, Request, Switch2d,
};
use std::collections::VecDeque;
use std::fmt;

/// An ideal single-cycle radix-`k` switch with oracle arbitration: the
/// golden model every real fabric is co-stepped against.
///
/// Semantics: any request from an idle input to an idle output is
/// granted; contention for one output is resolved by
/// least-recently-granted order, kept as an explicit per-output priority
/// list (front = highest priority). Connections are held until
/// [`Fabric::release`], like every other fabric in the workspace.
#[derive(Clone, Debug)]
pub struct RefSwitch {
    /// Per-output LRG priority list, front = highest priority.
    order: Vec<Vec<usize>>,
    connections: Vec<Option<OutputId>>,
    owners: Vec<Option<InputId>>,
    radix: usize,
}

impl RefSwitch {
    /// Creates a golden switch of the given radix.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero.
    pub fn new(radix: usize) -> Self {
        assert!(radix > 0, "radix must be at least 1");
        Self {
            order: (0..radix).map(|_| (0..radix).collect()).collect(),
            connections: vec![None; radix],
            owners: vec![None; radix],
            radix,
        }
    }
}

impl Fabric for RefSwitch {
    fn radix(&self) -> usize {
        self.radix
    }

    fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        // First request per idle input only, as the trait contract says.
        let mut requested: Vec<Option<OutputId>> = vec![None; self.radix];
        for request in requests {
            let input = request.input.index();
            assert!(input < self.radix, "input {input} out of range");
            assert!(
                request.output.index() < self.radix,
                "output {} out of range",
                request.output.index()
            );
            if requested[input].is_none() && self.connections[input].is_none() {
                requested[input] = Some(request.output);
            }
        }
        let mut grants = Vec::new();
        for output in 0..self.radix {
            if self.owners[output].is_some() {
                continue;
            }
            // Oracle LRG: the first input in the priority list that wants
            // this output wins.
            let winner = self.order[output]
                .iter()
                .copied()
                .find(|&input| requested[input] == Some(OutputId::new(output)));
            if let Some(winner) = winner {
                self.order[output].retain(|&i| i != winner);
                self.order[output].push(winner);
                self.connections[winner] = Some(OutputId::new(output));
                self.owners[output] = Some(InputId::new(winner));
                grants.push(Grant {
                    input: InputId::new(winner),
                    output: OutputId::new(output),
                });
            }
        }
        grants
    }

    fn release(&mut self, input: InputId) {
        assert!(input.index() < self.radix, "input {input} out of range");
        if let Some(output) = self.connections[input.index()].take() {
            self.owners[output.index()] = None;
        }
    }

    fn connection(&self, input: InputId) -> Option<OutputId> {
        self.connections[input.index()]
    }

    fn output_busy(&self, output: OutputId) -> bool {
        self.owners[output.index()].is_some()
    }
}

/// One packet of a co-simulation schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedPacket {
    /// Cycle at which the packet becomes available at its source.
    pub inject_cycle: u64,
    /// Source input port.
    pub src: usize,
    /// Destination output port.
    pub dst: usize,
    /// Length in flits (connection hold time after the arbitration win).
    pub len_flits: usize,
}

/// A deterministic request schedule driven identically into every
/// fabric under comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Switch radix the schedule targets.
    pub radix: usize,
    /// The packets, in injection order (ties broken by position).
    pub packets: Vec<SchedPacket>,
}

impl Schedule {
    /// A conservative completion deadline: every packet serialized
    /// through a single output bus, plus slack for arbitration cycles
    /// and release beats.
    pub fn deadline(&self) -> u64 {
        let last_inject = self
            .packets
            .iter()
            .map(|p| p.inject_cycle)
            .max()
            .unwrap_or(0);
        let serialized: u64 = self.packets.iter().map(|p| p.len_flits as u64 + 2).sum();
        last_inject + serialized + self.radix as u64 + 64
    }

    /// Generates a random schedule: `cycles` cycles of Bernoulli
    /// injections at `rate` packets/input/cycle with uniform random
    /// destinations and `len_flits`-flit packets.
    pub fn random(
        rng: &mut StdRng,
        radix: usize,
        cycles: u64,
        rate: f64,
        len_flits: usize,
    ) -> Self {
        let mut packets = Vec::new();
        for cycle in 0..cycles {
            for src in 0..radix {
                if rng.gen_bool(rate) {
                    packets.push(SchedPacket {
                        inject_cycle: cycle,
                        src,
                        dst: rng.gen_range(0..radix),
                        len_flits,
                    });
                }
            }
        }
        Self { radix, packets }
    }
}

/// A violation detected while co-stepping one fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A grant did not answer any request presented this cycle.
    GrantWithoutRequest {
        /// Cycle of the offence.
        cycle: u64,
        /// The offending grant, as `(input, output)`.
        grant: (usize, usize),
    },
    /// Two grants named the same output in one cycle.
    DoubleGrantOutput {
        /// Cycle of the offence.
        cycle: u64,
        /// The output granted twice.
        output: usize,
    },
    /// Two grants named the same input in one cycle.
    DoubleGrantInput {
        /// Cycle of the offence.
        cycle: u64,
        /// The input granted twice.
        input: usize,
    },
    /// A grant landed on an output that was already mid-transfer.
    GrantToBusyOutput {
        /// Cycle of the offence.
        cycle: u64,
        /// The busy output.
        output: usize,
    },
    /// A held connection changed or vanished without a release.
    HeldConnectionDisturbed {
        /// Cycle of the offence.
        cycle: u64,
        /// The input whose connection was disturbed.
        input: usize,
    },
    /// Not every packet was delivered before the schedule deadline.
    Starvation {
        /// The deadline cycle that was reached.
        cycle: u64,
        /// Undelivered packets as `(src, dst)` pairs.
        pending: Vec<(usize, usize)>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::GrantWithoutRequest { cycle, grant } => write!(
                f,
                "cycle {cycle}: grant {}->{} answers no presented request",
                grant.0, grant.1
            ),
            Violation::DoubleGrantOutput { cycle, output } => {
                write!(f, "cycle {cycle}: output {output} granted twice")
            }
            Violation::DoubleGrantInput { cycle, input } => {
                write!(f, "cycle {cycle}: input {input} granted twice")
            }
            Violation::GrantToBusyOutput { cycle, output } => {
                write!(f, "cycle {cycle}: grant to busy output {output}")
            }
            Violation::HeldConnectionDisturbed { cycle, input } => {
                write!(
                    f,
                    "cycle {cycle}: held connection of input {input} disturbed"
                )
            }
            Violation::Starvation { cycle, pending } => write!(
                f,
                "deadline {cycle}: {} packets undelivered: {pending:?}",
                pending.len()
            ),
        }
    }
}

/// The outcome of driving one fabric through a schedule.
#[derive(Clone, Debug)]
pub struct CoSimOutcome {
    /// Delivered packets in completion order, as indices into
    /// [`Schedule::packets`].
    pub delivered: Vec<usize>,
    /// Cycles simulated until everything drained.
    pub cycles: u64,
}

/// Drives `fabric` through `schedule`, checking per-cycle grant
/// legality, and returns the delivery log.
///
/// The engine mirrors the `NetworkSim` cycle loop: idle inputs present
/// their FIFO head as a request each cycle, winners hold the connection
/// for `len_flits` beats, and the release beat occupies one extra cycle
/// (the output bus doubles as the priority bus).
///
/// # Errors
///
/// Returns the first [`Violation`] encountered.
pub fn run_schedule<F: Fabric>(
    fabric: &mut F,
    schedule: &Schedule,
) -> Result<CoSimOutcome, Violation> {
    assert_eq!(
        fabric.radix(),
        schedule.radix,
        "fabric/schedule radix mismatch"
    );
    let radix = schedule.radix;
    let deadline = schedule.deadline();

    // Per-input FIFO of schedule indices, filled as cycles pass.
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); radix];
    let mut next_packet = 0usize; // schedule is scanned in order
    let mut by_cycle: Vec<usize> = (0..schedule.packets.len()).collect();
    by_cycle.sort_by_key(|&i| schedule.packets[i].inject_cycle);

    // In-flight transfer per input: (schedule index, flits remaining).
    let mut transfers: Vec<Option<(usize, usize)>> = vec![None; radix];
    let mut delivered = Vec::new();
    let mut grants: Vec<Grant> = Vec::new();
    let mut now = 0u64;

    while delivered.len() < schedule.packets.len() {
        if now > deadline {
            let pending: Vec<(usize, usize)> = (0..schedule.packets.len())
                .filter(|i| !delivered.contains(i))
                .map(|i| (schedule.packets[i].src, schedule.packets[i].dst))
                .collect();
            return Err(Violation::Starvation {
                cycle: now,
                pending,
            });
        }

        // (a) Progress transfers; completed ones release one beat later.
        for (input, transfer) in transfers.iter_mut().enumerate() {
            if let Some((index, flits)) = transfer {
                if *flits > 0 {
                    *flits -= 1;
                    if *flits == 0 {
                        delivered.push(*index);
                    }
                } else {
                    fabric.release(InputId::new(input));
                    *transfer = None;
                }
            }
        }

        // (b) Inject this cycle's packets.
        while next_packet < by_cycle.len()
            && schedule.packets[by_cycle[next_packet]].inject_cycle <= now
        {
            let index = by_cycle[next_packet];
            queues[schedule.packets[index].src].push_back(index);
            next_packet += 1;
        }

        // (c) Present the head of every idle input's queue.
        let mut requests = Vec::new();
        for (input, queue) in queues.iter().enumerate() {
            if transfers[input].is_some() {
                continue;
            }
            if let Some(&index) = queue.front() {
                requests.push(Request::new(
                    InputId::new(input),
                    OutputId::new(schedule.packets[index].dst),
                ));
            }
        }

        // Snapshot held connections to verify they survive arbitration.
        let busy_out: Vec<bool> = (0..radix)
            .map(|o| fabric.output_busy(OutputId::new(o)))
            .collect();
        let held: Vec<Option<OutputId>> = (0..radix)
            .map(|i| fabric.connection(InputId::new(i)))
            .collect();

        fabric.arbitrate_into(&requests, &mut grants);

        // (d) Per-cycle grant legality.
        let mut out_seen = vec![false; radix];
        let mut in_seen = vec![false; radix];
        for grant in &grants {
            let gi = grant.input.index();
            let go = grant.output.index();
            if !requests
                .iter()
                .any(|r| r.input == grant.input && r.output == grant.output)
            {
                return Err(Violation::GrantWithoutRequest {
                    cycle: now,
                    grant: (gi, go),
                });
            }
            if out_seen[go] {
                return Err(Violation::DoubleGrantOutput {
                    cycle: now,
                    output: go,
                });
            }
            if in_seen[gi] {
                return Err(Violation::DoubleGrantInput {
                    cycle: now,
                    input: gi,
                });
            }
            out_seen[go] = true;
            in_seen[gi] = true;
            if busy_out[go] {
                return Err(Violation::GrantToBusyOutput {
                    cycle: now,
                    output: go,
                });
            }
        }
        for (input, held_output) in held.iter().enumerate() {
            if let Some(output) = held_output {
                if fabric.connection(InputId::new(input)) != Some(*output) {
                    return Err(Violation::HeldConnectionDisturbed { cycle: now, input });
                }
            }
        }

        // (e) Winners start transferring their FIFO head.
        for grant in &grants {
            let input = grant.input.index();
            let index = queues[input]
                .pop_front()
                .expect("granted input has a queued packet");
            transfers[input] = Some((index, schedule.packets[index].len_flits));
        }

        now += 1;
    }

    Ok(CoSimOutcome {
        delivered,
        cycles: now,
    })
}

/// How a fabric diverged from the schedule or from the golden model.
#[derive(Clone, Debug)]
pub struct DiffFailure {
    /// Name of the fabric that failed.
    pub fabric: String,
    /// What went wrong.
    pub kind: DiffFailureKind,
}

/// The failure classes the differential harness distinguishes.
#[derive(Clone, Debug)]
pub enum DiffFailureKind {
    /// A per-cycle invariant broke inside one fabric's run.
    Violation(Violation),
    /// The fabric's delivered multiset differs from the injected one.
    DeliverySetMismatch {
        /// `(src, dst)` pairs delivered but never injected (duplicates).
        extra: Vec<(usize, usize)>,
        /// `(src, dst)` pairs injected but never delivered.
        missing: Vec<(usize, usize)>,
    },
    /// Packets of one `(src, dst)` flow were delivered out of FIFO order.
    FlowOrderViolation {
        /// The flow, as `(src, dst)`.
        flow: (usize, usize),
        /// The schedule indices in delivery order.
        delivered: Vec<usize>,
    },
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DiffFailureKind::Violation(v) => write!(f, "[{}] {v}", self.fabric),
            DiffFailureKind::DeliverySetMismatch { extra, missing } => write!(
                f,
                "[{}] delivery-set mismatch: extra {extra:?}, missing {missing:?}",
                self.fabric
            ),
            DiffFailureKind::FlowOrderViolation { flow, delivered } => write!(
                f,
                "[{}] flow {:?} delivered out of order: {delivered:?}",
                self.fabric, flow
            ),
        }
    }
}

/// A named fabric constructor, so the harness can build fresh instances
/// for every (shrunk) schedule candidate.
pub type FabricBuilder = (String, fn(usize) -> Box<dyn Fabric>);

fn hirise_fleet_member(scheme: ArbitrationScheme, c: usize, radix: usize) -> Box<dyn Fabric> {
    let cfg = HiRiseConfig::builder(radix, 4)
        .channel_multiplicity(c)
        .scheme(scheme)
        .build()
        .expect("valid differential-fleet configuration");
    Box::new(HiRiseSwitch::new(&cfg))
}

/// The standard differential fleet: golden model, flat 2D Swizzle, 3D
/// folded, Hi-Rise under all three §III-B arbitration schemes at
/// channel multiplicities 1 and 2, and the iterative-matching opponents
/// (iSLIP at 1/2/4 iterations, ESLIP, wavefront). Radix must be
/// divisible by 4.
pub fn standard_fleet() -> Vec<FabricBuilder> {
    vec![
        ("ref".into(), |r| Box::new(RefSwitch::new(r))),
        ("switch2d".into(), |r| Box::new(Switch2d::new(r))),
        ("folded".into(), |r| Box::new(FoldedSwitch::new(r, 4))),
        ("hirise-l2l-lrg-c1".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::LayerToLayerLrg, 1, r)
        }),
        ("hirise-wlrg-c1".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::WeightedLrg, 1, r)
        }),
        ("hirise-clrg-c1".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::class_based(), 1, r)
        }),
        ("hirise-l2l-lrg-c2".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::LayerToLayerLrg, 2, r)
        }),
        ("hirise-wlrg-c2".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::WeightedLrg, 2, r)
        }),
        ("hirise-clrg-c2".into(), |r| {
            hirise_fleet_member(ArbitrationScheme::class_based(), 2, r)
        }),
        ("islip1".into(), |r| Box::new(MatchingSwitch::islip(r, 1))),
        ("islip2".into(), |r| Box::new(MatchingSwitch::islip(r, 2))),
        ("islip4".into(), |r| Box::new(MatchingSwitch::islip(r, 4))),
        ("eslip".into(), |r| Box::new(MatchingSwitch::eslip(r, 2))),
        ("wavefront".into(), |r| {
            Box::new(MatchingSwitch::wavefront(r))
        }),
    ]
}

fn check_one(
    name: &str,
    build: fn(usize) -> Box<dyn Fabric>,
    schedule: &Schedule,
) -> Option<DiffFailure> {
    let mut fabric = build(schedule.radix);
    let outcome = match run_schedule(&mut fabric, schedule) {
        Ok(outcome) => outcome,
        Err(violation) => {
            return Some(DiffFailure {
                fabric: name.to_string(),
                kind: DiffFailureKind::Violation(violation),
            })
        }
    };

    // Delivery-set equivalence: delivered multiset == injected multiset.
    // (run_schedule only completes when every packet delivered exactly
    // once, but verify independently — the log could double-count.)
    let mut counts = vec![0i64; schedule.packets.len()];
    for &index in &outcome.delivered {
        counts[index] += 1;
    }
    let extra: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 1)
        .map(|(i, _)| (schedule.packets[i].src, schedule.packets[i].dst))
        .collect();
    let missing: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == 0)
        .map(|(i, _)| (schedule.packets[i].src, schedule.packets[i].dst))
        .collect();
    if !extra.is_empty() || !missing.is_empty() {
        return Some(DiffFailure {
            fabric: name.to_string(),
            kind: DiffFailureKind::DeliverySetMismatch { extra, missing },
        });
    }

    // Per-flow FIFO order: within one (src, dst) pair, schedule indices
    // must be delivered in increasing order.
    let mut last_per_flow: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &index in &outcome.delivered {
        let flow = (schedule.packets[index].src, schedule.packets[index].dst);
        if let Some(&last) = last_per_flow.get(&flow) {
            if index < last {
                let delivered: Vec<usize> = outcome
                    .delivered
                    .iter()
                    .copied()
                    .filter(|&i| (schedule.packets[i].src, schedule.packets[i].dst) == flow)
                    .collect();
                return Some(DiffFailure {
                    fabric: name.to_string(),
                    kind: DiffFailureKind::FlowOrderViolation { flow, delivered },
                });
            }
        }
        last_per_flow.insert(flow, index);
    }
    None
}

/// Co-steps every fabric in `fleet` through `schedule`, returning the
/// first divergence found (grant illegality, delivery-set inequality
/// versus the injected set, per-flow reordering, or starvation).
pub fn check_schedule(fleet: &[FabricBuilder], schedule: &Schedule) -> Option<DiffFailure> {
    fleet
        .iter()
        .find_map(|(name, build)| check_one(name, *build, schedule))
}

/// Greedy delta-debugging: repeatedly drop packets (in halves, then one
/// at a time) while the failure persists, returning a locally minimal
/// schedule that still fails.
pub fn shrink(fleet: &[FabricBuilder], schedule: &Schedule) -> Schedule {
    let mut current = schedule.clone();
    debug_assert!(
        check_schedule(fleet, &current).is_some(),
        "shrink needs a failing schedule"
    );
    let mut chunk = (current.packets.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.packets.len() {
            let end = (start + chunk).min(current.packets.len());
            let mut candidate = current.clone();
            candidate.packets.drain(start..end);
            if !candidate.packets.is_empty() && check_schedule(fleet, &candidate).is_some() {
                current = candidate;
                progressed = true;
                // Retry the same window — it now holds fresh packets.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            return current;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// One fuzzing round: a random schedule for `radix` over `cycles`
/// cycles at `rate` load, checked across `fleet`. On failure the
/// counterexample is shrunk before being returned.
pub fn fuzz_once(
    fleet: &[FabricBuilder],
    radix: usize,
    cycles: u64,
    rate: f64,
    seed: u64,
) -> Option<(Schedule, DiffFailure)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = Schedule::random(&mut rng, radix, cycles, rate, 4);
    check_schedule(fleet, &schedule).map(|_| {
        let minimal = shrink(fleet, &schedule);
        let failure = check_schedule(fleet, &minimal).expect("shrunk schedule still fails");
        (minimal, failure)
    })
}

/// Runs `rounds` fuzzing rounds with seeds `base_seed..base_seed+rounds`,
/// returning the first (shrunk) counterexample, or `None` when the whole
/// fleet stays equivalent.
pub fn fuzz(
    fleet: &[FabricBuilder],
    radix: usize,
    cycles: u64,
    rate: f64,
    base_seed: u64,
    rounds: u64,
) -> Option<(Schedule, DiffFailure)> {
    (0..rounds).find_map(|round| fuzz_once(fleet, radix, cycles, rate, base_seed + round))
}

/// The first cycle at which [`Fabric::arbitrate`] and
/// [`Fabric::arbitrate_into`] disagreed on twin instances of one fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArbitrateIntoDivergence {
    /// Cycle of the divergence.
    pub cycle: u64,
    /// Grants from the allocating entry point, as `(input, output)`.
    pub via_arbitrate: Vec<(usize, usize)>,
    /// Grants from the buffer-reusing entry point, as `(input, output)`.
    pub via_arbitrate_into: Vec<(usize, usize)>,
}

impl fmt::Display for ArbitrateIntoDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: arbitrate granted {:?} but arbitrate_into granted {:?}",
            self.cycle, self.via_arbitrate, self.via_arbitrate_into
        )
    }
}

/// Co-steps two fresh instances of one fabric through `schedule` — one
/// driven via the allocating [`Fabric::arbitrate`], the other via the
/// buffer-reusing [`Fabric::arbitrate_into`] — and demands bit-identical
/// grant vectors every cycle (same winners, same order).
///
/// Returns the number of cycles compared. The engine mirrors
/// [`run_schedule`]'s cycle loop and stops at the schedule deadline even
/// if traffic is still draining, so a run always terminates.
///
/// # Errors
///
/// Returns the first cycle whose grant vectors differ.
pub fn check_arbitrate_into_equivalence(
    build: fn(usize) -> Box<dyn Fabric>,
    schedule: &Schedule,
) -> Result<u64, ArbitrateIntoDivergence> {
    let radix = schedule.radix;
    let deadline = schedule.deadline();
    let mut via_arbitrate = build(radix);
    let mut via_into = build(radix);

    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); radix];
    let mut next_packet = 0usize;
    let mut by_cycle: Vec<usize> = (0..schedule.packets.len()).collect();
    by_cycle.sort_by_key(|&i| schedule.packets[i].inject_cycle);

    let mut transfers: Vec<Option<(usize, usize)>> = vec![None; radix];
    let mut delivered = 0usize;
    let mut grants_into: Vec<Grant> = Vec::new();
    let mut now = 0u64;

    while delivered < schedule.packets.len() && now <= deadline {
        for (input, transfer) in transfers.iter_mut().enumerate() {
            if let Some((_, flits)) = transfer {
                if *flits > 0 {
                    *flits -= 1;
                    if *flits == 0 {
                        delivered += 1;
                    }
                } else {
                    via_arbitrate.release(InputId::new(input));
                    via_into.release(InputId::new(input));
                    *transfer = None;
                }
            }
        }

        while next_packet < by_cycle.len()
            && schedule.packets[by_cycle[next_packet]].inject_cycle <= now
        {
            let index = by_cycle[next_packet];
            queues[schedule.packets[index].src].push_back(index);
            next_packet += 1;
        }

        let mut requests = Vec::new();
        for (input, queue) in queues.iter().enumerate() {
            if transfers[input].is_some() {
                continue;
            }
            if let Some(&index) = queue.front() {
                requests.push(Request::new(
                    InputId::new(input),
                    OutputId::new(schedule.packets[index].dst),
                ));
            }
        }

        let grants = via_arbitrate.arbitrate(&requests);
        via_into.arbitrate_into(&requests, &mut grants_into);
        if grants != grants_into {
            return Err(ArbitrateIntoDivergence {
                cycle: now,
                via_arbitrate: grants
                    .iter()
                    .map(|g| (g.input.index(), g.output.index()))
                    .collect(),
                via_arbitrate_into: grants_into
                    .iter()
                    .map(|g| (g.input.index(), g.output.index()))
                    .collect(),
            });
        }

        for grant in &grants {
            let input = grant.input.index();
            let index = queues[input]
                .pop_front()
                .expect("granted input has a queued packet");
            transfers[input] = Some((index, schedule.packets[index].len_flits));
        }

        now += 1;
    }

    Ok(now)
}

/// Convenience: converts a schedule into the `Packet` type the
/// `NetworkSim` statistics use — handy when replaying a shrunk
/// counterexample inside the full simulator.
pub fn schedule_packets(schedule: &Schedule) -> Vec<Packet> {
    schedule
        .packets
        .iter()
        .enumerate()
        .map(|(id, p)| Packet {
            id: id as u64,
            src: InputId::new(p.src),
            dst: OutputId::new(p.dst),
            len_flits: p.len_flits,
            birth_cycle: p.inject_cycle,
            measured: true,
            handle: hirise_core::PacketHandle::NONE,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(cycle: u64, src: usize, dst: usize) -> SchedPacket {
        SchedPacket {
            inject_cycle: cycle,
            src,
            dst,
            len_flits: 4,
        }
    }

    #[test]
    fn refswitch_grants_all_disjoint_requests() {
        let mut sw = RefSwitch::new(8);
        let requests: Vec<Request> = (0..8)
            .map(|i| Request::new(InputId::new(i), OutputId::new((i + 1) % 8)))
            .collect();
        assert_eq!(sw.arbitrate(&requests).len(), 8);
    }

    #[test]
    fn refswitch_lrg_rotates_contenders() {
        let mut sw = RefSwitch::new(4);
        let requests: Vec<Request> = (0..4)
            .map(|i| Request::new(InputId::new(i), OutputId::new(0)))
            .collect();
        let mut sequence = Vec::new();
        for _ in 0..8 {
            let grants = sw.arbitrate(&requests);
            assert_eq!(grants.len(), 1);
            sequence.push(grants[0].input.index());
            sw.release(grants[0].input);
        }
        assert_eq!(sequence, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn empty_schedule_completes_immediately() {
        let schedule = Schedule {
            radix: 8,
            packets: vec![],
        };
        let outcome = run_schedule(&mut RefSwitch::new(8), &schedule).unwrap();
        assert_eq!(outcome.delivered.len(), 0);
    }

    #[test]
    fn single_packet_delivers_in_len_plus_one_cycles() {
        let schedule = Schedule {
            radix: 8,
            packets: vec![packet(0, 0, 3)],
        };
        let outcome = run_schedule(&mut RefSwitch::new(8), &schedule).unwrap();
        assert_eq!(outcome.delivered, vec![0]);
        // Inject + arbitrate at cycle 0, four flit beats -> done after 5.
        assert_eq!(outcome.cycles, 5);
    }

    #[test]
    fn hotspot_schedule_serializes_on_every_fabric() {
        let schedule = Schedule {
            radix: 16,
            packets: (0..8).map(|i| packet(0, i, 5)).collect(),
        };
        for (name, build) in standard_fleet() {
            let mut fabric = build(16);
            let outcome =
                run_schedule(&mut fabric, &schedule).unwrap_or_else(|v| panic!("{name}: {v}"));
            assert_eq!(outcome.delivered.len(), 8, "{name}");
        }
    }

    #[test]
    fn fleet_passes_a_quick_fuzz() {
        let fleet = standard_fleet();
        assert!(fuzz(&fleet, 16, 40, 0.2, 0xD1FF, 5).is_none());
    }

    #[test]
    fn arbitrate_into_agrees_with_arbitrate_on_the_fleet() {
        let mut rng = StdRng::seed_from_u64(0xA11C);
        let schedule = Schedule::random(&mut rng, 16, 60, 0.25, 4);
        for (name, build) in standard_fleet() {
            check_arbitrate_into_equivalence(build, &schedule)
                .unwrap_or_else(|d| panic!("{name}: {d}"));
        }
    }

    #[test]
    fn arbitrate_into_divergence_is_reported() {
        // A fabric whose arbitrate_into override deliberately drops the
        // last grant, so the two entry points disagree.
        struct Lossy(RefSwitch);
        impl Fabric for Lossy {
            fn radix(&self) -> usize {
                self.0.radix()
            }
            fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
                self.0.arbitrate(requests)
            }
            fn arbitrate_into(&mut self, requests: &[Request], grants: &mut Vec<Grant>) {
                grants.clear();
                grants.extend(self.0.arbitrate(requests));
                grants.pop();
            }
            fn release(&mut self, input: InputId) {
                self.0.release(input);
            }
            fn connection(&self, input: InputId) -> Option<OutputId> {
                self.0.connection(input)
            }
            fn output_busy(&self, output: OutputId) -> bool {
                self.0.output_busy(output)
            }
        }
        fn build(radix: usize) -> Box<dyn Fabric> {
            Box::new(Lossy(RefSwitch::new(radix)))
        }
        let schedule = Schedule {
            radix: 8,
            packets: vec![packet(0, 0, 3)],
        };
        let divergence = check_arbitrate_into_equivalence(build, &schedule).unwrap_err();
        assert_eq!(divergence.cycle, 0);
        assert_eq!(divergence.via_arbitrate, vec![(0, 3)]);
        assert!(divergence.via_arbitrate_into.is_empty());
    }

    #[test]
    fn shrink_finds_small_counterexample_for_seeded_bug() {
        // A deliberately broken fabric: drops every 5th granted packet's
        // release (holds the output forever), starving later traffic.
        struct Leaky {
            inner: RefSwitch,
            grants: usize,
        }
        impl Fabric for Leaky {
            fn radix(&self) -> usize {
                self.inner.radix()
            }
            fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
                let grants = self.inner.arbitrate(requests);
                self.grants += grants.len();
                grants
            }
            fn release(&mut self, input: InputId) {
                // Leak the release after the 5th grant.
                if self.grants < 5 {
                    self.inner.release(input);
                }
            }
            fn connection(&self, input: InputId) -> Option<OutputId> {
                self.inner.connection(input)
            }
            fn output_busy(&self, output: OutputId) -> bool {
                self.inner.output_busy(output)
            }
        }
        fn build_leaky(radix: usize) -> Box<dyn Fabric> {
            Box::new(Leaky {
                inner: RefSwitch::new(radix),
                grants: 0,
            })
        }
        let fleet: Vec<FabricBuilder> = vec![("leaky".into(), build_leaky)];
        let mut rng = StdRng::seed_from_u64(7);
        let schedule = Schedule::random(&mut rng, 8, 60, 0.4, 4);
        assert!(
            check_schedule(&fleet, &schedule).is_some(),
            "leaky fabric must fail"
        );
        let minimal = shrink(&fleet, &schedule);
        assert!(check_schedule(&fleet, &minimal).is_some());
        // 5 grants fill the leak; a 6th packet exposes it. The shrinker
        // must get close to that minimum.
        assert!(
            minimal.packets.len() <= 8,
            "shrunk to {} packets",
            minimal.packets.len()
        );
    }

    #[test]
    fn delivery_log_matches_injection_multiset() {
        let mut rng = StdRng::seed_from_u64(21);
        let schedule = Schedule::random(&mut rng, 16, 50, 0.3, 4);
        let outcome = run_schedule(&mut Switch2d::new(16), &schedule).unwrap();
        let mut delivered = outcome.delivered.clone();
        delivered.sort_unstable();
        assert_eq!(delivered, (0..schedule.packets.len()).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_packets_round_trip() {
        let schedule = Schedule {
            radix: 4,
            packets: vec![packet(3, 1, 2)],
        };
        let packets = schedule_packets(&schedule);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].src, InputId::new(1));
        assert_eq!(packets[0].birth_cycle, 3);
    }
}
