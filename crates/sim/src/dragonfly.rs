//! Dragonfly / wafer-scale topology whose routers are Hi-Rise switches.
//!
//! A dragonfly (Kim et al.) is a two-level hierarchy: `a` routers per
//! group, fully connected locally; `p` endpoints per router; `h` global
//! channels per router connecting the groups all-to-all. With one
//! channel between every group pair, `g` groups need `g - 1 <= a * h`.
//! Minimal routing is at most local → global → local.
//!
//! The *wafer-scale* reading follows "Switch-Less Dragonfly on Wafers"
//! (PAPERS.md): each group is a wafer (or wafer region) of Hi-Rise
//! switches, and the global channels are the scarce wafer-to-wafer
//! links. Accordingly the fault model here kills whole *wafer links*
//! (group-to-group channels); routing detours dead links through a
//! deterministic intermediate group — the classic Valiant-style escape,
//! but only where the minimal path is broken.
//!
//! Two global-link arrangements are provided ([`GlobalLinkMap`]):
//! *consecutive* (channel `c` of group `G` reaches group `G + c + 1`)
//! and *palmtree* (`G - c - 1`), the two standard wirings; both give
//! one channel per group pair, they differ in which router owns which
//! pair (and therefore in load distribution under non-uniform traffic).
//!
//! Unlike the mesh, links exert no credit back-pressure
//! ([`ShardTopology::credit_links`] is `false`): input queues are
//! unbounded, which makes the network trivially deadlock-free without
//! the escape virtual channels real dragonflies need. Saturation still
//! shows exactly where it should — completed falls behind injected and
//! latency diverges — so stability and latency curves remain
//! meaningful; only finite-buffer effects are idealized away.
//!
//! This topology exists to be *sharded*: a
//! [`ShardedSim`](crate::shard::ShardedSim) over a
//! [`DragonflyGeometry`] runs 10k+ endpoints across worker threads
//! with byte-identical telemetry at any shard count.

use std::collections::{HashMap, HashSet};

use crate::shard::ShardTopology;
use hirise_core::rng::{SeedableRng, SliceRandom, StdRng};
use hirise_core::OutputId;

/// How each group's global channels map to peer groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GlobalLinkMap {
    /// Channel `c` of group `G` connects to group `(G + c + 1) % g`.
    #[default]
    Consecutive,
    /// Channel `c` of group `G` connects to group `(G - c - 1) mod g`.
    Palmtree,
}

/// Shape of a dragonfly: `a` routers/group, `p` endpoints/router,
/// `h` global channels/router, `g` groups.
#[derive(Clone, Copy, Debug)]
pub struct DragonflyConfig {
    routers_per_group: usize,
    endpoints_per_router: usize,
    global_per_router: usize,
    groups: usize,
    map: GlobalLinkMap,
}

impl DragonflyConfig {
    /// A dragonfly with `routers_per_group` routers per group,
    /// `endpoints_per_router` endpoints each, `global_per_router`
    /// global (wafer) links per router, and `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or there are fewer than two
    /// groups (shape errors that depend on the radix are reported by
    /// [`DragonflyGeometry::new`] instead).
    pub fn new(
        routers_per_group: usize,
        endpoints_per_router: usize,
        global_per_router: usize,
        groups: usize,
    ) -> Self {
        assert!(routers_per_group >= 1, "need at least one router per group");
        assert!(
            endpoints_per_router >= 1,
            "need at least one endpoint per router"
        );
        assert!(
            global_per_router >= 1,
            "need at least one global link per router"
        );
        assert!(groups >= 2, "a dragonfly needs at least two groups");
        Self {
            routers_per_group,
            endpoints_per_router,
            global_per_router,
            groups,
            map: GlobalLinkMap::default(),
        }
    }

    /// Selects the global-link arrangement.
    pub fn map(mut self, map: GlobalLinkMap) -> Self {
        self.map = map;
        self
    }

    /// Routers per group (`a`).
    pub fn routers_per_group(&self) -> usize {
        self.routers_per_group
    }

    /// Endpoints per router (`p`).
    pub fn endpoints_per_router(&self) -> usize {
        self.endpoints_per_router
    }

    /// Global links per router (`h`).
    pub fn global_per_router(&self) -> usize {
        self.global_per_router
    }

    /// Group count (`g`).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Switch ports each router needs: `p + (a - 1) + h`.
    pub fn ports_needed(&self) -> usize {
        self.endpoints_per_router + self.routers_per_group - 1 + self.global_per_router
    }
}

/// Why a [`DragonflyGeometry`] could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DragonflyError {
    /// The switch radix cannot host endpoint + local + global ports.
    RadixTooSmall {
        /// The offered radix.
        radix: usize,
        /// Ports the shape needs (`p + a - 1 + h`).
        needed: usize,
    },
    /// More groups than the per-group global channels can reach.
    TooManyGroups {
        /// Configured group count.
        groups: usize,
        /// Maximum supported by the shape (`a * h + 1`).
        max: usize,
    },
    /// A dead wafer link names a group outside `0..groups` or a
    /// self-link.
    BadDeadLink {
        /// The offending pair as given.
        link: (usize, usize),
    },
    /// After removing the dead wafer links, some group pair has neither
    /// a direct link nor any intermediate group with both legs alive.
    Unroutable {
        /// Source group of the first unroutable pair found.
        from_group: usize,
        /// Destination group.
        to_group: usize,
    },
}

impl std::fmt::Display for DragonflyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DragonflyError::RadixTooSmall { radix, needed } => {
                write!(
                    f,
                    "radix {radix} too small: shape needs {needed} ports per router"
                )
            }
            DragonflyError::TooManyGroups { groups, max } => {
                write!(
                    f,
                    "{groups} groups exceed the {max} reachable with a*h channels"
                )
            }
            DragonflyError::BadDeadLink { link } => {
                write!(f, "dead wafer link {link:?} is out of range or a self-link")
            }
            DragonflyError::Unroutable {
                from_group,
                to_group,
            } => write!(
                f,
                "groups {from_group} -> {to_group} unreachable: direct wafer link dead and no \
                 intermediate group has both legs alive"
            ),
        }
    }
}

impl std::error::Error for DragonflyError {}

/// The pure geometry of a dragonfly of Hi-Rise switches, with an
/// optional set of dead wafer (global) links and precomputed detours
/// around them. Implements [`ShardTopology`], so it plugs straight
/// into [`ShardedSim`](crate::shard::ShardedSim).
///
/// Router ports: `[0, p)` endpoints, `[p, p + a - 1)` local links,
/// `[p + a - 1, p + a - 1 + h)` global links; any further ports of an
/// oversized switch stay unused. Node `G * a + r` is router `r` of
/// group `G`; endpoint numbering is node-major (`node * p + local`).
#[derive(Clone, Debug)]
pub struct DragonflyGeometry {
    cfg: DragonflyConfig,
    radix: usize,
    /// Dead group-pair links, stored as `(min, max)`.
    dead: HashSet<(usize, usize)>,
    /// For each ordered dead pair `(src, dst)`, the deterministic
    /// intermediate group with both legs alive.
    detour: HashMap<(usize, usize), usize>,
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

impl DragonflyGeometry {
    /// Builds the geometry on switches of `radix` ports with the given
    /// dead wafer links, validating that every group pair stays
    /// routable (directly or through one intermediate group).
    pub fn new(
        cfg: DragonflyConfig,
        radix: usize,
        dead_links: &[(usize, usize)],
    ) -> Result<Self, DragonflyError> {
        let needed = cfg.ports_needed();
        if radix < needed {
            return Err(DragonflyError::RadixTooSmall { radix, needed });
        }
        let max_groups = cfg.routers_per_group * cfg.global_per_router + 1;
        if cfg.groups > max_groups {
            return Err(DragonflyError::TooManyGroups {
                groups: cfg.groups,
                max: max_groups,
            });
        }
        let g = cfg.groups;
        let mut dead = HashSet::new();
        for &link in dead_links {
            let (a, b) = link;
            if a >= g || b >= g || a == b {
                return Err(DragonflyError::BadDeadLink { link });
            }
            dead.insert(ordered(a, b));
        }
        let mut geo = Self {
            cfg,
            radix,
            dead,
            detour: HashMap::new(),
        };
        // Precompute a detour for every ordered dead pair: the first
        // intermediate (scanning deterministically from the destination
        // group) with both legs alive. A packet rerouted to the
        // intermediate then takes the alive direct path, so one level
        // of detour suffices.
        let dead_pairs: Vec<(usize, usize)> = geo.dead.iter().copied().collect();
        for (a, b) in dead_pairs {
            for (src, dst) in [(a, b), (b, a)] {
                let via = (1..g)
                    .map(|k| (dst + k) % g)
                    .find(|&via| {
                        via != src
                            && via != dst
                            && geo.link_alive(src, via)
                            && geo.link_alive(via, dst)
                    })
                    .ok_or(DragonflyError::Unroutable {
                        from_group: src,
                        to_group: dst,
                    })?;
                geo.detour.insert((src, dst), via);
            }
        }
        Ok(geo)
    }

    /// The shape this geometry was built from.
    pub fn config(&self) -> &DragonflyConfig {
        &self.cfg
    }

    /// Number of dead wafer links.
    pub fn dead_link_count(&self) -> usize {
        self.dead.len()
    }

    /// Whether the direct wafer link between two groups is alive.
    pub fn link_alive(&self, a: usize, b: usize) -> bool {
        !self.dead.contains(&ordered(a, b))
    }

    /// The global channel index at `src_group` whose link reaches
    /// `dst_group` (groups must differ).
    fn channel_between(&self, src_group: usize, dst_group: usize) -> usize {
        let g = self.cfg.groups;
        debug_assert_ne!(src_group, dst_group);
        match self.cfg.map {
            GlobalLinkMap::Consecutive => (dst_group + g - src_group - 1) % g,
            GlobalLinkMap::Palmtree => (src_group + g - dst_group - 1) % g,
        }
    }

    /// The group reached by global channel `c` of `group`.
    fn peer_group(&self, group: usize, c: usize) -> usize {
        let g = self.cfg.groups;
        match self.cfg.map {
            GlobalLinkMap::Consecutive => (group + c + 1) % g,
            GlobalLinkMap::Palmtree => (group + g - 1 - c) % g,
        }
    }

    /// Local-link output port at router `r` toward same-group router
    /// `r2`.
    fn local_port(&self, r: usize, r2: usize) -> usize {
        debug_assert_ne!(r, r2);
        self.cfg.endpoints_per_router + if r2 < r { r2 } else { r2 - 1 }
    }

    /// The group a packet leaving `src_group` for `dst_group` should
    /// head to: the destination itself, or the precomputed detour when
    /// the direct wafer link is dead.
    fn exit_group(&self, src_group: usize, dst_group: usize) -> usize {
        if self.link_alive(src_group, dst_group) {
            dst_group
        } else {
            self.detour[&(src_group, dst_group)]
        }
    }

    /// The routers a packet from `src_endpoint` to `dst_endpoint`
    /// visits, in order — the golden reference the differential tests
    /// step the simulator against.
    pub fn golden_path(&self, src_endpoint: usize, dst_endpoint: usize) -> Vec<usize> {
        let p = self.cfg.endpoints_per_router;
        let mut node = src_endpoint / p;
        let mut path = vec![node];
        // Detour routing visits at most 6 routers
        // (local, global, local, global, local between 6 of them).
        for _ in 0..8 {
            let output = ShardTopology::route(self, node, dst_endpoint, 0);
            match ShardTopology::wire(self, node, output) {
                None => {
                    assert_eq!(node, dst_endpoint / p, "ejected at the wrong router");
                    return path;
                }
                Some((next, _)) => {
                    node = next;
                    path.push(node);
                }
            }
        }
        panic!("routing loop from endpoint {src_endpoint} to {dst_endpoint}: {path:?}");
    }
}

impl ShardTopology for DragonflyGeometry {
    fn nodes(&self) -> usize {
        self.cfg.groups * self.cfg.routers_per_group
    }

    fn radix(&self) -> usize {
        self.radix
    }

    fn endpoints_per_node(&self) -> usize {
        self.cfg.endpoints_per_router
    }

    fn endpoint_port(&self, local: usize) -> usize {
        debug_assert!(local < self.cfg.endpoints_per_router);
        local
    }

    fn route(&self, node: usize, dst_endpoint: usize, _lane: usize) -> OutputId {
        let a = self.cfg.routers_per_group;
        let p = self.cfg.endpoints_per_router;
        let h = self.cfg.global_per_router;
        let group = node / a;
        let r = node % a;
        let dst_node = dst_endpoint / p;
        let dst_group = dst_node / a;
        if group == dst_group {
            if node == dst_node {
                // Eject to the local endpoint.
                return OutputId::new(dst_endpoint % p);
            }
            return OutputId::new(self.local_port(r, dst_node % a));
        }
        let exit = self.exit_group(group, dst_group);
        let c = self.channel_between(group, exit);
        let owner = c / h;
        if r == owner {
            OutputId::new(p + a - 1 + c % h)
        } else {
            OutputId::new(self.local_port(r, owner))
        }
    }

    fn wire(&self, node: usize, output: OutputId) -> Option<(usize, usize)> {
        let a = self.cfg.routers_per_group;
        let p = self.cfg.endpoints_per_router;
        let h = self.cfg.global_per_router;
        let g = self.cfg.groups;
        let group = node / a;
        let r = node % a;
        let o = output.index();
        if o < p {
            return None; // endpoint ejection
        }
        if o < p + a - 1 {
            let slot = o - p;
            let r2 = slot + usize::from(slot >= r);
            // Peer's local port back toward us.
            return Some((group * a + r2, self.local_port(r2, r)));
        }
        if o < p + a - 1 + h {
            let c = r * h + (o - (p + a - 1));
            if c >= g - 1 {
                return None; // spare global port beyond the g-1 channels
            }
            let peer = self.peer_group(group, c);
            let back = g - 2 - c; // the peer's channel on the same link
            return Some((peer * a + back / h, p + a - 1 + back % h));
        }
        None // unused port of an oversized switch
    }

    fn credit_links(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "dragonfly"
    }
}

/// Samples `count` distinct wafer links to kill, purely from `seed`:
/// the sweep axis for wafer-scale fault experiments. Links are drawn
/// from all `g * (g - 1) / 2` group pairs without replacement.
///
/// # Panics
///
/// Panics if `count` exceeds the number of distinct links.
pub fn sample_dead_links(groups: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = (0..groups)
        .flat_map(|a| (a + 1..groups).map(move |b| (a, b)))
        .collect();
    assert!(
        count <= pairs.len(),
        "cannot kill {count} of {} wafer links",
        pairs.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);
    pairs.truncate(count);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(map: GlobalLinkMap) -> DragonflyGeometry {
        // a=4, p=2, h=2, g=9 = a*h+1 (fully provisioned), radix 8.
        DragonflyGeometry::new(DragonflyConfig::new(4, 2, 2, 9).map(map), 8, &[]).unwrap()
    }

    #[test]
    fn shape_errors_are_typed() {
        let cfg = DragonflyConfig::new(4, 2, 2, 9);
        assert_eq!(cfg.ports_needed(), 7);
        assert_eq!(
            DragonflyGeometry::new(cfg, 6, &[]).err(),
            Some(DragonflyError::RadixTooSmall {
                radix: 6,
                needed: 7
            })
        );
        let cfg = DragonflyConfig::new(2, 2, 1, 4);
        assert_eq!(
            DragonflyGeometry::new(cfg, 8, &[]).err(),
            Some(DragonflyError::TooManyGroups { groups: 4, max: 3 })
        );
        let cfg = DragonflyConfig::new(4, 2, 2, 9);
        assert_eq!(
            DragonflyGeometry::new(cfg, 8, &[(0, 9)]).err(),
            Some(DragonflyError::BadDeadLink { link: (0, 9) })
        );
    }

    #[test]
    fn every_wire_has_a_symmetric_reverse() {
        for map in [GlobalLinkMap::Consecutive, GlobalLinkMap::Palmtree] {
            let geo = geo(map);
            for node in 0..geo.nodes() {
                for o in 0..geo.radix() {
                    let Some((peer, input)) = geo.wire(node, OutputId::new(o)) else {
                        continue;
                    };
                    // The peer's same-index output must wire straight back.
                    let back = geo.wire(peer, OutputId::new(input));
                    assert_eq!(
                        back,
                        Some((node, o)),
                        "{map:?}: wire {node}:{o} -> {peer}:{input} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn global_links_connect_every_group_pair_once() {
        for map in [GlobalLinkMap::Consecutive, GlobalLinkMap::Palmtree] {
            let geo = geo(map);
            let a = geo.config().routers_per_group();
            let g = geo.config().groups();
            let mut pairs = HashSet::new();
            for node in 0..geo.nodes() {
                for o in 0..geo.radix() {
                    if let Some((peer, _)) = geo.wire(node, OutputId::new(o)) {
                        let (ga, gb) = (node / a, peer / a);
                        if ga != gb {
                            pairs.insert(ordered(ga, gb));
                        }
                    }
                }
            }
            assert_eq!(pairs.len(), g * (g - 1) / 2, "{map:?}");
        }
    }

    #[test]
    fn golden_paths_are_minimal_without_faults() {
        let geo = geo(GlobalLinkMap::Consecutive);
        let p = geo.config().endpoints_per_router();
        let total = geo.total_endpoints();
        for src in [0, 3, 17, total - 1] {
            for dst in [0, 5, 29, total - 2] {
                if src / p == dst / p {
                    continue;
                }
                let path = geo.golden_path(src, dst);
                assert!(
                    path.len() <= 4,
                    "minimal dragonfly path visits <= 4 routers, got {path:?}"
                );
                assert_eq!(*path.last().unwrap(), dst / p);
            }
        }
    }

    #[test]
    fn dead_link_paths_detour_and_stay_bounded() {
        let cfg = DragonflyConfig::new(4, 2, 2, 9);
        let geo = DragonflyGeometry::new(cfg, 8, &[(0, 5)]).unwrap();
        let p = geo.config().endpoints_per_router();
        let a = geo.config().routers_per_group();
        // Endpoint in group 0 to endpoint in group 5: must detour.
        let src = 0;
        let dst = 5 * a * p;
        let path = geo.golden_path(src, dst);
        let groups: Vec<usize> = path.iter().map(|n| n / a).collect();
        assert!(groups.contains(&geo.detour[&(0, 5)]), "path {groups:?}");
        assert!(path.len() <= 6, "detour path too long: {path:?}");
        assert_eq!(*path.last().unwrap(), dst / p);
    }

    #[test]
    fn unroutable_dead_links_are_rejected() {
        // g=3: kill both links of group 0 — nothing can reach it.
        let cfg = DragonflyConfig::new(2, 2, 1, 3);
        assert!(matches!(
            DragonflyGeometry::new(cfg, 5, &[(0, 1), (0, 2)]),
            Err(DragonflyError::Unroutable { .. })
        ));
    }

    #[test]
    fn sampled_dead_links_are_distinct_and_seeded() {
        let links = sample_dead_links(9, 10, 42);
        assert_eq!(links.len(), 10);
        let set: HashSet<_> = links.iter().collect();
        assert_eq!(set.len(), 10);
        assert_eq!(links, sample_dead_links(9, 10, 42));
        assert_ne!(links, sample_dead_links(9, 10, 43));
    }
}
