//! The shared per-node engine of the network-level simulators.
//!
//! [`MeshSim`](crate::mesh_sim::MeshSim) and the sharded engine in
//! [`crate::shard`] step the same three-phase cycle (transfers,
//! injection, arbitration) over the same per-node state; this module
//! holds that state and the two heavy phases, so both simulators run
//! byte-identical semantics through one implementation.
//!
//! Two structural choices make the hot loop cheap:
//!
//! * **SoA packet arenas** ([`crate::arena`]) — per-packet routing
//!   metadata (the hop counter) lives in one slab indexed by a
//!   [`PacketHandle`](hirise_core::PacketHandle) stored inside each
//!   [`Packet`], replacing the old per-node `HashMap<u64, MeshPacket>`
//!   (a SipHash probe per buffered packet per cycle) and its insert /
//!   remove churn. Transfer slots are flat `Vec`s (flit countdown +
//!   output port) with a validity bitmask, replacing
//!   `Vec<Option<Transfer>>`.
//! * **Active sets** — the engine maintains a `work` set (nodes holding
//!   any packet in a source queue or VC) and a `moving` set (nodes with
//!   a transfer slot occupied). The transfer phase walks only `moving`,
//!   the arbitration phase only `work`, and per-node port scans walk
//!   occupancy mask words, so an idle router costs *zero* work per
//!   cycle instead of a radix-wide scan plus an empty arbitration.
//!
//! Skipping an idle router is only sound because an idle arbitration
//! cycle is unobservable for it: `arbitrate` with no requests and no
//! held connections mutates nothing but the fault-state cycle counter —
//! *unless* the fabric has flaky faults, which draw from their PRNG
//! every cycle. [`Fabric::ticks_when_idle`] reports exactly that, and
//! such nodes are *pinned*: permanently in the `work` set, arbitrated
//! every cycle, so their fault streams replay exactly as in a dense
//! sweep. The [`NetSchedule::Dense`] schedule disables skipping
//! entirely (every node, every phase, unconditional arbitration — the
//! old engine's cost model) and is pinned byte-identical to
//! [`NetSchedule::ActiveSet`] by the twin tests in
//! `tests/net_schedule.rs`.
//!
//! Membership is *state-based*, not event-based: a node is in `work`
//! iff it holds a packet (or is pinned), so a credit-blocked packet
//! keeps its node scheduled and there is no missed-wakeup hazard.

use crate::arena::PacketArena;
use crate::invariant::{InvariantChecker, InvariantViolation};
use crate::mesh_sim::MeshReport;
use crate::packet::Packet;
use crate::port::InputPort;
use crate::shard::ShardTopology;
use hirise_core::{BitSet, Fabric, Grant, InputId, OutputId, Request};

/// How the network simulators schedule per-node work each cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NetSchedule {
    /// Visit every node in every phase and arbitrate unconditionally,
    /// like the pre-active-set engine. Kept as the control arm for the
    /// `cyclebench --net-smoke` gate and the twin-identity tests.
    Dense,
    /// Walk only the active sets; idle routers cost nothing. The
    /// default — telemetry is byte-identical to [`Dense`](Self::Dense)
    /// by construction.
    #[default]
    ActiveSet,
}

/// Per-node simulation state shared by the mesh and sharded engines:
/// flattened input ports, the packet arena, SoA transfer slots, the
/// active sets, and persistent per-cycle scratch.
///
/// Node indices here are *local* (0-based within the owning simulator
/// or shard); phase functions take `node_lo` to translate to global
/// topology indices.
#[derive(Debug)]
pub(crate) struct NodeEngine {
    pub(crate) nodes: usize,
    pub(crate) radix: usize,
    /// Words per node in the port-indexed bitmasks.
    pub(crate) stride: usize,
    /// `ports[node * radix + input]`.
    pub(crate) ports: Vec<InputPort>,
    pub(crate) arena: PacketArena,
    /// Flit countdown per transfer slot; valid iff the `xfer_mask` bit
    /// is set. `> 0`: in flight; `== 0`: completed, awaiting the
    /// release beat.
    xfer_flits: Vec<u32>,
    /// Output port of each valid transfer slot.
    xfer_output: Vec<u32>,
    /// Bit per (node, input): transfer slot occupied.
    xfer_mask: Vec<u64>,
    /// Bit per (node, input): port holds at least one packet.
    occ_mask: Vec<u64>,
    /// Packets admitted to each node and not yet launched downstream.
    resident: Vec<u32>,
    /// Nodes with `resident > 0`, plus every pinned node.
    work: BitSet,
    /// Nodes with any transfer slot occupied.
    moving: BitSet,
    /// Nodes whose fabric must arbitrate every cycle
    /// ([`Fabric::ticks_when_idle`]): flaky-fault switches.
    pinned: BitSet,
    schedule: NetSchedule,
    /// Records (rather than aborts on) metadata-integrity violations.
    checker: InvariantChecker,
    /// Sum over cycles of the `work` set size — the active-router
    /// occupancy numerator reported by the `wafer_scale` example.
    active_node_cycles: u64,
    /// Snapshot buffer for iterating an active set while mutating it.
    worklist: Vec<u32>,
    /// Per-node scratch: `(input, output)` of surviving candidates.
    candidates: Vec<(u32, u32)>,
    requests: Vec<Request>,
    grants: Vec<Grant>,
    /// Grant bit per input, `stride` words, cleared per node.
    granted: Vec<u64>,
    /// Ports whose occupancy changed since the list was last drained;
    /// only maintained when `track_touched` (shards with boundary
    /// ports, which publish occupancy snapshots from it).
    pub(crate) touched: Vec<u32>,
    track_touched: bool,
}

impl NodeEngine {
    /// Builds the engine for `switches` (one node each), reading each
    /// fabric's radix and idle-tick requirement. `track_touched`
    /// enables the dirty-port list for boundary-occupancy publishing.
    pub(crate) fn new<F: Fabric>(
        switches: &[F],
        vcs: usize,
        schedule: NetSchedule,
        track_touched: bool,
    ) -> Self {
        let nodes = switches.len();
        let radix = switches[0].radix();
        let stride = radix.div_ceil(64);
        let mut work = BitSet::new(nodes);
        let mut pinned = BitSet::new(nodes);
        for (node, switch) in switches.iter().enumerate() {
            if switch.ticks_when_idle() {
                pinned.insert(node);
                work.insert(node);
            }
        }
        Self {
            nodes,
            radix,
            stride,
            ports: (0..nodes * radix).map(|_| InputPort::new(vcs)).collect(),
            arena: PacketArena::with_capacity(nodes * radix),
            xfer_flits: vec![0; nodes * radix],
            xfer_output: vec![0; nodes * radix],
            xfer_mask: vec![0; nodes * stride],
            occ_mask: vec![0; nodes * stride],
            resident: vec![0; nodes],
            work,
            moving: BitSet::new(nodes),
            pinned,
            schedule,
            checker: InvariantChecker::recording(),
            active_node_cycles: 0,
            worklist: Vec::with_capacity(nodes),
            candidates: Vec::with_capacity(radix),
            requests: Vec::with_capacity(radix),
            grants: Vec::with_capacity(radix),
            granted: vec![0; stride],
            touched: Vec::new(),
            track_touched,
        }
    }

    /// The port at `(local node, input)`.
    #[cfg(test)]
    pub(crate) fn port(&self, local: usize, input: usize) -> &InputPort {
        &self.ports[local * self.radix + input]
    }

    /// Admits a packet that already owns a live arena slot into a
    /// node's input port (local forwarding).
    pub(crate) fn admit(&mut self, local: usize, input: usize, packet: Packet) {
        let idx = local * self.radix + input;
        self.ports[idx].inject(packet);
        self.resident[local] += 1;
        self.work.insert(local);
        self.occ_mask[local * self.stride + input / 64] |= 1u64 << (input % 64);
        if self.track_touched {
            self.touched.push(idx as u32);
        }
    }

    /// Allocates an arena slot holding `hops` for `packet` and admits
    /// it (fresh injections and cross-shard arrivals, whose sender
    /// freed its own slot).
    pub(crate) fn admit_new(&mut self, local: usize, input: usize, mut packet: Packet, hops: u32) {
        packet.handle = self.arena.alloc(hops);
        self.admit(local, input, packet);
    }

    /// Sum over cycles of the number of nodes the arbitration phase
    /// actually visited — the work set under the active-set schedule,
    /// every node under the dense one. Divide by `cycles * nodes` for
    /// the mean active-router occupancy.
    pub(crate) fn active_node_cycles(&self) -> u64 {
        self.active_node_cycles
    }

    /// Metadata-integrity violations recorded so far.
    pub(crate) fn violations(&self) -> &[InvariantViolation] {
        self.checker.violations()
    }

    /// Total violations observed (including beyond the record cap).
    pub(crate) fn violation_count(&self) -> u64 {
        self.checker.violation_count()
    }

    /// A buffered packet's arena slot is missing: the invariant the old
    /// engine enforced with
    /// `.expect("metadata present for buffered packet")`. Recorded, and
    /// the packet is dropped, instead of aborting the process.
    fn missing_meta(&mut self, now: u64, id: u64, node: usize) {
        self.checker.report_violation(
            Some(now),
            format!(
                "invariant violated: no arena metadata for buffered packet {id} at node {node}; \
                 packet dropped"
            ),
        );
    }
}

/// Transfer phase: advance every occupied transfer slot of the active
/// (`moving`) nodes one flit. A slot reaching zero completes — the
/// packet ejects (delivery telemetry into `report`), forwards into a
/// local node's port, or is handed to `remote` with its final hop count
/// (cross-shard, the sender's arena slot freed). A slot already at zero
/// is the release beat: free the fabric connection and the slot.
///
/// `node_lo` is the global index of local node 0; `remote` receives
/// `(global node, input, packet, hops)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn phase_transfers<F: Fabric, T: ShardTopology + ?Sized>(
    eng: &mut NodeEngine,
    switches: &mut [F],
    topo: &T,
    node_lo: usize,
    report: &mut MeshReport,
    in_window: bool,
    now: u64,
    mut remote: impl FnMut(usize, usize, Packet, u32),
) {
    let stride = eng.stride;
    let radix = eng.radix;
    let mut list = std::mem::take(&mut eng.worklist);
    list.clear();
    match eng.schedule {
        NetSchedule::Dense => list.extend(0..eng.nodes as u32),
        NetSchedule::ActiveSet => list.extend(eng.moving.iter().map(|n| n as u32)),
    }
    for &nl in &list {
        let local = nl as usize;
        let node = node_lo + local;
        let mask_base = local * stride;
        for w in 0..stride {
            // Word copy: bits cleared below don't affect this scan, and
            // nothing sets transfer bits during the phase.
            let mut word = eng.xfer_mask[mask_base + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let input = w * 64 + bit;
                let idx = local * radix + input;
                if eng.xfer_flits[idx] > 0 {
                    eng.xfer_flits[idx] -= 1;
                    if eng.xfer_flits[idx] != 0 {
                        continue;
                    }
                    // Tail flit left: the packet moves on. The slot
                    // stays occupied until next cycle's release beat.
                    let output = OutputId::new(eng.xfer_output[idx] as usize);
                    let packet = eng.ports[idx].complete_transfer();
                    if eng.ports[idx].is_idle() {
                        eng.occ_mask[mask_base + w] &= !(1u64 << bit);
                    }
                    if eng.track_touched {
                        eng.touched.push(idx as u32);
                    }
                    match topo.wire(node, output) {
                        None => match eng.arena.take(packet.handle) {
                            Some(prior) => {
                                if in_window {
                                    report.delivered_in_window += 1;
                                }
                                if packet.measured {
                                    report.completed_measured += 1;
                                    let latency = packet.latency(now);
                                    report.latency_sum += latency;
                                    report.histogram.record(latency);
                                    report.hop_sum += u64::from(prior + 1);
                                }
                            }
                            None => eng.missing_meta(now, packet.id, node),
                        },
                        Some((next_node, next_input)) => {
                            if (node_lo..node_lo + eng.nodes).contains(&next_node) {
                                match eng.arena.bump(packet.handle) {
                                    Some(_) => eng.admit(next_node - node_lo, next_input, packet),
                                    None => eng.missing_meta(now, packet.id, node),
                                }
                            } else {
                                match eng.arena.take(packet.handle) {
                                    Some(prior) => remote(next_node, next_input, packet, prior + 1),
                                    None => eng.missing_meta(now, packet.id, node),
                                }
                            }
                        }
                    }
                } else {
                    // Release beat, one cycle after the tail flit.
                    switches[local].release(InputId::new(input));
                    eng.xfer_mask[mask_base + w] &= !(1u64 << bit);
                    if eng.xfer_mask[mask_base..mask_base + stride]
                        .iter()
                        .all(|&x| x == 0)
                    {
                        eng.moving.remove(local);
                    }
                }
            }
        }
    }
    eng.worklist = list;
}

/// Arbitration phase: for every active (`work`) node, fill VCs and
/// select a candidate on each occupied port, route and credit-check it,
/// arbitrate the surviving requests, and launch the winners' transfers.
///
/// `remote_occupancy` answers credit checks for downstream ports
/// outside `[node_lo, node_lo + nodes)` (the shard frontier snapshots);
/// unsharded callers can make it unreachable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn phase_arbitrate<F: Fabric, T: ShardTopology + ?Sized>(
    eng: &mut NodeEngine,
    switches: &mut [F],
    topo: &T,
    node_lo: usize,
    link_buffer_packets: usize,
    packet_len_flits: usize,
    mut remote_occupancy: impl FnMut(usize, usize) -> usize,
) {
    let stride = eng.stride;
    let radix = eng.radix;
    let credit = topo.credit_links();
    let mut list = std::mem::take(&mut eng.worklist);
    list.clear();
    match eng.schedule {
        NetSchedule::Dense => list.extend(0..eng.nodes as u32),
        NetSchedule::ActiveSet => list.extend(eng.work.iter().map(|n| n as u32)),
    }
    eng.active_node_cycles += list.len() as u64;
    for &nl in &list {
        let local = nl as usize;
        let node = node_lo + local;
        let mask_base = local * stride;
        eng.candidates.clear();
        eng.requests.clear();
        for w in 0..stride {
            // Word copy: candidate selection never changes occupancy.
            let mut word = eng.occ_mask[mask_base + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let input = w * 64 + bit;
                let idx = local * radix + input;
                eng.ports[idx].fill_vcs();
                if eng.xfer_mask[mask_base + w] & (1u64 << bit) != 0 {
                    continue; // transfer slot busy (in flight or pre-release)
                }
                let Some((id, dst)) = eng.ports[idx].select_candidate_meta() else {
                    continue;
                };
                let output = topo.route(node, dst.index(), id as usize);
                if credit {
                    // The downstream port must have a free slot before
                    // this hop may start (the in-flight hop itself is
                    // the one slot we reserve).
                    if let Some((next_node, next_input)) = topo.wire(node, output) {
                        let occupancy = if (node_lo..node_lo + eng.nodes).contains(&next_node) {
                            eng.ports[(next_node - node_lo) * radix + next_input].occupancy()
                        } else {
                            remote_occupancy(next_node, next_input)
                        };
                        if occupancy >= link_buffer_packets {
                            eng.ports[idx].revoke_candidate();
                            continue;
                        }
                    }
                }
                eng.candidates.push((input as u32, output.index() as u32));
                eng.requests.push(Request::new(InputId::new(input), output));
            }
        }
        // An idle arbitration is unobservable unless the fabric ticks
        // its fault PRNG when idle — those nodes are pinned and always
        // arbitrated, so skipping here never desynchronises a stream.
        if eng.requests.is_empty()
            && eng.schedule == NetSchedule::ActiveSet
            && !eng.pinned.contains(local)
        {
            continue;
        }
        switches[local].arbitrate_into(&eng.requests, &mut eng.grants);
        for word in &mut eng.granted {
            *word = 0;
        }
        for grant in &eng.grants {
            eng.granted[grant.input.index() / 64] |= 1u64 << (grant.input.index() % 64);
        }
        for c in 0..eng.candidates.len() {
            let (input, output) = eng.candidates[c];
            let input = input as usize;
            let idx = local * radix + input;
            if eng.granted[input / 64] & (1u64 << (input % 64)) != 0 {
                eng.ports[idx].confirm_grant();
                eng.xfer_flits[idx] = packet_len_flits as u32;
                eng.xfer_output[idx] = output;
                eng.xfer_mask[mask_base + input / 64] |= 1u64 << (input % 64);
                eng.moving.insert(local);
                // The launched packet no longer holds this node active.
                eng.resident[local] -= 1;
                if eng.resident[local] == 0 && !eng.pinned.contains(local) {
                    eng.work.remove(local);
                }
            } else {
                eng.ports[idx].revoke_candidate();
            }
        }
    }
    eng.worklist = list;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh_sim::{MeshGeometry, MeshPortMap};
    use hirise_core::{PacketHandle, Switch2d};

    fn tiny() -> (NodeEngine, Vec<Switch2d>, MeshGeometry) {
        let geo = MeshGeometry::new(2, 1, 1, 8, MeshPortMap::Contiguous);
        let switches: Vec<Switch2d> = (0..2).map(|_| Switch2d::new(8)).collect();
        let eng = NodeEngine::new(&switches, 4, NetSchedule::ActiveSet, false);
        (eng, switches, geo)
    }

    fn packet(id: u64, src: usize, dst_endpoint: usize) -> Packet {
        Packet {
            id,
            src: InputId::new(src),
            dst: OutputId::new(dst_endpoint),
            len_flits: 2,
            birth_cycle: 0,
            measured: true,
            handle: PacketHandle::NONE,
        }
    }

    #[test]
    fn idle_engine_has_empty_active_sets() {
        let (eng, _, _) = tiny();
        assert!(eng.work.is_empty());
        assert!(eng.moving.is_empty());
        assert_eq!(eng.violation_count(), 0);
    }

    #[test]
    fn admitted_packet_activates_launches_and_delivers() {
        let (mut eng, mut switches, geo) = tiny();
        // Local traffic on node 0: endpoint port -> endpoint port.
        let input = geo.core_port(0);
        eng.admit_new(0, input, packet(1, input, 0), 0);
        assert!(eng.work.contains(0));
        let mut report = MeshReport::empty(100, geo.total_cores());
        for now in 0..8 {
            phase_transfers(
                &mut eng,
                &mut switches,
                &geo,
                0,
                &mut report,
                true,
                now,
                |_, _, _, _| unreachable!("no shard boundary here"),
            );
            phase_arbitrate(&mut eng, &mut switches, &geo, 0, 4, 2, |_, _| {
                unreachable!("no remote ports")
            });
        }
        assert_eq!(report.completed_measured, 1);
        assert_eq!(report.hop_sum, 1, "same-node traffic ejects in one hop");
        // Everything quiesced: sets empty, arena slot recycled.
        assert!(eng.work.is_empty());
        assert!(eng.moving.is_empty());
        assert_eq!(eng.violation_count(), 0);
        assert!(eng.active_node_cycles() > 0);
    }

    #[test]
    fn missing_arena_metadata_is_recorded_not_fatal() {
        let (mut eng, mut switches, geo) = tiny();
        let input = geo.core_port(0);
        // Bypass `admit_new`: the packet claims a handle the arena
        // never allocated — the condition the old engine met with
        // `.expect("metadata present for buffered packet")`.
        let mut p = packet(1, input, 0);
        p.handle = PacketHandle::new(17);
        eng.admit(0, input, p);
        let mut report = MeshReport::empty(100, geo.total_cores());
        for now in 0..8 {
            phase_transfers(
                &mut eng,
                &mut switches,
                &geo,
                0,
                &mut report,
                true,
                now,
                |_, _, _, _| unreachable!(),
            );
            phase_arbitrate(
                &mut eng,
                &mut switches,
                &geo,
                0,
                4,
                2,
                |_, _| unreachable!(),
            );
        }
        assert_eq!(eng.violation_count(), 1, "violation recorded");
        assert!(eng.violations()[0].message.contains("no arena metadata"));
        assert_eq!(
            report.completed_measured, 0,
            "the corrupt packet is dropped, not counted"
        );
    }

    #[test]
    fn pinned_nodes_stay_in_the_work_set() {
        let mut switches: Vec<Switch2d> = (0..2).map(|_| Switch2d::new(8)).collect();
        switches[1]
            .inject_fault(hirise_core::Fault::flaky(
                hirise_core::FaultSite::Port { input: 0 },
                0.5,
            ))
            .expect("valid fault");
        let eng = NodeEngine::new(&switches, 4, NetSchedule::ActiveSet, false);
        assert!(!eng.work.contains(0), "fault-free node starts idle");
        assert!(eng.work.contains(1), "flaky node is pinned active");
        assert!(eng.pinned.contains(1));
    }
}
