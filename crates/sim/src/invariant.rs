//! Runtime invariant checking for the simulator's cycle loop.
//!
//! [`InvariantChecker`] audits every cycle of a [`crate::NetworkSim`]
//! run against three families of invariants that must hold for *any*
//! correct fabric and port model:
//!
//! * **Flit conservation** — every flit ever injected is either still
//!   held by an input port (source queue or VC buffer) or has been
//!   delivered: `injected = in-flight + delivered`, checked in both
//!   packets and flits at the end of every cycle.
//! * **Buffer bounds** — a port never buffers more packets than it has
//!   virtual channels, and a mid-transfer port always holds the packet
//!   it is transferring.
//! * **Per-flow order** — within one `(input, VC)` stream (and hence
//!   within any `(input, output, VC)` flow), packets are delivered in
//!   strictly increasing injection-id order: the switch cannot reorder
//!   a FIFO lane.
//!
//! It also re-checks every arbitration result for grant legality: a
//! grant must answer a request presented that cycle, no output or input
//! may be granted twice, and no grant may land on an output that was
//! already mid-transfer.
//!
//! The checker is wired into [`crate::NetworkSim`] and enabled by
//! default in debug builds (`debug_assertions`); release builds skip it
//! unless [`crate::SimConfig::check_invariants`] turns it on.
//!
//! The checker runs in one of two modes. In the default *panic* mode
//! ([`InvariantChecker::new`]) a violation aborts with the offending
//! cycle and state — a violation is a bug in the switch model or the
//! simulator itself. In *recording* mode
//! ([`InvariantChecker::recording`], selected by
//! [`crate::SimConfig::record_invariants`]) violations are collected as
//! [`InvariantViolation`] records instead, so a long experiment
//! campaign can finish and report *which configuration* tripped an
//! invariant rather than dying mid-run (the `hirise-lab` runner
//! surfaces them in its per-job result records).

use crate::packet::Packet;
use crate::port::InputPort;
use hirise_core::{Grant, Request};
use std::collections::HashMap;

/// One recorded invariant violation (recording mode only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Simulation cycle of the violation, when known at the check site.
    pub cycle: Option<u64>,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

/// How the checker reacts to a violation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Mode {
    /// Panic at the violation site (the default; a violation is a bug).
    #[default]
    Panic,
    /// Record the violation and keep simulating.
    Record,
}

/// Cap on stored violation records; beyond it only the count grows (one
/// broken invariant usually re-fires every subsequent cycle).
const MAX_RECORDED: usize = 16;

/// Audits a simulation cycle-by-cycle for conservation, buffer-bound,
/// ordering, and grant-legality invariants.
#[derive(Clone, Debug, Default)]
pub struct InvariantChecker {
    injected_packets: u64,
    delivered_packets: u64,
    injected_flits: u64,
    delivered_flits: u64,
    /// Last delivered packet id per `(input, vc)` FIFO lane.
    last_delivered: HashMap<(usize, usize), u64>,
    cycles_checked: u64,
    mode: Mode,
    violations: Vec<InvariantViolation>,
    violation_count: u64,
}

impl InvariantChecker {
    /// Creates a fresh checker that panics on the first violation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a checker that records violations instead of panicking,
    /// for campaign runs that must survive a misbehaving configuration.
    pub fn recording() -> Self {
        Self {
            mode: Mode::Record,
            ..Self::default()
        }
    }

    /// Whether this checker records violations rather than panicking.
    pub fn is_recording(&self) -> bool {
        self.mode == Mode::Record
    }

    /// Violations recorded so far (empty in panic mode, which never
    /// survives one). At most the first 16 are kept;
    /// [`violation_count`](Self::violation_count) keeps the true total.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Total violations observed, including those beyond the record cap.
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// Packets injected so far.
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Packets delivered so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Cycles audited so far.
    pub fn cycles_checked(&self) -> u64 {
        self.cycles_checked
    }

    /// Reports a violation detected by the caller's own bookkeeping —
    /// e.g. a buffered packet whose arena metadata slot is missing in
    /// the network simulators. Panics in panic mode, records otherwise,
    /// exactly like the checker's built-in audits.
    pub fn report_violation(&mut self, cycle: Option<u64>, message: String) {
        self.fail(cycle, message);
    }

    /// Fails one invariant: panics in panic mode, records otherwise.
    fn fail(&mut self, cycle: Option<u64>, message: String) {
        match self.mode {
            Mode::Panic => panic!("{message}"),
            Mode::Record => {
                self.violation_count += 1;
                if self.violations.len() < MAX_RECORDED {
                    self.violations.push(InvariantViolation { cycle, message });
                }
            }
        }
    }

    fn check(&mut self, ok: bool, cycle: Option<u64>, message: impl FnOnce() -> String) {
        if !ok {
            self.fail(cycle, message());
        }
    }

    /// Records an injection.
    pub fn on_injection(&mut self, packet: &Packet) {
        self.injected_packets += 1;
        self.injected_flits += packet.len_flits as u64;
    }

    /// Records a delivery from `input`'s virtual channel `vc`, checking
    /// that the `(input, vc)` lane stays in FIFO order.
    ///
    /// # Panics
    ///
    /// In panic mode, panics if the lane delivered a packet with a
    /// non-increasing id — i.e. the switch reordered a FIFO stream.
    pub fn on_delivery(&mut self, input: usize, vc: usize, packet: &Packet) {
        self.delivered_packets += 1;
        self.delivered_flits += packet.len_flits as u64;
        if let Some(&last) = self.last_delivered.get(&(input, vc)) {
            self.check(packet.id > last, None, || {
                format!(
                    "invariant violated: input {input} VC {vc} delivered packet \
                     {} after packet {last} (FIFO lane reordered)",
                    packet.id
                )
            });
        }
        self.last_delivered.insert((input, vc), packet.id);
    }

    /// Checks one arbitration round for grant legality.
    ///
    /// # Panics
    ///
    /// In panic mode, panics if a grant answers no presented request, an
    /// output or input is granted twice, or a grant lands on an output
    /// that `busy_out_before` marks as mid-transfer.
    pub fn after_arbitration(
        &mut self,
        cycle: u64,
        requests: &[Request],
        grants: &[Grant],
        busy_out_before: &[bool],
    ) {
        let radix = busy_out_before.len();
        let mut out_granted = vec![false; radix];
        let mut in_granted = vec![false; radix];
        for grant in grants {
            let input = grant.input.index();
            let output = grant.output.index();
            self.check(
                requests
                    .iter()
                    .any(|r| r.input == grant.input && r.output == grant.output),
                Some(cycle),
                || {
                    format!(
                        "invariant violated at cycle {cycle}: grant {input}->{output} \
                         answers no presented request"
                    )
                },
            );
            self.check(!out_granted[output], Some(cycle), || {
                format!("invariant violated at cycle {cycle}: output {output} granted twice")
            });
            self.check(!in_granted[input], Some(cycle), || {
                format!("invariant violated at cycle {cycle}: input {input} granted twice")
            });
            self.check(!busy_out_before[output], Some(cycle), || {
                format!("invariant violated at cycle {cycle}: grant to busy output {output}")
            });
            out_granted[output] = true;
            in_granted[input] = true;
        }
    }

    /// End-of-cycle audit: flit conservation and buffer bounds across
    /// all ports.
    ///
    /// # Panics
    ///
    /// In panic mode, panics if packets or flits have leaked or been
    /// duplicated (`injected != in-flight + delivered`), if a port
    /// buffers more packets than it has VCs, or if a mid-transfer port
    /// holds no packet.
    pub fn end_of_cycle(&mut self, cycle: u64, ports: &[InputPort], vcs: usize) {
        self.cycles_checked += 1;
        let mut in_flight_packets = 0u64;
        for (input, port) in ports.iter().enumerate() {
            let buffered = port.buffered();
            self.check(buffered <= vcs, Some(cycle), || {
                format!(
                    "invariant violated at cycle {cycle}: input {input} buffers \
                     {buffered} packets in {vcs} VCs"
                )
            });
            if port.is_transferring() {
                self.check(buffered >= 1, Some(cycle), || {
                    format!(
                        "invariant violated at cycle {cycle}: input {input} is \
                         mid-transfer with empty VCs"
                    )
                });
                if let Some(vc) = port.active_vc() {
                    self.check(vc < vcs, Some(cycle), || {
                        format!(
                            "invariant violated at cycle {cycle}: input {input} active \
                             VC {vc} out of range"
                        )
                    });
                } else {
                    self.fail(
                        Some(cycle),
                        format!(
                            "invariant violated at cycle {cycle}: input {input} is \
                             transferring with no active VC"
                        ),
                    );
                }
            }
            in_flight_packets += port.occupancy() as u64;
        }
        let (injected_packets, delivered_packets) = (self.injected_packets, self.delivered_packets);
        let (injected_flits, delivered_flits) = (self.injected_flits, self.delivered_flits);
        self.check(
            injected_packets == delivered_packets + in_flight_packets,
            Some(cycle),
            || {
                format!(
                    "invariant violated at cycle {cycle}: packet conservation broken \
                     ({injected_packets} injected != {delivered_packets} delivered + \
                     {in_flight_packets} in flight)"
                )
            },
        );
        // Flit conservation follows for completed packets; check the
        // delivered side directly (a torn packet would break it).
        self.check(delivered_flits >= delivered_packets, Some(cycle), || {
            format!(
                "invariant violated at cycle {cycle}: delivered flit count \
                 {delivered_flits} below packet count {delivered_packets}"
            )
        });
        self.check(injected_flits >= delivered_flits, Some(cycle), || {
            format!(
                "invariant violated at cycle {cycle}: delivered {delivered_flits} flits but \
                 only {injected_flits} were injected"
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_core::{InputId, OutputId};

    fn packet(id: u64, len: usize) -> Packet {
        Packet {
            id,
            src: InputId::new(0),
            dst: OutputId::new(1),
            len_flits: len,
            birth_cycle: 0,
            measured: false,
            handle: hirise_core::PacketHandle::NONE,
        }
    }

    #[test]
    fn counts_injections_and_deliveries() {
        let mut ck = InvariantChecker::new();
        ck.on_injection(&packet(0, 4));
        ck.on_injection(&packet(1, 4));
        ck.on_delivery(0, 0, &packet(0, 4));
        assert_eq!(ck.injected_packets(), 2);
        assert_eq!(ck.delivered_packets(), 1);
    }

    #[test]
    #[should_panic(expected = "FIFO lane reordered")]
    fn reordered_lane_panics() {
        let mut ck = InvariantChecker::new();
        ck.on_delivery(3, 1, &packet(7, 4));
        ck.on_delivery(3, 1, &packet(5, 4));
    }

    #[test]
    fn different_lanes_may_interleave() {
        let mut ck = InvariantChecker::new();
        ck.on_delivery(3, 0, &packet(7, 4));
        ck.on_delivery(3, 1, &packet(5, 4)); // other VC: fine
        ck.on_delivery(2, 0, &packet(1, 4)); // other input: fine
    }

    #[test]
    #[should_panic(expected = "granted twice")]
    fn double_granted_output_panics() {
        let mut ck = InvariantChecker::new();
        let requests = vec![
            Request::new(InputId::new(0), OutputId::new(2)),
            Request::new(InputId::new(1), OutputId::new(2)),
        ];
        let grants = vec![
            Grant {
                input: InputId::new(0),
                output: OutputId::new(2),
            },
            Grant {
                input: InputId::new(1),
                output: OutputId::new(2),
            },
        ];
        ck.after_arbitration(0, &requests, &grants, &[false; 4]);
    }

    #[test]
    #[should_panic(expected = "busy output")]
    fn grant_to_busy_output_panics() {
        let mut ck = InvariantChecker::new();
        let requests = vec![Request::new(InputId::new(0), OutputId::new(1))];
        let grants = vec![Grant {
            input: InputId::new(0),
            output: OutputId::new(1),
        }];
        let mut busy = vec![false; 4];
        busy[1] = true;
        ck.after_arbitration(0, &requests, &grants, &busy);
    }

    #[test]
    #[should_panic(expected = "answers no presented request")]
    fn unsolicited_grant_panics() {
        let mut ck = InvariantChecker::new();
        let grants = vec![Grant {
            input: InputId::new(0),
            output: OutputId::new(1),
        }];
        ck.after_arbitration(0, &[], &grants, &[false; 4]);
    }

    #[test]
    #[should_panic(expected = "packet conservation broken")]
    fn leaked_packet_panics() {
        let mut ck = InvariantChecker::new();
        ck.on_injection(&packet(0, 4));
        // Packet neither delivered nor in any port: conservation broken.
        let ports = vec![InputPort::new(4)];
        ck.end_of_cycle(0, &ports, 4);
    }

    #[test]
    fn conserved_state_passes() {
        let mut ck = InvariantChecker::new();
        let mut port = InputPort::new(4);
        let p = packet(0, 4);
        ck.on_injection(&p);
        port.inject(p);
        let ports = vec![port];
        ck.end_of_cycle(0, &ports, 4);
        assert_eq!(ck.cycles_checked(), 1);
    }

    #[test]
    fn recording_mode_survives_and_records() {
        let mut ck = InvariantChecker::recording();
        assert!(ck.is_recording());
        ck.on_delivery(3, 1, &packet(7, 4));
        ck.on_delivery(3, 1, &packet(5, 4)); // reordered: would panic
        assert_eq!(ck.violation_count(), 1);
        assert_eq!(ck.violations().len(), 1);
        assert!(ck.violations()[0].message.contains("FIFO lane reordered"));
        assert_eq!(ck.violations()[0].cycle, None);
    }

    #[test]
    fn recording_mode_caps_stored_records_not_the_count() {
        let mut ck = InvariantChecker::recording();
        ck.on_injection(&packet(0, 4));
        let ports = vec![InputPort::new(4)];
        for cycle in 0..40 {
            ck.end_of_cycle(cycle, &ports, 4); // conservation broken every cycle
        }
        assert_eq!(ck.violation_count(), 40);
        assert_eq!(ck.violations().len(), 16);
        assert_eq!(ck.violations()[3].cycle, Some(3));
    }
}
