//! Cycle-accurate network simulator for single-switch fabrics.
//!
//! Reproduces the methodology of §V of the Hi-Rise paper: a cycle
//! accurate simulator drives a behavioural switch model
//! ([`hirise_core::Fabric`]) with synthetic traffic. Each port has 4
//! virtual channels of 4-flit depth, flits are 128 bits, and packets are
//! 4 flits, matching the paper's setup.
//!
//! The simulator works in *switch cycles*; converting latency to
//! nanoseconds and throughput to Tbps requires the design's clock
//! frequency, which the `hirise-phys` crate provides.
//!
//! Beyond the paper's single-switch methodology this crate also offers
//! closed-loop (windowed) injection ([`SimConfig::window`]), streaming
//! log-bucketed latency percentiles
//! ([`SimReport::latency_percentile_cycles`], backed by the mergeable
//! [`LatencyHistogram`]), and a flit-level simulator for 2D meshes of
//! Hi-Rise switches with XY routing and credit-based back-pressure
//! ([`mesh_sim`], realising the paper's Fig. 13 topology; [`mesh`]
//! holds the matching graph-level analysis). Load sweeps and the
//! saturation search live in the `hirise-lab` experiment-campaign crate,
//! which drives this simulator in parallel across configurations;
//! replicate sweeps run as interleaved lanes of one [`LaneBatch`], each
//! lane byte-identical to a solo run at the same seed.
//!
//! Correctness is audited two ways: [`diff`] co-simulates every fabric
//! against an ideal golden-model crossbar ([`RefSwitch`]) under
//! identical schedules and shrinks any divergence to a minimal
//! counterexample, while [`InvariantChecker`] (on by default in debug
//! builds) asserts flit conservation, buffer bounds, FIFO-lane order
//! and grant legality on every simulated cycle.
//!
//! # Example
//!
//! ```
//! use hirise_core::{HiRiseConfig, HiRiseSwitch};
//! use hirise_sim::{NetworkSim, SimConfig, traffic::UniformRandom};
//!
//! # fn main() -> Result<(), hirise_core::ConfigError> {
//! let cfg = HiRiseConfig::paper_optimal();
//! let sim_cfg = SimConfig::new(64)
//!     .injection_rate(0.2)
//!     .warmup(500)
//!     .measure(2_000);
//! let mut sim = NetworkSim::new(
//!     HiRiseSwitch::new(&cfg),
//!     UniformRandom::new(64),
//!     sim_cfg,
//! );
//! let report = sim.run();
//! assert!(report.avg_latency_cycles() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod diff;
pub mod dragonfly;
mod engine;
mod invariant;
pub mod mesh;
pub mod mesh_sim;
mod packet;
mod port;
pub mod shard;
mod sim;
mod stats;
pub mod traffic;

pub use diff::{
    check_arbitrate_into_equivalence, check_schedule, fuzz, run_schedule, shrink, standard_fleet,
    ArbitrateIntoDivergence, CoSimOutcome, DiffFailure, DiffFailureKind, FabricBuilder, RefSwitch,
    SchedPacket, Schedule, Violation,
};
pub use engine::NetSchedule;
pub use invariant::{InvariantChecker, InvariantViolation};
pub use packet::Packet;
pub use port::InputPort;
pub use sim::{LaneBatch, NetworkSim, SimConfig};
pub use stats::{LatencyHistogram, SimReport};
