//! Mesh-of-Hi-Rise topology analysis (§VI-E, Fig. 13).
//!
//! The paper sketches kilo-core systems built as a *2D mesh of 3D
//! switches*: XY dimension-ordered routing in the plane, with each
//! Hi-Rise switch providing the adaptable Z (layer) dimension. This
//! module models that topology at the graph level — node placement,
//! concentration, XY routes, hop counts, bisection — so design points
//! can be compared. (Per-switch contention behaviour comes from the
//! cycle-accurate single-switch simulation; the paper, too, evaluates
//! the composed topology only analytically.)

use hirise_core::HiRiseConfig;

/// Position of a switch in the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Column (X coordinate).
    pub x: usize,
    /// Row (Y coordinate).
    pub y: usize,
}

/// A 2D mesh whose routers are Hi-Rise 3D switches.
#[derive(Clone, Debug)]
pub struct HiRiseMesh {
    cols: usize,
    rows: usize,
    switch: HiRiseConfig,
    mesh_ports_per_direction: usize,
}

impl HiRiseMesh {
    /// Creates a `cols x rows` mesh of `switch` routers, reserving
    /// `mesh_ports_per_direction` switch ports for each of the four
    /// mesh directions; the remaining ports host cores (concentration).
    ///
    /// # Panics
    ///
    /// Panics if the mesh is degenerate or the switch has too few ports
    /// to serve four directions and at least one core.
    pub fn new(
        cols: usize,
        rows: usize,
        switch: HiRiseConfig,
        mesh_ports_per_direction: usize,
    ) -> Self {
        assert!(cols >= 1 && rows >= 1, "mesh must have at least one node");
        assert!(
            4 * mesh_ports_per_direction < switch.radix(),
            "switch radix {} cannot serve 4x{} mesh ports and any cores",
            switch.radix(),
            mesh_ports_per_direction
        );
        Self {
            cols,
            rows,
            switch,
            mesh_ports_per_direction,
        }
    }

    /// A kilo-core design point: a 5x5 mesh of 64-radix 4-layer Hi-Rise
    /// switches with 6 ports per direction, leaving 40 cores per switch
    /// (1000 cores total).
    pub fn kilocore() -> Self {
        Self::new(5, 5, HiRiseConfig::paper_optimal(), 6)
    }

    /// Mesh width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mesh height in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The router configuration.
    pub fn switch(&self) -> &HiRiseConfig {
        &self.switch
    }

    /// Number of switches in the mesh.
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Cores attached to each switch (concentration).
    pub fn cores_per_node(&self) -> usize {
        self.switch.radix() - 4 * self.mesh_ports_per_direction
    }

    /// Total cores in the system.
    pub fn total_cores(&self) -> usize {
        self.node_count() * self.cores_per_node()
    }

    /// XY dimension-ordered route from `src` to `dst`, inclusive of both
    /// endpoints.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the mesh.
    pub fn xy_route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        assert!(src.x < self.cols && src.y < self.rows, "src outside mesh");
        assert!(dst.x < self.cols && dst.y < self.rows, "dst outside mesh");
        let mut route = vec![src];
        let mut here = src;
        while here.x != dst.x {
            here.x = if dst.x > here.x {
                here.x + 1
            } else {
                here.x - 1
            };
            route.push(here);
        }
        while here.y != dst.y {
            here.y = if dst.y > here.y {
                here.y + 1
            } else {
                here.y - 1
            };
            route.push(here);
        }
        route
    }

    /// Hop count (switch traversals) of the XY route between two nodes.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        src.x.abs_diff(dst.x) + src.y.abs_diff(dst.y) + 1
    }

    /// Mean switch traversals for uniform random core-to-core traffic
    /// (averaged over all node pairs, including same-node pairs which
    /// still traverse one switch).
    pub fn avg_hops_uniform(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for sx in 0..self.cols {
            for sy in 0..self.rows {
                for dx in 0..self.cols {
                    for dy in 0..self.rows {
                        total += self.hops(NodeId { x: sx, y: sy }, NodeId { x: dx, y: dy });
                        pairs += 1;
                    }
                }
            }
        }
        total as f64 / pairs as f64
    }

    /// Bisection link count: mesh channels crossing the vertical midline,
    /// each `mesh_ports_per_direction` ports wide.
    pub fn bisection_links(&self) -> usize {
        self.rows * self.mesh_ports_per_direction
    }

    /// Zero-load end-to-end latency in switch cycles for a route of `h`
    /// switch traversals and a packet of `len_flits` flits: each switch
    /// adds one arbitration cycle, and the final hop streams the packet
    /// out (`len_flits` beats).
    pub fn zero_load_latency_cycles(&self, h: usize, len_flits: usize) -> u64 {
        (h + len_flits) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kilocore_reaches_a_thousand_cores() {
        let mesh = HiRiseMesh::kilocore();
        assert_eq!(mesh.node_count(), 25);
        assert_eq!(mesh.cores_per_node(), 40);
        assert_eq!(mesh.total_cores(), 1000);
    }

    #[test]
    fn xy_routes_go_x_first() {
        let mesh = HiRiseMesh::new(4, 4, HiRiseConfig::paper_optimal(), 4);
        let route = mesh.xy_route(NodeId { x: 0, y: 0 }, NodeId { x: 2, y: 1 });
        assert_eq!(
            route,
            vec![
                NodeId { x: 0, y: 0 },
                NodeId { x: 1, y: 0 },
                NodeId { x: 2, y: 0 },
                NodeId { x: 2, y: 1 },
            ]
        );
        assert_eq!(mesh.hops(NodeId { x: 0, y: 0 }, NodeId { x: 2, y: 1 }), 4);
    }

    #[test]
    fn self_route_is_single_switch() {
        let mesh = HiRiseMesh::new(3, 3, HiRiseConfig::paper_optimal(), 4);
        let n = NodeId { x: 1, y: 1 };
        assert_eq!(mesh.xy_route(n, n), vec![n]);
        assert_eq!(mesh.hops(n, n), 1);
    }

    #[test]
    fn avg_hops_matches_manhattan_expectation() {
        // For a k x k mesh, mean |dx| over uniform pairs is (k^2-1)/(3k).
        let mesh = HiRiseMesh::new(5, 5, HiRiseConfig::paper_optimal(), 6);
        let expected = 2.0 * (25.0 - 1.0) / 15.0 + 1.0;
        assert!((mesh.avg_hops_uniform() - expected).abs() < 1e-9);
    }

    #[test]
    fn concentration_beats_flat_mesh_on_hops() {
        // The §VI-E argument: high-radix concentration shrinks the mesh,
        // cutting average hop count versus a low-radix mesh of the same
        // core count.
        let concentrated = HiRiseMesh::kilocore();
        // A 32x32 flat mesh of 1-core routers (~1000 cores).
        let flat_avg = {
            let k = 32.0;
            2.0 * (k * k - 1.0) / (3.0 * k) + 1.0
        };
        assert!(concentrated.avg_hops_uniform() < flat_avg / 4.0);
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn rejects_all_ports_used_for_mesh() {
        let _ = HiRiseMesh::new(2, 2, HiRiseConfig::paper_optimal(), 16);
    }
}
