//! Cycle-accurate simulation of a 2D mesh of switches (§VI-E, Fig. 13).
//!
//! Each mesh node is a full switch fabric (normally a
//! [`HiRiseSwitch`](hirise_core::HiRiseSwitch)) whose ports are split
//! between the four mesh directions and the locally attached cores.
//! Packets are routed XY dimension-ordered: store-and-forward per hop,
//! with the per-switch single-cycle arbitration, connection hold and
//! release semantics of the single-switch simulator. The Z (layer)
//! dimension is handled *inside* each Hi-Rise switch, which is exactly
//! the paper's point: "the 3D switch can provide the adaptable Z
//! dimension routing".
//!
//! Core numbering is global: core `g` lives on node
//! `(g / cores_per_node)` in row-major order, at local core index
//! `g % cores_per_node`.

use crate::engine::{phase_arbitrate, phase_transfers, NetSchedule, NodeEngine};
use crate::invariant::InvariantViolation;
use crate::packet::Packet;
use crate::stats::LatencyHistogram;
use crate::traffic::TrafficPattern;
use hirise_core::rng::derive_stream_seed;
use hirise_core::rng::SeedableRng;
use hirise_core::rng::StdRng;
use hirise_core::{Fabric, InputId, OutputId, PacketHandle};

/// The four mesh directions, in port-bank order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Direction {
    fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

/// How switch ports are assigned to mesh directions and cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MeshPortMap {
    /// Direction banks occupy consecutive ports (N, E, S, W, then
    /// cores). Simple, but straight-through traffic usually enters and
    /// leaves on different switch layers, consuming L2LC bandwidth
    /// inside every Hi-Rise hop.
    #[default]
    Contiguous,
    /// Layer-aware assignment (§VI-E: "layer-aware routing algorithms
    /// that minimize the traversal of traffic in the vertical direction
    /// will also help alleviate the L2LC bottleneck"): all four
    /// direction ports of a lane are placed on the *same* switch layer,
    /// so straight-through packets (which keep their lane hop to hop)
    /// never cross layers inside a switch.
    LayerAware {
        /// Stacked layer count of the mesh's switches.
        layers: usize,
    },
}

/// Configuration of a mesh-of-switches simulation.
#[derive(Clone, Debug)]
pub struct MeshSimConfig {
    pub(crate) cols: usize,
    pub(crate) rows: usize,
    pub(crate) ports_per_direction: usize,
    pub(crate) vcs: usize,
    pub(crate) packet_len_flits: usize,
    pub(crate) injection_rate: f64,
    pub(crate) link_buffer_packets: usize,
    pub(crate) port_map: MeshPortMap,
    pub(crate) warmup: u64,
    pub(crate) measure: u64,
    pub(crate) drain: u64,
    pub(crate) seed: u64,
    pub(crate) schedule: NetSchedule,
}

impl MeshSimConfig {
    /// Creates a `cols x rows` mesh reserving `ports_per_direction`
    /// switch ports per mesh direction; the defaults mirror the
    /// single-switch methodology (4 VCs, 4-flit packets).
    ///
    /// # Panics
    ///
    /// Panics if the mesh is empty or no ports are reserved.
    pub fn new(cols: usize, rows: usize, ports_per_direction: usize) -> Self {
        assert!(cols >= 1 && rows >= 1, "mesh must have at least one node");
        assert!(
            ports_per_direction >= 1,
            "need at least one port per direction"
        );
        Self {
            cols,
            rows,
            ports_per_direction,
            vcs: 4,
            packet_len_flits: 4,
            injection_rate: 0.02,
            link_buffer_packets: 4,
            port_map: MeshPortMap::Contiguous,
            warmup: 1_000,
            measure: 10_000,
            drain: 10_000,
            seed: 0x3D_3E54,
            schedule: NetSchedule::default(),
        }
    }

    /// Selects the per-cycle scheduling strategy (see [`NetSchedule`]).
    /// An execution knob, never a results knob: telemetry is
    /// byte-identical across schedules.
    pub fn schedule(mut self, schedule: NetSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the offered load in packets/core/cycle.
    pub fn injection_rate(mut self, rate: f64) -> Self {
        self.injection_rate = rate;
        self
    }

    /// Sets the downstream buffering a link-fed input port advertises
    /// (in packets). A sender may only start a hop when the receiving
    /// port has a free slot — credit-based back-pressure. XY
    /// dimension-ordered routing plus guaranteed ejection keeps the
    /// mesh deadlock-free at any buffer depth ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if `packets` is zero.
    pub fn link_buffer_packets(mut self, packets: usize) -> Self {
        assert!(packets >= 1, "links need at least one buffer slot");
        self.link_buffer_packets = packets;
        self
    }

    /// Selects the port-to-direction mapping (see [`MeshPortMap`]).
    pub fn port_map(mut self, map: MeshPortMap) -> Self {
        self.port_map = map;
        self
    }

    /// Sets the warmup length in cycles.
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.warmup = cycles;
        self
    }

    /// Sets the measurement window in cycles.
    pub fn measure(mut self, cycles: u64) -> Self {
        self.measure = cycles;
        self
    }

    /// Sets the drain cap in cycles.
    pub fn drain(mut self, cycles: u64) -> Self {
        self.drain = cycles;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the packet length in flits.
    pub fn packet_len_flits(mut self, len: usize) -> Self {
        self.packet_len_flits = len;
        self
    }
}

/// Results of a mesh (or sharded-topology) simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshReport {
    pub(crate) measured_cycles: u64,
    pub(crate) delivered_in_window: u64,
    pub(crate) injected_measured: u64,
    pub(crate) completed_measured: u64,
    pub(crate) latency_sum: u64,
    pub(crate) hop_sum: u64,
    pub(crate) cores: usize,
    pub(crate) histogram: LatencyHistogram,
}

impl MeshReport {
    /// An all-zero report: the identity element for
    /// [`absorb`](Self::absorb). Every counter is a plain sum and the
    /// histogram is mergeable, so per-shard partial reports combine into
    /// exactly the report a single instance would have produced.
    pub(crate) fn empty(measured_cycles: u64, cores: usize) -> Self {
        Self {
            measured_cycles,
            delivered_in_window: 0,
            injected_measured: 0,
            completed_measured: 0,
            latency_sum: 0,
            hop_sum: 0,
            cores,
            histogram: LatencyHistogram::new(),
        }
    }

    /// Folds another partial report into this one (commutative and
    /// associative in every field).
    pub(crate) fn absorb(&mut self, other: &MeshReport) {
        self.delivered_in_window += other.delivered_in_window;
        self.injected_measured += other.injected_measured;
        self.completed_measured += other.completed_measured;
        self.latency_sum += other.latency_sum;
        self.hop_sum += other.hop_sum;
        self.histogram.merge(&other.histogram);
    }
    /// Aggregate accepted throughput in packets/cycle.
    pub fn accepted_rate(&self) -> f64 {
        self.delivered_in_window as f64 / self.measured_cycles as f64
    }

    /// Mean end-to-end packet latency in switch cycles.
    pub fn avg_latency_cycles(&self) -> f64 {
        if self.completed_measured == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.completed_measured as f64
        }
    }

    /// Mean switch traversals per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.completed_measured == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.completed_measured as f64
        }
    }

    /// Whether the mesh kept up with the offered load.
    pub fn is_stable(&self) -> bool {
        self.completed_measured as f64 >= 0.99 * self.injected_measured as f64
    }

    /// Total cores injecting.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Measured packets injected during the window.
    pub fn injected_measured(&self) -> u64 {
        self.injected_measured
    }

    /// Measured packets that completed.
    pub fn completed_measured(&self) -> u64 {
        self.completed_measured
    }

    /// The streaming end-to-end latency histogram over the measured
    /// population.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }

    /// The `p`-th end-to-end latency percentile in cycles (`p` in
    /// `[0, 100]`), or `None` if nothing completed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn latency_percentile_cycles(&self, p: f64) -> Option<f64> {
        self.histogram.percentile(p)
    }
}

/// What a switch port is wired to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortRole {
    /// A mesh link in `dir` on spreading lane `lane`.
    Link { dir: Direction, lane: usize },
    /// Local core `local` (injection input / ejection output).
    Core { local: usize },
}

/// The port assignment shared by every switch of the mesh.
#[derive(Clone, Debug)]
struct PortLayout {
    /// `dir_ports[d][k]`: the port of direction `d`, lane `k`.
    dir_ports: Vec<Vec<usize>>,
    /// `core_ports[c]`: the port of local core `c`.
    core_ports: Vec<usize>,
    /// Inverse map.
    roles: Vec<PortRole>,
}

impl PortLayout {
    fn new(radix: usize, ports_per_direction: usize, map: MeshPortMap) -> Self {
        let p = ports_per_direction;
        let mut dir_ports = vec![vec![usize::MAX; p]; 4];
        let mut taken = vec![false; radix];
        match map {
            MeshPortMap::Contiguous => {
                for (d, bank) in dir_ports.iter_mut().enumerate() {
                    for (k, port) in bank.iter_mut().enumerate() {
                        *port = d * p + k;
                        taken[d * p + k] = true;
                    }
                }
            }
            MeshPortMap::LayerAware { layers } => {
                assert!(
                    layers >= 1 && radix.is_multiple_of(layers),
                    "bad layer count"
                );
                let per_layer = radix / layers;
                for k in 0..p {
                    let preferred = k % layers;
                    for bank in dir_ports.iter_mut() {
                        // First free port on the preferred layer, else
                        // anywhere (keeps the layout total).
                        let start = preferred * per_layer;
                        let slot = (start..start + per_layer)
                            .find(|&q| !taken[q])
                            .or_else(|| (0..radix).find(|&q| !taken[q]))
                            .expect("more ports than direction lanes");
                        bank[k] = slot;
                        taken[slot] = true;
                    }
                }
            }
        }
        let core_ports: Vec<usize> = (0..radix).filter(|&q| !taken[q]).collect();
        let mut roles = vec![PortRole::Core { local: 0 }; radix];
        for (d, bank) in dir_ports.iter().enumerate() {
            for (k, &port) in bank.iter().enumerate() {
                roles[port] = PortRole::Link {
                    dir: match d {
                        0 => Direction::North,
                        1 => Direction::East,
                        2 => Direction::South,
                        _ => Direction::West,
                    },
                    lane: k,
                };
            }
        }
        for (c, &port) in core_ports.iter().enumerate() {
            roles[port] = PortRole::Core { local: c };
        }
        Self {
            dir_ports,
            core_ports,
            roles,
        }
    }
}

/// The pure geometry of a 2D mesh of switches: node grid, port layout,
/// XY routing and link wiring. Shared by the unsharded [`MeshSim`]
/// reference and the sharded engine
/// ([`ShardedSim`](crate::shard::ShardedSim)), so both walk exactly the
/// same topology.
#[derive(Clone, Debug)]
pub struct MeshGeometry {
    cols: usize,
    rows: usize,
    ports_per_direction: usize,
    radix: usize,
    cores_per_node: usize,
    layout: PortLayout,
}

impl MeshGeometry {
    /// Builds the geometry for `cols x rows` switches of `radix` ports,
    /// reserving `ports_per_direction` per mesh direction.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is empty, no direction ports are reserved, or
    /// `radix` cannot serve the direction ports plus at least one core.
    pub fn new(
        cols: usize,
        rows: usize,
        ports_per_direction: usize,
        radix: usize,
        map: MeshPortMap,
    ) -> Self {
        assert!(cols >= 1 && rows >= 1, "mesh must have at least one node");
        assert!(
            ports_per_direction >= 1,
            "need at least one port per direction"
        );
        assert!(
            radix > 4 * ports_per_direction,
            "radix {radix} cannot serve 4x{ports_per_direction} direction ports and cores"
        );
        let cores_per_node = radix - 4 * ports_per_direction;
        let layout = PortLayout::new(radix, ports_per_direction, map);
        Self {
            cols,
            rows,
            ports_per_direction,
            radix,
            cores_per_node,
            layout,
        }
    }

    /// Number of mesh nodes (switches).
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Cores attached to each node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total cores attached to the mesh.
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.nodes()
    }

    fn node_of_core(&self, core: usize) -> usize {
        core / self.cores_per_node
    }

    fn node_xy(&self, node: usize) -> (usize, usize) {
        (node % self.cols, node / self.cols)
    }

    /// The node across the link in `dir`, or `None` off the grid edge
    /// (XY routing never targets an off-grid port; the `None` arm only
    /// matters when enumerating all ports, e.g. for shard frontiers).
    fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.node_xy(node);
        let (nx, ny) = match dir {
            Direction::North => (x, y.checked_sub(1)?),
            Direction::East => (x + 1, y),
            Direction::South => (x, y + 1),
            Direction::West => (x.checked_sub(1)?, y),
        };
        (nx < self.cols && ny < self.rows).then(|| ny * self.cols + nx)
    }

    /// XY next-hop output port at `node` for a packet to `dst_core`
    /// with spreading lane `lane`.
    pub fn route(&self, node: usize, dst_core: usize, lane: usize) -> OutputId {
        let p = self.ports_per_direction;
        let dst_node = self.node_of_core(dst_core);
        let (x, y) = self.node_xy(node);
        let (dx, dy) = self.node_xy(dst_node);
        let dir = if x < dx {
            Some(Direction::East)
        } else if x > dx {
            Some(Direction::West)
        } else if y < dy {
            Some(Direction::South)
        } else if y > dy {
            Some(Direction::North)
        } else {
            None
        };
        match dir {
            Some(d) => OutputId::new(self.layout.dir_ports[d as usize][lane % p]),
            None => OutputId::new(self.layout.core_ports[dst_core % self.cores_per_node]),
        }
    }

    /// Which (node, input port) an output port of `node` feeds, or
    /// `None` for a local ejection port or an unwired grid-edge port.
    pub fn link_endpoint(&self, node: usize, output: OutputId) -> Option<(usize, usize)> {
        match self.layout.roles[output.index()] {
            PortRole::Core { .. } => None, // local ejection port
            PortRole::Link { dir, lane } => {
                let next = self.neighbor(node, dir)?;
                Some((next, self.layout.dir_ports[dir.opposite() as usize][lane]))
            }
        }
    }

    /// The switch input port of local core `local`.
    pub fn core_port(&self, local: usize) -> usize {
        self.layout.core_ports[local]
    }
}

/// A cycle-accurate mesh of switch fabrics with XY routing.
///
/// This is the single-threaded *reference* engine: the sharded engine in
/// [`crate::shard`] reproduces its telemetry byte-for-byte at any shard
/// count, which the twin-instance identity tests pin.
#[derive(Debug)]
pub struct MeshSim<F> {
    cfg: MeshSimConfig,
    geo: MeshGeometry,
    switches: Vec<F>,
    /// Ports, packet arena, transfer slots, active sets and scratch —
    /// the state shared with the sharded engine.
    engine: NodeEngine,
    /// Per-core injection RNG streams, seeded purely by
    /// `(cfg.seed, core)` so injection is a function of global position
    /// — the property that lets shards own disjoint core ranges and
    /// still reproduce this exact traffic.
    rngs: Vec<StdRng>,
    /// Per-core injected-packet counts; packet ids are
    /// `core << 32 | count`, unique and position-derived.
    seqs: Vec<u64>,
    now: u64,
}

impl<F: Fabric> MeshSim<F> {
    /// Builds the mesh, creating one switch per node via `make_switch`.
    ///
    /// # Panics
    ///
    /// Panics if the switches are too small for the reserved direction
    /// ports, or disagree in radix.
    pub fn new(cfg: MeshSimConfig, mut make_switch: impl FnMut() -> F) -> Self {
        Self::with_switches(cfg, move |_node| make_switch())
    }

    /// Builds the mesh with a per-node switch factory: `make_switch`
    /// receives the global node index, so callers can configure each
    /// switch individually (notably to inject node-specific faults).
    ///
    /// # Panics
    ///
    /// Panics if the switches are too small for the reserved direction
    /// ports, or disagree in radix.
    pub fn with_switches(cfg: MeshSimConfig, mut make_switch: impl FnMut(usize) -> F) -> Self {
        let nodes = cfg.cols * cfg.rows;
        let switches: Vec<F> = (0..nodes).map(&mut make_switch).collect();
        let radix = switches[0].radix();
        assert!(
            switches.iter().all(|s| s.radix() == radix),
            "all mesh switches must share a radix"
        );
        let geo = MeshGeometry::new(
            cfg.cols,
            cfg.rows,
            cfg.ports_per_direction,
            radix,
            cfg.port_map,
        );
        let total_cores = geo.total_cores();
        Self {
            engine: NodeEngine::new(&switches, cfg.vcs, cfg.schedule, false),
            switches,
            rngs: (0..total_cores)
                .map(|core| StdRng::seed_from_u64(derive_stream_seed(cfg.seed, core as u64)))
                .collect(),
            seqs: vec![0; total_cores],
            now: 0,
            geo,
            cfg,
        }
    }

    /// Total cores attached to the mesh.
    pub fn total_cores(&self) -> usize {
        self.geo.total_cores()
    }

    /// Cores per mesh node.
    pub fn cores_per_node(&self) -> usize {
        self.geo.cores_per_node()
    }

    /// Total fault events logged across all mesh switches.
    pub fn fault_event_count(&self) -> u64 {
        self.switches
            .iter()
            .map(|s| s.fault_log().map_or(0, |log| log.total()))
            .sum()
    }

    /// Sum over cycles of the number of routers doing per-cycle work
    /// (the active `work` set) — divide by `cycles * nodes` for the
    /// mean active-router occupancy.
    pub fn active_node_cycles(&self) -> u64 {
        self.engine.active_node_cycles()
    }

    /// Metadata-integrity violations recorded so far (a buffered packet
    /// whose arena slot went missing — formerly a process abort).
    pub fn invariant_violations(&self) -> &[InvariantViolation] {
        self.engine.violations()
    }

    /// Total invariant violations observed, including beyond the
    /// record cap.
    pub fn invariant_violation_count(&self) -> u64 {
        self.engine.violation_count()
    }

    /// A fresh all-zero report shaped for this simulation — pair with
    /// [`run_cycles`](Self::run_cycles) for externally driven cycle
    /// loops.
    pub fn empty_report(&self) -> MeshReport {
        MeshReport::empty(self.cfg.measure, self.total_cores())
    }

    /// Advances exactly `cycles` cycles without draining — the
    /// benchmarking entry point, mirroring
    /// [`ShardedSim::run_cycles`](crate::shard::ShardedSim::run_cycles).
    pub fn run_cycles(
        &mut self,
        pattern: &mut dyn TrafficPattern,
        report: &mut MeshReport,
        cycles: u64,
    ) {
        for _ in 0..cycles {
            self.step(pattern, report);
        }
    }

    /// Runs the configured warmup + measurement + drain and reports.
    pub fn run(&mut self, pattern: &mut dyn TrafficPattern) -> MeshReport {
        let mut report = MeshReport::empty(self.cfg.measure, self.total_cores());
        for _ in 0..self.cfg.warmup + self.cfg.measure {
            self.step(pattern, &mut report);
        }
        let mut drained = 0;
        while report.completed_measured < report.injected_measured && drained < self.cfg.drain {
            self.step(pattern, &mut report);
            drained += 1;
        }
        report
    }

    fn in_window(&self) -> bool {
        self.now >= self.cfg.warmup && self.now < self.cfg.warmup + self.cfg.measure
    }

    fn step(&mut self, pattern: &mut dyn TrafficPattern, report: &mut MeshReport) {
        let in_window = self.in_window();

        // (a) Progress transfers: completions either eject (deliver) or
        // forward into the neighbour's input buffer; the release beat
        // follows one cycle later, as in the single-switch model. This
        // mesh is unsharded, so every wire stays local.
        phase_transfers(
            &mut self.engine,
            &mut self.switches,
            &self.geo,
            0,
            report,
            in_window,
            self.now,
            |_, _, _, _| unreachable!("unsharded mesh has no shard boundaries"),
        );

        // (b) Injection at core ports: each core draws from its own
        // position-derived RNG stream and numbers its own packets
        // (`core << 32 | seq`), so injection at any core is independent
        // of every other core's activity.
        for core in 0..self.total_cores() {
            let Some(dst) = pattern.next(
                InputId::new(core),
                self.cfg.injection_rate,
                &mut self.rngs[core],
            ) else {
                continue;
            };
            let node = self.geo.node_of_core(core);
            let input_port = self.geo.core_port(core % self.geo.cores_per_node());
            let seq = self.seqs[core];
            self.seqs[core] += 1;
            debug_assert!(seq < 1 << 32, "per-core packet sequence overflow");
            let packet = Packet {
                id: ((core as u64) << 32) | seq,
                src: InputId::new(input_port),
                dst: OutputId::new(dst.index()), // final core id, re-routed per hop
                len_flits: self.cfg.packet_len_flits,
                birth_cycle: self.now,
                measured: in_window,
                handle: PacketHandle::NONE, // assigned by the arena below
            };
            if in_window {
                report.injected_measured += 1;
            }
            self.engine.admit_new(node, input_port, packet, 0);
        }

        // (c) Buffer, select, arbitrate and launch per active node.
        phase_arbitrate(
            &mut self.engine,
            &mut self.switches,
            &self.geo,
            0,
            self.cfg.link_buffer_packets,
            self.cfg.packet_len_flits,
            |_, _| unreachable!("unsharded mesh reads every occupancy locally"),
        );

        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Custom, UniformRandom};
    use hirise_core::{HiRiseConfig, HiRiseSwitch};

    fn small_mesh(cfg: MeshSimConfig) -> MeshSim<HiRiseSwitch> {
        // 16-radix Hi-Rise switches over 2 layers; 2 ports per direction
        // leaves 8 cores per node.
        let switch_cfg = HiRiseConfig::builder(16, 2)
            .channel_multiplicity(2)
            .build()
            .expect("valid configuration");
        MeshSim::new(cfg, move || HiRiseSwitch::new(&switch_cfg))
    }

    #[test]
    fn geometry_is_consistent() {
        let sim = small_mesh(MeshSimConfig::new(3, 2, 2));
        assert_eq!(sim.cores_per_node(), 8);
        assert_eq!(sim.total_cores(), 48);
    }

    #[test]
    fn single_packet_crosses_the_mesh() {
        let mut sim = small_mesh(
            MeshSimConfig::new(3, 2, 2)
                .warmup(0)
                .measure(200)
                .drain(200),
        );
        // One packet from core 0 (node 0) to core 47 (node 5).
        let mut fired = false;
        let mut pattern = Custom::new("single", move |input: InputId, _r, _rng: &mut _| {
            if input.index() == 0 && !fired {
                fired = true;
                Some(OutputId::new(47))
            } else {
                None
            }
        });
        let report = sim.run(&mut pattern);
        assert_eq!(report.completed_measured(), 1);
        // Node 0 -> 1 -> 2 -> 5: 3 switch hops... XY: (0,0) to (2,1):
        // East, East, South, then eject = 4 traversals.
        assert_eq!(report.avg_hops(), 4.0);
        assert!(
            report.avg_latency_cycles() >= 12.0,
            "{}",
            report.avg_latency_cycles()
        );
    }

    #[test]
    fn same_node_traffic_stays_local() {
        let mut sim = small_mesh(
            MeshSimConfig::new(2, 2, 2)
                .warmup(0)
                .measure(100)
                .drain(100),
        );
        let mut fired = false;
        let mut pattern = Custom::new("local", move |input: InputId, _r, _rng: &mut _| {
            if input.index() == 1 && !fired {
                fired = true;
                Some(OutputId::new(3)) // same node 0
            } else {
                None
            }
        });
        let report = sim.run(&mut pattern);
        assert_eq!(report.completed_measured(), 1);
        assert_eq!(report.avg_hops(), 1.0);
    }

    #[test]
    fn low_load_uniform_random_is_stable() {
        let mut sim = small_mesh(
            MeshSimConfig::new(2, 2, 2)
                .injection_rate(0.01)
                .warmup(500)
                .measure(4_000)
                .drain(6_000),
        );
        let mut pattern = UniformRandom::new(32);
        let report = sim.run(&mut pattern);
        assert!(
            report.is_stable(),
            "{} of {} completed",
            report.completed_measured(),
            report.injected_measured()
        );
        assert!(report.avg_hops() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = small_mesh(
                MeshSimConfig::new(2, 2, 2)
                    .injection_rate(0.02)
                    .warmup(100)
                    .measure(1_000)
                    .seed(seed),
            );
            let mut pattern = UniformRandom::new(32);
            let report = sim.run(&mut pattern);
            (report.completed_measured(), report.latency_sum)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn port_layouts_are_permutations() {
        for map in [
            MeshPortMap::Contiguous,
            MeshPortMap::LayerAware { layers: 2 },
        ] {
            let layout = PortLayout::new(16, 2, map);
            let mut seen = [false; 16];
            for bank in &layout.dir_ports {
                for &port in bank {
                    assert!(!seen[port], "{map:?}: port {port} assigned twice");
                    seen[port] = true;
                }
            }
            for &port in &layout.core_ports {
                assert!(!seen[port], "{map:?}: port {port} assigned twice");
                seen[port] = true;
            }
            assert!(seen.iter().all(|&s| s), "{map:?}: unassigned ports");
            assert_eq!(layout.core_ports.len(), 8);
        }
    }

    #[test]
    fn layer_aware_aligns_opposite_directions() {
        // Radix 16 over 2 layers: 8 ports per layer. Each lane's four
        // direction ports must share a layer.
        let layout = PortLayout::new(16, 2, MeshPortMap::LayerAware { layers: 2 });
        let layer_of = |port: usize| port / 8;
        for lane in 0..2 {
            let layers: Vec<usize> = (0..4)
                .map(|d| layer_of(layout.dir_ports[d][lane]))
                .collect();
            assert!(
                layers.iter().all(|&l| l == layers[0]),
                "lane {lane} spans layers {layers:?}"
            );
        }
        // And the two lanes land on the two different layers.
        assert_ne!(
            layer_of(layout.dir_ports[0][0]),
            layer_of(layout.dir_ports[0][1])
        );
    }

    #[test]
    fn layer_aware_mesh_delivers_traffic() {
        let switch_cfg = HiRiseConfig::builder(16, 2)
            .channel_multiplicity(2)
            .build()
            .expect("valid configuration");
        let cfg = MeshSimConfig::new(3, 2, 2)
            .port_map(MeshPortMap::LayerAware { layers: 2 })
            .injection_rate(0.01)
            .warmup(500)
            .measure(3_000)
            .drain(6_000);
        let mut sim = MeshSim::new(cfg, move || HiRiseSwitch::new(&switch_cfg));
        let mut pattern = UniformRandom::new(sim.total_cores());
        let report = sim.run(&mut pattern);
        assert!(report.is_stable());
        assert!(report.avg_hops() >= 1.0);
    }

    #[test]
    fn back_pressure_bounds_link_buffers() {
        // Funnel traffic from every core to one corner node; with
        // credit-based links the interior buffers must never exceed the
        // advertised depth (the packets pile up at the sources instead).
        let mut sim = small_mesh(
            MeshSimConfig::new(3, 3, 2)
                .injection_rate(0.05)
                .link_buffer_packets(2)
                .warmup(0)
                .measure(2_000)
                .drain(0),
        );
        let cores = sim.total_cores();
        let mut pattern = Custom::new("corner", move |_input: InputId, rate, rng: &mut _| {
            use hirise_core::rng::Rng;
            rng.gen_bool(f64::clamp(rate, 0.0, 1.0))
                .then(|| OutputId::new(cores - 1))
        });
        let report = sim.run(&mut pattern);
        // The run should deliver something and never violate the credit
        // invariant (checked below on the final state).
        assert!(report.accepted_rate() > 0.0);
        for node in 0..9 {
            let p = 2 * 4; // link-fed ports are the first 4*p
            for input in 0..p {
                assert!(
                    sim.engine.port(node, input).occupancy() <= 2,
                    "node {node} port {input} overflowed"
                );
            }
        }
    }

    #[test]
    fn congestion_raises_latency() {
        let latency_at = |rate: f64| {
            let mut sim = small_mesh(
                MeshSimConfig::new(2, 2, 2)
                    .injection_rate(rate)
                    .warmup(500)
                    .measure(3_000)
                    .drain(8_000),
            );
            let mut pattern = UniformRandom::new(32);
            sim.run(&mut pattern).avg_latency_cycles()
        };
        assert!(latency_at(0.02) > latency_at(0.002));
    }
}
