//! Packets: the unit of transfer through a switch.
//!
//! The paper simulates 4-flit packets of 128-bit flits (512 bits per
//! packet, matching the 64-byte cache line of its CMP evaluation). A
//! packet occupies a switch connection for one cycle per flit after the
//! single arbitration cycle that sets the connection up.

use hirise_core::{InputId, OutputId, PacketHandle};

/// A packet travelling from a source input port to a destination output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Monotonically increasing identifier (unique within one simulation).
    pub id: u64,
    /// Source input port.
    pub src: InputId,
    /// Destination output port.
    pub dst: OutputId,
    /// Length in flits.
    pub len_flits: usize,
    /// Cycle at which the packet was created at the source.
    pub birth_cycle: u64,
    /// Whether the packet was injected during the measurement window and
    /// therefore contributes to latency statistics.
    pub measured: bool,
    /// Arena slot carrying the network-level routing metadata (hop
    /// count), or [`PacketHandle::NONE`] for single-switch simulations
    /// that keep no per-packet network state.
    pub handle: PacketHandle,
}

impl Packet {
    /// Latency of the packet if its tail flit left at `completion_cycle`.
    pub fn latency(&self, completion_cycle: u64) -> u64 {
        completion_cycle.saturating_sub(self.birth_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completion_minus_birth() {
        let p = Packet {
            id: 0,
            src: InputId::new(1),
            dst: OutputId::new(2),
            len_flits: 4,
            birth_cycle: 10,
            measured: true,
            handle: PacketHandle::NONE,
        };
        assert_eq!(p.latency(17), 7);
        assert_eq!(p.latency(5), 0, "saturates rather than underflows");
    }
}
